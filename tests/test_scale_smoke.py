"""Scale smoke tests: the headline flows at realistic sizes, time-bounded.

Not micro-benchmarks (those live in benchmarks/) — these guard against
accidental complexity regressions that would make the hands-on flows
unusable at tutorial scale (thousands of letters).
"""

import time

import numpy as np
import pytest

import repro.core as nde
from repro.datasets import generate_hiring_data, make_classification
from repro.importance import knn_shapley
from repro.learn.model_selection import split_frame
from repro.pipeline import datascope_importance, execute, letters_pipeline


@pytest.mark.parametrize("n", [3000])
def test_figure2_flow_at_scale(n):
    start = time.time()
    train, valid, __ = nde.load_recommendation_letters(n=n, seed=7)
    dirty = nde.inject_labelerrors(train, fraction=0.1, seed=1)
    importances = nde.knn_shapley_values(dirty, validation=valid)
    assert importances.shape == (train.num_rows,)
    assert time.time() - start < 60.0


def test_knn_shapley_large_matrix():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(4000, 16))
    y = rng.integers(0, 2, size=4000)
    Xv = rng.normal(size=(300, 16))
    yv = rng.integers(0, 2, size=300)
    start = time.time()
    result = knn_shapley(X, y, Xv, yv, k=5)
    elapsed = time.time() - start
    assert len(result) == 4000
    assert elapsed < 20.0  # vectorised recursion, not a Python loop


def test_pipeline_datascope_at_scale():
    data = generate_hiring_data(n=2000, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.8, 0.2), seed=1)
    __, sink = letters_pipeline()
    sources = {
        "train_df": train,
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }
    start = time.time()
    result = execute(sink, sources, fit=True)
    valid_result = execute(sink, dict(sources, train_df=valid), fit=False)
    importance = datascope_importance(
        result, valid_result.X, valid_result.y, source="train_df"
    )
    assert len(importance.by_row_id) == result.n_rows
    assert time.time() - start < 60.0
