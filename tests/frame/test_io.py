"""CSV round-trip tests."""

import numpy as np
import pytest

from repro.frame import DataFrame, from_csv_string, read_csv, to_csv_string, write_csv


def test_roundtrip_mixed_types(simple_frame):
    assert from_csv_string(to_csv_string(simple_frame)).equals(simple_frame)


def test_missing_cells_become_empty_fields(simple_frame):
    text = to_csv_string(simple_frame)
    line = text.splitlines()[3]  # row with missing b
    assert line.split(",")[1] == ""


def test_type_inference_int_vs_float():
    df = from_csv_string("a,b\n1,1.5\n2,2.5\n")
    assert df["a"].dtype_kind == "int"
    assert df["b"].dtype_kind == "float"


def test_int_column_with_missing_becomes_float():
    df = from_csv_string("a\n1\n\n3\n")
    assert df["a"].null_count() == 1
    assert df["a"].dtype_kind == "float"


def test_bool_inference():
    df = from_csv_string("f\nTrue\nFalse\n")
    assert df["f"].dtype_kind == "bool"


def test_string_with_commas_quoted():
    df = DataFrame({"s": ["hello, world", "plain"]})
    assert from_csv_string(to_csv_string(df)).equals(df)


def test_file_roundtrip(tmp_path, simple_frame):
    path = tmp_path / "data.csv"
    write_csv(simple_frame, path)
    assert read_csv(path).equals(simple_frame)


def test_empty_input_raises():
    with pytest.raises(ValueError):
        from_csv_string("")


def test_ragged_rows_fill_missing():
    df = from_csv_string("a,b\n1,2\n3\n")
    assert df["b"].to_list() == [2, None]
