"""Feature scaling transformers."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..base import Transformer, check_matrix

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler(Transformer):
    """Standardise features to zero mean and unit variance.

    NaN cells are ignored when computing statistics and passed through
    unchanged, so the scaler composes with downstream imputation and with
    the symbolic (interval) executor in :mod:`repro.uncertainty`.
    """

    def fit(self, X: Any, y: Any = None) -> "StandardScaler":
        X = check_matrix(X)
        if len(X) == 0:
            # Zero-row fit (a pipeline that filtered everything away):
            # identity scaling keeps downstream transform() well-defined.
            self.mean_ = np.zeros(X.shape[1])
            self.scale_ = np.ones(X.shape[1])
            return self
        with np.errstate(all="ignore"):
            self.mean_ = np.nanmean(X, axis=0)
            std = np.nanstd(X, axis=0)
        # Columns with no observed values standardise as identity.
        self.mean_ = np.where(np.isnan(self.mean_), 0.0, self.mean_)
        self.scale_ = np.where(np.isnan(std) | (std <= 0), 1.0, std)
        return self

    def transform(self, X: Any) -> np.ndarray:
        X = check_matrix(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X: Any) -> np.ndarray:
        X = check_matrix(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(Transformer):
    """Scale features into [0, 1] using the training min/max."""

    def fit(self, X: Any, y: Any = None) -> "MinMaxScaler":
        X = check_matrix(X)
        if len(X) == 0:
            self.min_ = np.zeros(X.shape[1])
            self.span_ = np.ones(X.shape[1])
            return self
        with np.errstate(all="ignore"):
            self.min_ = np.nanmin(X, axis=0)
            span = np.nanmax(X, axis=0) - self.min_
        self.min_ = np.where(np.isnan(self.min_), 0.0, self.min_)
        self.span_ = np.where(np.isnan(span) | (span <= 0), 1.0, span)
        return self

    def transform(self, X: Any) -> np.ndarray:
        X = check_matrix(X)
        return (X - self.min_) / self.span_
