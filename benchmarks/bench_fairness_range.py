"""Experiment — consistent range approximation for fairness [94].

A model is evaluated on data whose group-B positives were collected at an
unknown sampling rate α ∈ [α_lo, 1]. Sweep the bias uncertainty (α_lo) and
report the certified demographic-parity range. Shapes to reproduce: the
range contains the point estimate and widens monotonically as the assumed
bias uncertainty grows; certification flips from "fair" to "inconclusive"
at some uncertainty level.
"""

import numpy as np

from repro.datasets import make_biased_hiring
from repro.learn import LogisticRegression
from repro.learn.metrics import demographic_parity_difference
from repro.uncertainty import demographic_parity_range
from repro.viz import format_records

ALPHA_FLOORS = [1.0, 0.8, 0.6, 0.4, 0.2]
THRESHOLD = 0.25


def run_sweep() -> list[dict]:
    train = make_biased_hiring(n=600, bias_strength=0.3, seed=3)
    test = make_biased_hiring(n=400, bias_strength=0.0, seed=4)

    def featurize(frame):
        numeric = frame.to_numpy(["skill", "experience"])
        indicator = (frame["group"] == "B").astype(float).reshape(-1, 1)
        return np.column_stack([numeric, indicator])

    model = LogisticRegression(max_iter=60).fit(
        featurize(train), np.asarray(train["hired"].to_list())
    )
    y_true = np.asarray(test["hired"].to_list())
    y_pred = model.predict(featurize(test))
    group = np.asarray(test["group"].to_list())
    point = demographic_parity_difference(y_true, y_pred, group, positive="yes")

    rows = []
    for floor in ALPHA_FLOORS:
        fr = demographic_parity_range(
            y_true, y_pred, group, "yes",
            prevalence_multipliers={"B": (floor, 1.0)},
            threshold=THRESHOLD,
        )
        rows.append(
            {
                "alpha_floor": floor,
                "point_estimate": point,
                "range_lo": fr.lo,
                "range_hi": fr.hi,
                "certified_fair": fr.certifiably_fair(),
            }
        )
    return rows


def test_fairness_range(benchmark, write_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_report("fairness_range", format_records(rows))

    widths = [r["range_hi"] - r["range_lo"] for r in rows]
    assert all(b >= a - 1e-12 for a, b in zip(widths, widths[1:])), (
        "range must widen with bias uncertainty"
    )
    for row in rows:
        assert row["range_lo"] - 1e-9 <= row["point_estimate"] <= row["range_hi"] + 1e-9
    # No bias uncertainty → degenerate range at the point estimate.
    assert widths[0] < 1e-9
