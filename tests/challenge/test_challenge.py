"""Tests for the data-debugging challenge and leaderboard."""

import numpy as np
import pytest

from repro.challenge import DebuggingChallenge, Leaderboard
from repro.cleaning import BudgetExhausted


@pytest.fixture(scope="module")
def challenge():
    return DebuggingChallenge(n=300, cleaning_budget=30, error_seed=42)


class TestLeaderboard:
    def test_best_score_wins(self):
        board = Leaderboard()
        board.record("alice", 0.8)
        board.record("alice", 0.7)
        board.record("bob", 0.75)
        standings = board.standings()
        assert standings[0].participant == "alice"
        assert standings[0].score == 0.8
        assert standings[0].n_submissions == 2

    def test_winner_none_when_empty(self):
        assert Leaderboard().winner() is None

    def test_render_contains_participants(self):
        board = Leaderboard()
        board.record("carol", 0.9)
        assert "carol" in board.render()

    def test_ties_sorted_by_name(self):
        board = Leaderboard()
        board.record("zed", 0.5)
        board.record("amy", 0.5)
        assert board.standings()[0].participant == "amy"


class TestChallenge:
    def test_train_is_corrupted(self, challenge):
        assert not challenge.train.equals(challenge._clean_train)
        assert challenge.train.column("employer_rating").null_count() > 0

    def test_submission_updates_leaderboard(self, challenge):
        submission = challenge.submit("alice", challenge.train.row_ids[:10].tolist())
        assert submission.n_cleaned <= 10
        assert challenge.leaderboard.winner() is not None

    def test_budget_enforced_across_submissions(self, challenge):
        challenge.submit("bob", challenge.train.row_ids[:20].tolist())
        with pytest.raises(BudgetExhausted):
            challenge.submit("bob", challenge.train.row_ids[20:45].tolist())

    def test_participants_isolated(self, challenge):
        """One participant's cleaning must not affect another's state."""
        before = challenge.remaining_budget("dave")
        challenge.submit("erin", challenge.train.row_ids[:5].tolist())
        assert challenge.remaining_budget("dave") == before

    def test_cleaning_true_errors_beats_baseline(self, challenge):
        errors = challenge.reveal_errors()
        submission = challenge.submit("oracle-user", errors[:30].tolist())
        assert submission.hidden_test_accuracy >= challenge.baseline_accuracy - 0.02

    def test_oracle_upper_bound_at_least_baseline(self, challenge):
        assert challenge.oracle_upper_bound() >= challenge.baseline_accuracy - 0.02

    def test_informed_cleaning_finds_more_errors_than_random(self):
        """A KNN-Shapley-guided submission targets the hidden errors far
        better than chance (the accuracy delta itself is noisy at this test
        size, so the assertion is on detection quality)."""
        from repro.importance import knn_shapley

        game = DebuggingChallenge(n=300, cleaning_budget=40, error_seed=11)
        X = game.featurize(game.train)
        y = np.asarray(game.train.column("sentiment").to_list())
        Xv = game.featurize(game.valid)
        yv = np.asarray(game.valid.column("sentiment").to_list())
        ranking = knn_shapley(X, y, Xv, yv, k=5).lowest(40)
        informed_ids = game.train.row_ids[ranking].tolist()
        errors = set(game.reveal_errors().tolist())
        informed_hits = len(set(informed_ids) & errors)

        rng = np.random.default_rng(0)
        random_ids = rng.choice(game.train.row_ids, size=40, replace=False).tolist()
        random_hits = len(set(random_ids) & errors)
        assert informed_hits > random_hits

        submission = game.submit("informed", informed_ids)
        assert submission.hidden_test_accuracy >= game.baseline_accuracy - 0.05
