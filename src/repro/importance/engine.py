"""Shared parallel Monte-Carlo valuation engine.

Every game-theoretic importance estimator in this package (`shapley_mc`,
`banzhaf_mc`, `beta_shapley_mc`, `loo_importance`) reduces to the same
primitive: evaluate a utility ``v(S)`` over many training subsets and
combine the results. Doing that in private serial loops — the pre-engine
state of this package — recomputes identical subsets across permutations
*and* across estimators, and never uses more than one core. Following the
amortization insight of the Datascope line of work (Karlaš et al.), this
module centralises the primitive:

memoized utility cache
    ``v(S)`` is cached under the *sorted* index tuple in an LRU-bounded
    :class:`SubsetCache` with hit/miss/eviction counters. ``v(∅)``, ``v(N)``
    and every repeated subset are evaluated once per engine, even when
    several estimators share one :class:`ValuationEngine`.

process-pool fan-out
    Permutations (or subsets) are partitioned across ``n_workers`` forked
    worker processes. Results are merged **in permutation order**, so the
    floating-point accumulation sequence — and therefore the returned
    values — is bit-identical for any worker count.

deterministic seeding
    All permutation orderings are pre-drawn in the driver from the single
    ``np.random.default_rng(seed)`` stream (the same stream the legacy
    serial estimators consumed), instead of per-worker spawned substreams.
    This is strictly stronger than substream seeding: the sampled orderings
    match the pre-engine implementations bit-for-bit *and* are independent
    of how they are later sharded across workers.

variance-aware early stopping
    With ``convergence_tolerance`` set, the engine tracks a running
    standard error of each point's (weighted) marginal contribution and
    stops drawing permutations once the maximum stderr falls below the
    tolerance (Ghorbani-&-Zou-style convergence), instead of always burning
    the full ``n_permutations`` budget. Convergence is checked at fixed
    ``check_every`` boundaries in permutation order, so the stopping point
    is also independent of the worker count.

antithetic permutation pairs
    With ``antithetic=True`` every drawn ordering is followed by its
    reverse. A point inserted late in σ is inserted early in reversed(σ),
    which negatively correlates the pair's marginal-contribution noise and
    reduces estimator variance for near-monotone games.

Determinism caveat: bit-identical results across worker counts (and versus
the legacy serial code) hold for *deterministic* utilities — model training
with a fixed algorithm on fixed rows. A stochastic ``SubsetUtility`` (e.g. a
noisy closure over an RNG) consumes its noise stream in evaluation order,
which caching and sharding legitimately change.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from bisect import insort
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "SubsetCache",
    "PermutationRun",
    "ValuationEngine",
    "parallel_map",
]

#: Default bound on the number of memoized subsets. Keys are index tuples
#: (~8 bytes per small index plus tuple overhead), so the worst case at the
#: default is tens of megabytes for games with a few hundred points.
DEFAULT_CACHE_SIZE = 32768

_MISSING = object()

# Fork-based pools inherit the parent's memory, so utilities holding
# closures, frames, or fitted transformers need no pickling. Platforms
# without fork (Windows/macOS-spawn) fall back to serial execution.
_FORK_CTX = (
    mp.get_context("fork") if "fork" in mp.get_all_start_methods() else None
)

#: State handed to forked workers by inheritance (set immediately before a
#: pool is created, cleared right after it is torn down).
_POOL_STATE: dict | None = None


class SubsetCache:
    """LRU-bounded memo of ``v(S)`` keyed by the sorted index tuple."""

    def __init__(self, max_size: int = DEFAULT_CACHE_SIZE) -> None:
        if max_size < 0:
            raise ValueError("max_size must be >= 0")
        self.max_size = int(max_size)
        self._data: OrderedDict[tuple[int, ...], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(indices: Iterable[int]) -> tuple[int, ...]:
        """Canonical cache key: the sorted tuple of member indices."""
        return tuple(sorted(int(i) for i in indices))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: tuple[int, ...]) -> bool:
        return key in self._data

    def lookup(self, key: tuple[int, ...]) -> Any:
        """Value for ``key`` (counted as a hit) or ``_MISSING`` (a miss)."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
        else:
            self.hits += 1
            self._data.move_to_end(key)
        return value

    def put(self, key: tuple[int, ...], value: float) -> None:
        if self.max_size == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_size:
            self._data.popitem(last=False)
            self.evictions += 1

    def snapshot(self) -> dict[tuple[int, ...], float]:
        """Plain-dict copy shipped to workers at fork time."""
        return dict(self._data)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "size": len(self._data),
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


@dataclass
class PermutationRun:
    """Raw accumulators of one permutation-sampling run.

    ``totals``/``sumsq`` hold the per-point sum and sum of squares of the
    (position-weighted) marginal contributions; ``counts`` how many
    permutations each point was credited in (every scanned permutation
    credits every point — truncated tails are credited zero, exactly like
    the legacy estimators).
    """

    totals: np.ndarray
    counts: np.ndarray
    sumsq: np.ndarray
    n_permutations: int
    truncated_scans: int
    stopped_early: bool
    max_stderr: float | None

    def values(self) -> np.ndarray:
        return self.totals / np.maximum(self.counts, 1)

    def stderr(self) -> np.ndarray:
        """Standard error of each point's mean marginal contribution."""
        counts = np.maximum(self.counts, 1)
        mean = self.totals / counts
        with np.errstate(invalid="ignore", divide="ignore"):
            var = (self.sumsq - counts * mean**2) / np.maximum(counts - 1, 1)
        return np.sqrt(np.clip(var, 0.0, None) / counts)


def _scan_orderings(
    evaluate: Callable[[tuple[int, ...]], float],
    orderings: Sequence[np.ndarray],
    weights: np.ndarray,
    truncation_tolerance: float,
    null: float,
    full: float | None,
) -> tuple[np.ndarray, int]:
    """Scan permutations, returning one row of weighted marginals each.

    The incremental-prefix loop replicates the legacy estimators exactly:
    ``prev`` starts at ``v(∅)`` and a scan stops early once the running
    utility is within ``truncation_tolerance`` of ``v(N)`` (the remaining
    points keep a zero marginal for that permutation).
    """
    n = len(weights)
    deltas = np.zeros((len(orderings), n))
    truncated = 0
    for p, order in enumerate(orderings):
        prev = null
        prefix: list[int] = []
        row = deltas[p]
        for step, i in enumerate(order):
            if (
                truncation_tolerance > 0.0
                and step > 0
                and abs(full - prev) <= truncation_tolerance
            ):
                truncated += 1
                break
            i = int(i)
            insort(prefix, i)
            current = evaluate(tuple(prefix))
            row[i] = weights[step] * (current - prev)
            prev = current
    return deltas, truncated


def _worker_evaluator() -> tuple[Callable[[tuple[int, ...]], float], dict, list]:
    """Cache-aware ``v(key)`` for a forked worker.

    The worker's cache starts as the parent's snapshot (inherited at fork)
    and grows in place, so it persists across tasks within the process. New
    entries and hit/miss counts are reported back for the parent to merge.
    """
    state = _POOL_STATE
    utility = state["utility"]
    cache: dict = state["cache"]
    new_entries: dict = {}
    counters = [0, 0]  # hits, misses

    def evaluate(key: tuple[int, ...]) -> float:
        if key in cache:
            counters[0] += 1
            return cache[key]
        counters[1] += 1
        value = float(utility.evaluate(np.asarray(key, dtype=np.int64)))
        cache[key] = value
        new_entries[key] = value
        return value

    return evaluate, new_entries, counters


def _permutation_chunk(bounds: tuple[int, int]):
    start, stop = bounds
    state = _POOL_STATE
    utility = state["utility"]
    evals_before = utility.n_evaluations
    evaluate, new_entries, counters = _worker_evaluator()
    deltas, truncated = _scan_orderings(
        evaluate,
        state["orderings"][start:stop],
        state["weights"],
        state["truncation_tolerance"],
        state["null"],
        state["full"],
    )
    evals = utility.n_evaluations - evals_before
    return start, deltas, truncated, new_entries, evals, counters


def _subset_chunk(bounds: tuple[int, int]):
    start, stop = bounds
    state = _POOL_STATE
    utility = state["utility"]
    evals_before = utility.n_evaluations
    evaluate, new_entries, counters = _worker_evaluator()
    values = [evaluate(key) for key in state["keys"][start:stop]]
    evals = utility.n_evaluations - evals_before
    return start, values, new_entries, evals, counters


def _chunk_bounds(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, near-even (start, stop) partition of ``range(n_items)``."""
    edges = np.linspace(0, n_items, min(n_chunks, n_items) + 1, dtype=int)
    return [
        (int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a
    ]


class ValuationEngine:
    """Memoized, parallel driver for subset-sampling importance estimators.

    Parameters
    ----------
    utility:
        Any object with the :class:`repro.importance.Utility` protocol
        (``n_train``, ``evaluate(indices)``, ``n_evaluations``).
    n_workers:
        Worker processes for fan-out. ``1`` (the default) runs fully
        serial, in-process. Values > 1 require a fork-capable platform and
        silently fall back to serial elsewhere. The returned values are
        identical for every worker count (deterministic utilities).
    cache_size:
        LRU bound of the subset memo; ``0`` disables memoization.
    ledger:
        Optional :class:`repro.obs.RunLedger`; when set, every
        :meth:`run_permutations` call appends a ``"valuation"`` event
        (sampling config + cache/evaluation accounting) to the run store.
    """

    def __init__(
        self,
        utility: Any,
        n_workers: int = 1,
        cache_size: int = DEFAULT_CACHE_SIZE,
        ledger: Any | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.utility = utility
        self.n_workers = int(n_workers)
        self.cache = SubsetCache(cache_size)
        self.ledger = ledger

    @property
    def n_train(self) -> int:
        return int(self.utility.n_train)

    def stats(self) -> dict:
        """Cache + evaluation accounting, in the shape estimators report."""
        return {
            "cache": self.cache.stats(),
            "n_evaluations": int(self.utility.n_evaluations),
            "n_workers": self.n_workers,
        }

    # ------------------------------------------------------------------ #
    # observability                                                      #
    # ------------------------------------------------------------------ #

    def _stats_baseline(self) -> tuple[int, int, int] | None:
        """Cache/evaluation counters at entry (None while obs is off)."""
        if not _obs.enabled():
            return None
        return (
            self.cache.hits,
            self.cache.misses,
            int(self.utility.n_evaluations),
        )

    def _record_stats_delta(self, baseline: tuple[int, int, int] | None) -> None:
        """Publish what one engine call contributed to the metric registry."""
        if baseline is None:
            return
        hits0, misses0, evals0 = baseline
        _obs_metrics.counter("engine.cache.hits").inc(self.cache.hits - hits0)
        _obs_metrics.counter("engine.cache.misses").inc(self.cache.misses - misses0)
        _obs_metrics.counter("engine.evaluations").inc(
            int(self.utility.n_evaluations) - evals0
        )
        _obs_metrics.gauge("engine.cache.size").set(len(self.cache._data))
        _obs_metrics.gauge("engine.n_workers").set(self.n_workers)
        _obs.add_attrs(
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - misses0,
            evaluations=int(self.utility.n_evaluations) - evals0,
        )

    # ------------------------------------------------------------------ #
    # point evaluations                                                  #
    # ------------------------------------------------------------------ #

    def evaluate(self, indices: Iterable[int]) -> float:
        """Memoized ``v(S)``; evaluates the utility on the sorted indices."""
        key = SubsetCache.key(indices)
        value = self.cache.lookup(key)
        if value is _MISSING:
            value = float(self.utility.evaluate(np.asarray(key, dtype=np.int64)))
            self.cache.put(key, value)
        return value

    def evaluate_many(self, subsets: Sequence[Iterable[int]]) -> np.ndarray:
        """``v(S)`` for many subsets, fanned out across workers, in order.

        Duplicate subsets are evaluated once. The fan-out dispatches only
        cache misses, so a warm engine answers entirely from memory.
        """
        keys = [SubsetCache.key(subset) for subset in subsets]
        with _obs.span("engine.evaluate_many", n_subsets=len(keys)) as sp:
            stats_before = self._stats_baseline()
            if not self._parallel(len(keys)):
                out = np.asarray([self.evaluate(key) for key in keys])
                self._record_stats_delta(stats_before)
                return out
            values: dict[tuple[int, ...], float] = {}
            pending: list[tuple[int, ...]] = []
            for key in OrderedDict.fromkeys(keys):
                value = self.cache.lookup(key)
                if value is _MISSING:
                    pending.append(key)
                else:
                    values[key] = value
            sp.set(pending=len(pending))
            if pending:
                results = self._run_pool(
                    _subset_chunk, _chunk_bounds(len(pending), self.n_workers),
                    {"keys": pending},
                )
                for start, chunk_values, new_entries, evals, counters in results:
                    for key, value in zip(pending[start : start + len(chunk_values)], chunk_values):
                        values[key] = value
                    self._merge_worker(new_entries, evals, counters, count_lookups=False)
            self._record_stats_delta(stats_before)
            return np.asarray([values[key] for key in keys])

    # ------------------------------------------------------------------ #
    # permutation sampling                                               #
    # ------------------------------------------------------------------ #

    def run_permutations(
        self,
        n_permutations: int,
        seed: int = 0,
        weights: np.ndarray | None = None,
        truncation_tolerance: float = 0.0,
        convergence_tolerance: float | None = None,
        check_every: int = 10,
        antithetic: bool = False,
    ) -> PermutationRun:
        """Sample permutations and accumulate per-point weighted marginals.

        ``weights[j]`` multiplies the marginal contribution of the point
        inserted at position ``j`` (all-ones = Shapley, Beta weights =
        Beta-Shapley). See the module docstring for the semantics of
        ``truncation_tolerance``, ``convergence_tolerance`` and
        ``antithetic``.
        """
        if n_permutations < 1:
            raise ValueError("n_permutations must be >= 1")
        n = self.n_train
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (n,):
                raise ValueError("weights must have one entry per position")
        started = time.perf_counter()
        evals_at_entry = int(self.utility.n_evaluations)
        orderings = self._draw_orderings(n_permutations, seed, antithetic)
        run_span = _obs.span(
            "engine.run_permutations",
            n_train=n,
            n_permutations=n_permutations,
            n_workers=self.n_workers,
            antithetic=antithetic,
            seed=seed,
        )
        run_span.__enter__()
        stats_before = self._stats_baseline()
        null = self.evaluate(())
        full = (
            self.evaluate(range(n)) if truncation_tolerance > 0.0 else None
        )
        totals = np.zeros(n)
        sumsq = np.zeros(n)
        scanned = 0
        truncated = 0
        stopped = False
        max_stderr: float | None = None
        wave = (
            n_permutations
            if convergence_tolerance is None
            else max(1, int(check_every))
        )
        pool = None
        try:
            if self._parallel(n_permutations):
                pool = self._start_pool(
                    {
                        "orderings": orderings,
                        "weights": weights,
                        "truncation_tolerance": truncation_tolerance,
                        "null": null,
                        "full": full,
                    }
                )
            start = 0
            while start < n_permutations:
                stop = min(start + wave, n_permutations)
                with _obs.span("engine.wave", start=start, stop=stop) as wave_span:
                    deltas, wave_truncated = self._scan_range(
                        orderings, start, stop, weights, truncation_tolerance,
                        null, full, pool,
                    )
                    # Accumulate one permutation at a time so the FP summation
                    # order matches the serial path for every worker count.
                    for row in deltas:
                        totals += row
                        sumsq += row * row
                    truncated += wave_truncated
                    scanned = stop
                    if convergence_tolerance is not None and scanned >= 2:
                        run = PermutationRun(
                            totals, np.full(n, scanned, dtype=float), sumsq,
                            scanned, truncated, False, None,
                        )
                        max_stderr = float(np.max(run.stderr()))
                        if _obs.enabled():
                            # SE trajectory: one observation per wave boundary.
                            wave_span.set(max_stderr=max_stderr)
                            _obs_metrics.histogram("engine.wave_max_stderr").observe(
                                max_stderr
                            )
                        if max_stderr <= convergence_tolerance:
                            stopped = True
                    if _obs.enabled():
                        wave_span.set(truncated=wave_truncated)
                        _obs_metrics.counter("engine.permutations").inc(stop - start)
                if stopped:
                    break
                start = stop
        finally:
            self._stop_pool(pool)
            if _obs.enabled():
                run_span.set(
                    n_permutations_run=scanned,
                    truncated_scans=truncated,
                    stopped_early=stopped,
                    max_stderr=max_stderr,
                )
                self._record_stats_delta(stats_before)
            run_span.__exit__(None, None, None)
        if self.ledger is not None:
            self.ledger.record_event(
                "valuation",
                config={
                    "n_train": n,
                    "n_permutations": n_permutations,
                    "seed": seed,
                    "n_workers": self.n_workers,
                    "antithetic": antithetic,
                    "truncation_tolerance": truncation_tolerance,
                    "convergence_tolerance": convergence_tolerance,
                },
                stats={
                    "n_permutations_run": scanned,
                    "truncated_scans": truncated,
                    "stopped_early": stopped,
                    "max_stderr": max_stderr,
                    "evaluations": int(self.utility.n_evaluations)
                    - evals_at_entry,
                    "cache": self.cache.stats(),
                },
                wall_time_s=time.perf_counter() - started,
            )
        return PermutationRun(
            totals=totals,
            counts=np.full(n, scanned, dtype=float),
            sumsq=sumsq,
            n_permutations=scanned,
            truncated_scans=truncated,
            stopped_early=stopped,
            max_stderr=max_stderr,
        )

    # ------------------------------------------------------------------ #
    # internals                                                          #
    # ------------------------------------------------------------------ #

    def _parallel(self, n_tasks: int) -> bool:
        return self.n_workers > 1 and _FORK_CTX is not None and n_tasks > 1

    def _draw_orderings(
        self, n_permutations: int, seed: int, antithetic: bool
    ) -> list[np.ndarray]:
        """Pre-draw every ordering from the master stream (see module doc)."""
        rng = np.random.default_rng(seed)
        n = self.n_train
        if not antithetic:
            return [rng.permutation(n) for __ in range(n_permutations)]
        orderings: list[np.ndarray] = []
        while len(orderings) < n_permutations:
            base = rng.permutation(n)
            orderings.append(base)
            if len(orderings) < n_permutations:
                orderings.append(base[::-1].copy())
        return orderings

    def _scan_range(
        self,
        orderings: Sequence[np.ndarray],
        start: int,
        stop: int,
        weights: np.ndarray,
        truncation_tolerance: float,
        null: float,
        full: float | None,
        pool,
    ) -> tuple[np.ndarray, int]:
        if pool is None:
            return _scan_orderings(
                lambda key: self.evaluate(key),
                orderings[start:stop],
                weights,
                truncation_tolerance,
                null,
                full,
            )
        bounds = [
            (start + a, start + b)
            for a, b in _chunk_bounds(stop - start, self.n_workers)
        ]
        if _obs.enabled():
            # Utilization: fraction of the configured pool this wave kept
            # busy (short waves can have fewer chunks than workers).
            _obs_metrics.counter("engine.pool.tasks").inc(len(bounds))
            _obs_metrics.histogram("engine.pool.utilization").observe(
                len(bounds) / self.n_workers
            )
        results = pool.map(_permutation_chunk, bounds)
        results.sort(key=lambda item: item[0])
        deltas = np.concatenate([item[1] for item in results], axis=0)
        truncated = 0
        for __, __deltas, chunk_truncated, new_entries, evals, counters in results:
            truncated += chunk_truncated
            self._merge_worker(new_entries, evals, counters, count_lookups=True)
        return deltas, truncated

    def _merge_worker(
        self, new_entries: dict, evals: int, counters: list, count_lookups: bool
    ) -> None:
        """Fold one worker chunk's cache entries and accounting into ours."""
        for key, value in new_entries.items():
            self.cache.put(key, value)
        self.utility.n_evaluations += int(evals)
        if count_lookups:
            self.cache.hits += int(counters[0])
            self.cache.misses += int(counters[1])

    def _start_pool(self, extra_state: dict):
        global _POOL_STATE
        _POOL_STATE = {
            "utility": self.utility,
            "cache": self.cache.snapshot(),
            **extra_state,
        }
        try:
            return _FORK_CTX.Pool(processes=self.n_workers)
        finally:
            # Workers inherited the state at fork; the parent reference is
            # only needed during Pool construction.
            _POOL_STATE = None

    def _run_pool(self, task, bounds, extra_state):
        if _obs.enabled():
            _obs_metrics.counter("engine.pool.tasks").inc(len(bounds))
            _obs_metrics.histogram("engine.pool.utilization").observe(
                len(bounds) / self.n_workers
            )
        pool = self._start_pool(extra_state)
        try:
            results = pool.map(task, bounds)
        finally:
            self._stop_pool(pool)
        results.sort(key=lambda item: item[0])
        return results

    @staticmethod
    def _stop_pool(pool) -> None:
        if pool is not None:
            pool.close()
            pool.join()


# ---------------------------------------------------------------------- #
# generic fan-out                                                        #
# ---------------------------------------------------------------------- #

_MAP_STATE: tuple | None = None


def _map_one(index: int):
    func, items = _MAP_STATE
    return func(items[index])


def parallel_map(func: Callable, items: Sequence, n_workers: int = 1) -> list:
    """``[func(x) for x in items]`` fanned out over forked workers.

    Order-preserving. Falls back to a serial loop when ``n_workers <= 1``,
    when fork is unavailable, or for trivially small inputs. Because
    workers are forked, ``func`` may be a closure over arbitrary state
    (frames, fitted models) without being picklable — only the *returned*
    values must pickle.
    """
    items = list(items)
    if n_workers <= 1 or _FORK_CTX is None or len(items) <= 1:
        return [func(item) for item in items]
    global _MAP_STATE
    _MAP_STATE = (func, items)
    try:
        with _FORK_CTX.Pool(processes=min(n_workers, len(items))) as pool:
            return pool.map(_map_one, range(len(items)))
    finally:
        _MAP_STATE = None
