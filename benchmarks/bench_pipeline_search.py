"""Experiment — preprocessing-pipeline search (DiffPrep [44] / SAGA [76]).

Search a 12-configuration preprocessing space (imputer × scaler × filter)
for the letters scenario with injected missing degrees, comparing exhaustive
grid search against greedy coordinate descent. Shapes to reproduce: greedy
reaches the grid optimum's quality (within noise) with fewer evaluations,
and both searches beat the default (first) configuration.
"""

import numpy as np

from repro.datasets import generate_hiring_data
from repro.errors import inject_missing
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    KNeighborsClassifier,
    MinMaxScaler,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import SearchDimension, execute, greedy_search, grid_search
from repro.text import SentenceBertTransformer

DIMENSIONS = [
    SearchDimension("imputer", {"most_frequent": None, "constant": None}),
    SearchDimension("scaler", {"standard": None, "minmax": None}),
    SearchDimension("sector", {"all": None, "healthcare": None, "finance": None}),
]


def run_search() -> dict:
    data = generate_hiring_data(n=600, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    train, __ = inject_missing(train, "degree", fraction=0.3, seed=3)
    sources = {"train_df": train, "jobdetail_df": data["jobdetail"]}
    valid_sources = {"train_df": valid, "jobdetail_df": data["jobdetail"]}

    def build(plan, config, shared):
        if "base" not in shared:
            shared["base"] = plan.source("train_df").join(
                plan.source("jobdetail_df"), on="job_id"
            )
        node = shared["base"]
        if config["sector"] != "all":
            key = ("sector", config["sector"])
            if key not in shared:
                shared[key] = node.filter(
                    lambda df, s=config["sector"]: df["sector"] == s,
                    f"sector == {config['sector']!r}",
                )
            node = shared[key]
        scaler = StandardScaler() if config["scaler"] == "standard" else MinMaxScaler()
        encoder = ColumnTransformer(
            [
                (SentenceBertTransformer(n_features=16), "letter_text"),
                (Pipeline([CellImputer(config["imputer"], fill_value="none"),
                           OneHotEncoder()]), "degree"),
                (scaler, ["age", "employer_rating"]),
            ]
        )
        return node.encode(encoder, label_column="sentiment")

    def evaluate(result):
        model = KNeighborsClassifier(5).fit(result.X, result.y)
        valid_result = execute(result.sink, valid_sources, fit=False)
        return model.score(valid_result.X, valid_result.y)

    grid = grid_search(DIMENSIONS, build, sources, evaluate)
    # One coordinate-descent round: Σ|options| = 7 evaluations vs the
    # 12-configuration grid.
    greedy = greedy_search(DIMENSIONS, build, sources, evaluate, n_rounds=1)
    default_score = next(
        r["score"]
        for r in grid.evaluations
        if r["imputer"] == "most_frequent"
        and r["scaler"] == "standard"
        and r["sector"] == "all"
    )
    return {"grid": grid, "greedy": greedy, "default_score": default_score}


def test_pipeline_search(benchmark, write_report):
    outcome = benchmark.pedantic(run_search, rounds=1, iterations=1)
    grid, greedy = outcome["grid"], outcome["greedy"]
    report = grid.render() + "\n\n" + greedy.render()
    report += (
        f"\n\ngrid: {grid.n_evaluated} evaluations; greedy: {greedy.n_evaluated}; "
        f"default config score: {outcome['default_score']:.4f}"
    )
    write_report("pipeline_search", report)

    assert grid.n_evaluated == 12
    assert greedy.n_evaluated < grid.n_evaluated
    assert grid.best_score >= outcome["default_score"]
    assert greedy.best_score >= grid.best_score - 0.03
    # Prefix sharing must kick in for the grid batch.
    assert grid.executed_operators < grid.naive_operators