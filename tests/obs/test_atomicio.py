"""Atomic artifact writes: no torn lines, no corrupt files after a crash."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import RunLedger, atomic_append_line, atomic_write_text, atomic_writer


class TestAtomicWriter:
    def test_replaces_target_on_clean_exit(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_writer(path) as handle:
            handle.write("new contents")
        assert path.read_text() == "new contents"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_crashed_write_is_invisible(self, tmp_path):
        """A writer that dies mid-write leaves the previous contents intact
        and no staging litter behind — the simulated partial write is
        unobservable after (the absence of) the rename."""
        path = tmp_path / "out.txt"
        path.write_text("previous")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_writer(path) as handle:
                handle.write("half of the new cont")  # partial write...
                raise RuntimeError("boom")  # ...then the crash
        assert path.read_text() == "previous"
        assert os.listdir(tmp_path) == ["out.txt"]  # no .tmp orphans

    def test_crashed_first_write_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert not path.exists()
        assert os.listdir(tmp_path) == []


class TestAtomicAppendLine:
    def test_appends_complete_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        atomic_append_line(path, '{"a": 1}')
        atomic_append_line(path, '{"b": 2}\n')  # trailing newline tolerated
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_quarantines_torn_tail_from_foreign_writer(self, tmp_path):
        """A non-atomic writer killed mid-line leaves a torn suffix; the
        next atomic append isolates it on its own line so a lenient
        line-skipping loader loses exactly one record, not the file."""
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2')  # torn: no trailing newline
        atomic_append_line(path, '{"c": 3}')
        lines = path.read_text().splitlines()
        assert lines == ['{"a": 1}', '{"b": 2', '{"c": 3}']
        parsed = []
        for line in lines:  # the lenient-loader idiom
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        assert parsed == [{"a": 1}, {"c": 3}]


class TestLedgerUsesAtomicAppend:
    def test_ledger_survives_torn_tail(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record_event("valuation", config={"seed": 1}, stats={"n": 2})
        # Simulate a foreign writer crashing mid-append.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        ledger.record_event("valuation", config={"seed": 2}, stats={"n": 3})
        records = RunLedger(path).load()
        assert len(records) == 2
        assert [r.config["seed"] for r in records] == [1, 2]


class TestAdvisoryLock:
    def test_lock_serializes_and_cleans_up(self, tmp_path):
        from repro.obs import advisory_lock

        path = tmp_path / "log.jsonl"
        with advisory_lock(path) as held:
            assert held  # fcntl available on this platform
            assert (tmp_path / "log.jsonl.lock").exists()
        # Sidecar stays (cheap, reusable); the target is untouched.
        assert not path.exists()

    def test_unlocked_append_can_lose_lines_locked_never(self, tmp_path):
        """Two processes hammering one file: the copy+rename append without
        the advisory lock can drop lines (read-copy-rename race); with the
        lock (the default) every line survives. This is the regression
        guard for RunLedger/JobJournal multi-process safety."""
        import subprocess
        import sys

        path = tmp_path / "log.jsonl"
        n_lines = 150
        script = (
            "import sys\n"
            "from repro.obs import atomic_append_line\n"
            "who, path = sys.argv[1], sys.argv[2]\n"
            f"for i in range({n_lines}):\n"
            "    atomic_append_line(path, f'{who}:{i}')\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, who, str(path)], env=env
            )
            for who in ("a", "b")
        ]
        for worker in workers:
            assert worker.wait(timeout=120) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 2 * n_lines  # nothing lost, nothing torn
        for who in ("a", "b"):
            seen = [line for line in lines if line.startswith(f"{who}:")]
            assert seen == [f"{who}:{i}" for i in range(n_lines)]  # in order

    def test_two_process_ledger_appends_all_survive(self, tmp_path):
        """Satellite regression: two RunLedger writers in separate processes
        interleave without losing records."""
        import subprocess
        import sys

        path = tmp_path / "ledger.jsonl"
        script = (
            "import sys\n"
            "from repro.obs import RunLedger\n"
            "who, path = sys.argv[1], sys.argv[2]\n"
            "ledger = RunLedger(path)\n"
            "for i in range(40):\n"
            "    ledger.record_event('valuation', config={'who': who, 'i': i})\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, who, str(path)], env=env
            )
            for who in ("a", "b")
        ]
        for worker in workers:
            assert worker.wait(timeout=120) == 0
        records = RunLedger(path).load()
        assert len(records) == 80
        for who in ("a", "b"):
            mine = [r.config["i"] for r in records if r.config["who"] == who]
            assert mine == list(range(40))
