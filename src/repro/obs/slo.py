"""Per-tenant SLO tracking for the valuation service.

The ROADMAP's millions-of-users story needs more than raw latency
histograms: operators reason in *objectives* — "95% of jobs under 5s,
99% of jobs succeed" — and page on *burn rate* (how fast the error budget
is being spent). :class:`SLOTracker` keeps per-tenant, per-kind latency
histograms (labeled :class:`~repro.obs.metrics.Histogram` instruments),
terminal-state counts, deadline-hit/degraded/shed ratios, and a recent
outcome window from which it derives burn-rate alerts reusing the
severity vocabulary of :class:`repro.obs.diff.Alert` — so service alerts
and drift alerts rank on one scale.

The tracker is deliberately standalone (its instruments do not live in the
global registry) so it observes every job regardless of whether tracing is
enabled; :meth:`SLOTracker.metrics_snapshot` exposes its series in registry
snapshot shape for the ``/metrics`` endpoint, which is how tenant-labeled
latency histograms reach Prometheus even with tracing off.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from . import trace as _trace
from . import metrics as _metrics
from .diff import Alert
from .metrics import Counter, Histogram, series_name

__all__ = ["SLOPolicy", "SLOTracker"]

#: Job terminal states counted as meeting the success objective. Degraded
#: jobs returned *partial* results by design (deadline/budget policy), so
#: they spend latency budget, not error budget.
_OK_STATES = frozenset({"completed", "degraded"})


@dataclass(frozen=True)
class SLOPolicy:
    """Objectives one tenant is held to (same defaults for all tenants).

    ``warn_burn_rate``/``critical_burn_rate`` are multiples of the error
    budget implied by ``success_objective``: burn rate 1.0 means failures
    are arriving exactly as fast as the budget allows; 6.0 means the
    budget would be gone in 1/6 of the window (the classic page-now
    threshold from the SRE workbook).
    """

    latency_objective_s: float = 5.0
    latency_quantile: float = 0.95
    success_objective: float = 0.99
    window: int = 256
    warn_burn_rate: float = 1.0
    critical_burn_rate: float = 6.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "latency_objective_s": self.latency_objective_s,
            "latency_quantile": self.latency_quantile,
            "success_objective": self.success_objective,
            "window": self.window,
            "warn_burn_rate": self.warn_burn_rate,
            "critical_burn_rate": self.critical_burn_rate,
        }


class _TenantState:
    """Mutable per-tenant aggregates (guarded by the tracker's lock)."""

    __slots__ = ("latency", "queue_wait", "states", "deadline_hits", "recent", "jobs")

    def __init__(self, tenant: str, window: int) -> None:
        self.latency: dict[str, Histogram] = {}
        self.queue_wait = Histogram(
            "service.job.queue_wait_s", window=window, labels={"tenant": tenant}
        )
        self.states: dict[str, int] = {}
        self.deadline_hits = 0
        self.recent: deque[bool] = deque(maxlen=window)
        self.jobs = 0


class SLOTracker:
    """Tracks latency/success objectives per tenant and raises alerts."""

    def __init__(self, policy: SLOPolicy | None = None) -> None:
        self.policy = policy or SLOPolicy()
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}

    # -- ingestion -------------------------------------------------------
    def observe_job(self, job: Any) -> None:
        """Fold one terminal :class:`~repro.service.job.Job` in (reads
        ``request.tenant``/``request.kind``, ``state``, latency properties,
        and ``stop_reason``)."""
        request = getattr(job, "request", None)
        state = getattr(job, "state", None)
        self.observe(
            tenant=str(getattr(request, "tenant", "unknown")),
            kind=str(getattr(request, "kind", "unknown")),
            state=str(getattr(state, "value", state or "unknown")),
            latency_s=getattr(job, "latency_s", None),
            queue_wait_s=getattr(job, "queue_wait_s", None),
            stop_reason=getattr(job, "stop_reason", None),
        )

    def observe(
        self,
        tenant: str,
        kind: str,
        state: str,
        latency_s: float | None = None,
        queue_wait_s: float | None = None,
        stop_reason: str | None = None,
    ) -> None:
        """Record one terminal job outcome for ``tenant``."""
        with self._lock:
            entry = self._tenants.get(tenant)
            if entry is None:
                entry = _TenantState(tenant, self.policy.window)
                self._tenants[tenant] = entry
            entry.jobs += 1
            entry.states[state] = entry.states.get(state, 0) + 1
            entry.recent.append(state in _OK_STATES)
            if stop_reason == "deadline":
                entry.deadline_hits += 1
            if latency_s is not None:
                hist = entry.latency.get(kind)
                if hist is None:
                    hist = Histogram(
                        "service.job.latency_s",
                        window=self.policy.window,
                        labels={"tenant": tenant, "kind": kind},
                    )
                    entry.latency[kind] = hist
                hist.observe(latency_s)
            if queue_wait_s is not None:
                entry.queue_wait.observe(queue_wait_s)
        # Mirror into the global registry when tracing is on, so tracing()
        # windows over service runs see labeled job metrics too.
        if _trace.enabled():
            _metrics.counter("service.job.terminal", tenant=tenant, state=state).inc()
            if latency_s is not None:
                _metrics.histogram(
                    "service.job.latency_s", tenant=tenant, kind=kind
                ).observe(latency_s)

    # -- derived views ---------------------------------------------------
    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def _burn_rate(self, entry: _TenantState) -> float:
        if not entry.recent:
            return 0.0
        bad = entry.recent.count(False) / len(entry.recent)
        budget = 1.0 - self.policy.success_objective
        return bad / budget if budget > 0 else float("inf") if bad else 0.0

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-tenant aggregate view: counts, ratios, burn rate, and
        per-kind latency quantiles."""
        with self._lock:
            out: dict[str, dict[str, Any]] = {}
            for tenant in sorted(self._tenants):
                entry = self._tenants[tenant]
                jobs = entry.jobs or 1
                latency = {
                    kind: {
                        "count": hist.count,
                        "mean_s": hist.mean,
                        "p50_s": hist.quantile(0.50),
                        "p95_s": hist.quantile(0.95),
                        "p99_s": hist.quantile(0.99),
                    }
                    for kind, hist in sorted(entry.latency.items())
                }
                out[tenant] = {
                    "jobs": entry.jobs,
                    "states": dict(entry.states),
                    "degraded_ratio": entry.states.get("degraded", 0) / jobs,
                    "failure_ratio": sum(
                        n for s, n in entry.states.items() if s not in _OK_STATES
                    )
                    / jobs,
                    "shed_ratio": entry.states.get("rejected", 0) / jobs,
                    "deadline_hit_ratio": entry.deadline_hits / jobs,
                    "burn_rate": self._burn_rate(entry),
                    "queue_wait_p95_s": entry.queue_wait.quantile(0.95),
                    "latency": latency,
                }
            return out

    def quantiles(self, tenant: str, kind: str | None = None) -> dict[str, float | None]:
        """p50/p95/p99 for one tenant (optionally one job kind) — the
        numbers ``bench_service`` reports instead of ad-hoc timing."""
        with self._lock:
            entry = self._tenants.get(tenant)
            if entry is None:
                return {"p50_s": None, "p95_s": None, "p99_s": None, "count": 0}
            if kind is not None:
                hists = [h for k, h in entry.latency.items() if k == kind]
            else:
                hists = list(entry.latency.values())
            merged = Histogram("quantiles", window=self.policy.window * max(1, len(hists)))
            for hist in hists:
                merged.merge(hist.snapshot())
            return {
                "p50_s": merged.quantile(0.50),
                "p95_s": merged.quantile(0.95),
                "p99_s": merged.quantile(0.99),
                "count": merged.count,
            }

    def metrics_snapshot(self) -> dict[str, dict[str, Any]]:
        """The tracker's series in registry-snapshot shape, for merging
        into the ``/metrics`` exposition (present even with tracing off)."""
        out: dict[str, dict[str, Any]] = {}
        with self._lock:
            for tenant in sorted(self._tenants):
                entry = self._tenants[tenant]
                for kind, hist in sorted(entry.latency.items()):
                    out[series_name(hist.name, hist.labels)] = hist.snapshot()
                if entry.queue_wait.count:
                    out[
                        series_name(entry.queue_wait.name, entry.queue_wait.labels)
                    ] = entry.queue_wait.snapshot()
                for state, count in sorted(entry.states.items()):
                    series = Counter(
                        "service.job.terminal", labels={"tenant": tenant, "state": state}
                    )
                    series.inc(count)
                    out[series_name(series.name, series.labels)] = series.snapshot()
        return out

    # -- alerting --------------------------------------------------------
    def alerts(self) -> list[Alert]:
        """Burn-rate and latency-objective violations, critical first."""
        policy = self.policy
        out: list[Alert] = []
        for tenant, snap in self.snapshot().items():
            burn = snap["burn_rate"]
            if burn >= policy.warn_burn_rate and snap["jobs"] >= 5:
                severity = (
                    "critical" if burn >= policy.critical_burn_rate else "warn"
                )
                out.append(
                    Alert(
                        severity=severity,
                        kind="slo_burn",
                        node=f"tenant:{tenant}",
                        column=None,
                        metric="burn_rate",
                        value=burn,
                        threshold=policy.warn_burn_rate,
                        message=(
                            f"tenant {tenant!r} burning error budget at "
                            f"{burn:.2f}x (objective {policy.success_objective:.2%})"
                        ),
                    )
                )
            q_label = f"p{int(policy.latency_quantile * 100)}_s"
            for kind, stats in snap["latency"].items():
                observed = stats.get(q_label)
                if observed is None or stats["count"] < 5:
                    continue
                if observed > policy.latency_objective_s:
                    ratio = observed / policy.latency_objective_s
                    out.append(
                        Alert(
                            severity="critical" if ratio >= 2.0 else "warn",
                            kind="slo_latency",
                            node=f"tenant:{tenant}",
                            column=kind,
                            metric=q_label,
                            value=observed,
                            threshold=policy.latency_objective_s,
                            message=(
                                f"tenant {tenant!r} {kind} {q_label}="
                                f"{observed:.3f}s exceeds objective "
                                f"{policy.latency_objective_s:.3f}s"
                            ),
                        )
                    )
        severity_rank = {"critical": 0, "warn": 1}
        out.sort(key=lambda a: (severity_rank.get(a.severity, 2), a.node, a.kind))
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy.to_dict(),
            "tenants": self.snapshot(),
            "alerts": [alert.to_dict() for alert in self.alerts()],
        }
