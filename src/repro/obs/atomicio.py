"""Atomic file writes — readers never observe torn lines.

Every on-disk artifact this library produces (the :class:`~repro.obs.ledger.
RunLedger` JSONL, trace exports, valuation checkpoints) may be read while a
writer is mid-flight — a monitoring dashboard tailing the ledger, a resumed
run loading the checkpoint a killed run was writing. A plain ``open(...,
"w")`` or ``"a"`` exposes two failure windows: a reader can observe a
half-written ("torn") line, and a writer killed mid-write leaves a corrupt
file behind permanently.

The helpers here close both windows with the classic ``write temp + fsync +
rename`` protocol: content is staged in a temporary file *in the target's
directory* (same filesystem, so the rename is atomic), flushed and fsync'd,
then moved over the target with :func:`os.replace`. POSIX guarantees that
readers see either the old file or the new one, never a mixture; a writer
killed at any point leaves the target untouched (the orphaned ``*.tmp``
staging file is invisible to loaders and reclaimed on the next write).

Appends (:func:`atomic_append_line`) are implemented as copy + append +
rename, which is O(file size) per append — the right trade for the small,
human-scale ledgers this library writes. Lenient line-skipping loaders stay
in place downstream as defense-in-depth for files produced by third-party
writers that do not use this module.

Copy-and-rename appends are atomic against *readers* but not against other
*writers*: two processes that read the same base file and rename over each
other lose one of the two lines. :func:`advisory_lock` closes that window
with a cross-process ``fcntl`` advisory lock on a ``<name>.lock`` sidecar,
and :func:`atomic_append_line` takes it by default — concurrent service
jobs appending to one ledger serialize instead of clobbering. On platforms
without ``fcntl`` (Windows) the lock degrades to a no-op, matching the
single-writer assumption that held before it existed.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

try:  # POSIX only; Windows degrades to unlocked single-writer behavior.
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - exercised only on Windows
    _fcntl = None

__all__ = [
    "advisory_lock",
    "atomic_writer",
    "atomic_write_text",
    "atomic_append_line",
]


@contextmanager
def advisory_lock(path: Any) -> Iterator[bool]:
    """Hold an exclusive cross-process advisory lock scoped to ``path``.

    The lock lives on a ``<name>.lock`` sidecar file (never on the target
    itself — the target is replaced by rename, which would orphan a lock
    held on its inode). Yields True while the lock is held, or False when
    ``fcntl`` is unavailable and the caller proceeds unlocked. Reentrant
    use within one process deadlocks by design — hold it briefly around a
    single read-modify-rename cycle.
    """
    if _fcntl is None:
        yield False
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "a", encoding="utf-8") as handle:
        _fcntl.flock(handle.fileno(), _fcntl.LOCK_EX)
        try:
            yield True
        finally:
            _fcntl.flock(handle.fileno(), _fcntl.LOCK_UN)


@contextmanager
def atomic_writer(path: Any, encoding: str = "utf-8") -> Iterator[TextIO]:
    """Context manager yielding a text handle whose contents replace ``path``
    atomically on clean exit.

    On an exception inside the body, the staging file is removed and the
    target is left exactly as it was — a crashed writer is invisible.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Any, text: str, encoding: str = "utf-8") -> None:
    """Replace ``path``'s contents with ``text`` atomically."""
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)


def atomic_append_line(
    path: Any, line: str, encoding: str = "utf-8", lock: bool = True
) -> None:
    """Append one line to ``path`` so readers never see a torn suffix.

    The existing contents are copied to a staging file, the new line is
    appended (a trailing newline is added if missing), and the staging file
    is renamed over the original. Concurrent readers observe either the old
    file or the old file plus the complete new line — never a prefix of it.

    With ``lock=True`` (the default) the whole read-append-rename cycle
    runs under :func:`advisory_lock`, so concurrent *writers* in separate
    processes serialize instead of renaming over each other's lines. Pass
    ``lock=False`` only when the caller already holds the lock or is
    provably the sole writer.
    """
    path = Path(path)
    if not line.endswith("\n"):
        line += "\n"

    def append() -> None:
        existing = ""
        if path.exists():
            with open(path, "r", encoding=encoding) as handle:
                existing = handle.read()
            if existing and not existing.endswith("\n"):
                # A torn tail from a non-atomic writer: quarantine it behind
                # a newline so the lenient loader skips exactly one bad line.
                existing += "\n"
        with atomic_writer(path, encoding=encoding) as handle:
            handle.write(existing)
            handle.write(line)

    if lock:
        with advisory_lock(path):
            append()
    else:
        append()
