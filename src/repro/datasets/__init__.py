"""Synthetic datasets: the hiring/letters scenario and numeric generators."""

from .letters import (
    DEGREES,
    SECTORS,
    generate_hiring_data,
    load_recommendation_letters,
    load_sidedata,
)
from .tabular import (
    make_biased_hiring,
    make_blobs,
    make_classification,
    make_moons,
    make_regression,
)

__all__ = [
    "DEGREES",
    "SECTORS",
    "generate_hiring_data",
    "load_recommendation_letters",
    "load_sidedata",
    "make_biased_hiring",
    "make_blobs",
    "make_classification",
    "make_moons",
    "make_regression",
]
