"""Beta Shapley importance (Kwon & Zou [43]).

Beta(α, β)-Shapley generalises Data Shapley by re-weighting marginal
contributions by the cardinality of the subset they are measured against.
Beta(1, 1) recovers the Shapley value exactly; β > α emphasises *small*
subsets, which de-noises the signal because marginal contributions against
large subsets are dominated by retraining variance.
"""

from __future__ import annotations

from math import lgamma

import numpy as np

from .base import ImportanceResult
from .engine import DEFAULT_CACHE_SIZE, ValuationEngine
from .utility import Utility

__all__ = ["beta_shapley_mc", "beta_weights"]


def beta_weights(n: int, alpha: float = 1.0, beta: float = 16.0) -> np.ndarray:
    """Normalised weight for each preceding-subset size j = 0..n-1.

    ``w(j) ∝ C(n−1, j) · B(j + α, n − 1 − j + β)`` expressed via log-gamma
    for stability and normalised to sum to 1, so the estimator is a weighted
    mean of per-size marginal contributions. The convention matches the
    library docs: **β > α concentrates weight on small subsets** (marginal
    contributions measured early in the permutation), β = α = 1 is uniform
    (ordinary Shapley).
    """
    if alpha <= 0 or beta <= 0:
        raise ValueError("alpha and beta must be positive")
    js = np.arange(n)
    log_w = np.empty(n)
    for j in js:
        log_w[j] = (
            lgamma(j + alpha)
            + lgamma(n - 1 - j + beta)
            - lgamma(n - 1 + alpha + beta)
            + lgamma(n)  # C(n-1, j) numerator part
            - lgamma(j + 1)
            - lgamma(n - j)
        )
    log_w -= log_w.max()
    w = np.exp(log_w)
    return w / w.sum()


def beta_shapley_mc(
    utility: Utility | None,
    alpha: float = 1.0,
    beta: float = 16.0,
    n_permutations: int = 100,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    truncation_tolerance: float = 0.0,
    convergence_tolerance: float | None = None,
    check_every: int = 10,
    antithetic: bool = False,
    deadline_s: float | None = None,
    max_evals: int | None = None,
    checkpoint=None,
    resume: bool = False,
    engine: ValuationEngine | None = None,
) -> ImportanceResult:
    """Permutation-sampling Beta(α, β)-Shapley estimator.

    Samples permutations exactly like TMC-Shapley but weights the marginal
    contribution of a point inserted at position j by the Beta weight of
    subset size j. With α = β = 1 this degenerates to uniform weights and
    estimates the ordinary Shapley value (a property the tests rely on).

    Runs on the shared valuation engine (see :func:`repro.importance.
    shapley.shapley_mc` for the ``n_workers``/``cache_size``/convergence/
    ``engine`` knobs); ``n_workers=1`` with defaults reproduces the
    historical serial values for the same seed.
    """
    if engine is None:
        if utility is None:
            raise ValueError("either utility or engine must be provided")
        engine = ValuationEngine(
            utility,
            n_workers=n_workers,
            cache_size=cache_size,
            checkpoint=checkpoint,
            resume=resume,
        )
    n = engine.n_train
    weights = beta_weights(n, alpha, beta) * n  # scale: mean weight 1
    run = engine.run_permutations(
        n_permutations,
        seed=seed,
        weights=weights,
        truncation_tolerance=truncation_tolerance,
        convergence_tolerance=convergence_tolerance,
        check_every=check_every,
        antithetic=antithetic,
        deadline_s=deadline_s,
        max_evals=max_evals,
    )
    result = engine.result_from_run(run, n_permutations)
    return ImportanceResult(
        method=f"beta_shapley({alpha:g},{beta:g})",
        values=run.values(),
        extras={
            "alpha": alpha,
            "beta": beta,
            "n_permutations": n_permutations,
            "n_permutations_run": run.n_permutations,
            "truncated_scans": run.truncated_scans,
            "stopped_early": run.stopped_early,
            "max_stderr": run.max_stderr,
            "antithetic": antithetic,
            "converged": result.converged,
            "stop_reason": result.stop_reason,
            "stderr": result.stderr,
            "census": result.census,
            **engine.stats(),
        },
    )
