"""Property-based tests for the pipeline executor.

Hypothesis generates random small select-project-join pipelines and checks
the two load-bearing invariants on each:

1. **Provenance faithfulness**: re-running the pipeline with any subset of
   source rows removed equals dropping, from the original output, exactly
   the rows whose why-provenance touches the removed tuples.
2. **Row-id stability**: output row ids are always a subset of the driving
   source's row ids.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame
from repro.pipeline import PipelinePlan, execute


@st.composite
def random_pipeline_case(draw):
    n = draw(st.integers(min_value=4, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    base = DataFrame(
        {
            "k": rng.choice(["a", "b", "c"], size=n).astype(str),
            "v": rng.normal(size=n).round(3),
            "g": rng.choice(["x", "y"], size=n).astype(str),
        }
    )
    side = DataFrame(
        {"k": np.asarray(["a", "b"], dtype=str), "w": np.asarray([1.0, 2.0])}
    )
    ops = draw(
        st.lists(
            st.sampled_from(["filter_v", "filter_g", "join", "map"]),
            min_size=1,
            max_size=4,
        )
    )
    thresholds = draw(
        st.lists(
            st.floats(min_value=-1.5, max_value=1.5, allow_nan=False),
            min_size=len(ops),
            max_size=len(ops),
        )
    )
    removal_seed = draw(st.integers(min_value=0, max_value=10_000))
    return base, side, ops, thresholds, removal_seed


def build(plan, ops, thresholds):
    node = plan.source("base")
    side_node = plan.source("side")
    joined = False
    for op, threshold in zip(ops, thresholds):
        if op == "filter_v":
            node = node.filter(
                lambda df, t=threshold: df["v"] > t, f"v > {threshold:.2f}"
            )
        elif op == "filter_g":
            node = node.filter(lambda df: df["g"] == "x", "g == 'x'")
        elif op == "join" and not joined:
            node = node.join(side_node, on="k")
            joined = True
        elif op == "map":
            node = node.with_column("v2", lambda df: df["v"] * 2.0)
    return node


@given(case=random_pipeline_case())
@settings(max_examples=50, deadline=None)
def test_provenance_removal_equals_rerun(case):
    base, side, ops, thresholds, removal_seed = case
    plan = PipelinePlan()
    node = build(plan, ops, thresholds)
    sources = {"base": base, "side": side}
    result = execute(node, sources)

    rng = np.random.default_rng(removal_seed)
    n_remove = int(rng.integers(0, base.num_rows // 2 + 1))
    removed_ids = rng.choice(base.row_ids, size=n_remove, replace=False)

    # Fast path: drop output rows via provenance.
    affected = result.provenance.outputs_of("base", removed_ids.tolist())
    keep_mask = np.ones(result.n_rows, dtype=bool)
    keep_mask[affected] = False
    fast = result.frame.filter(keep_mask)

    # Slow path: re-run the pipeline on the filtered source.
    reduced = base.filter(~np.isin(base.row_ids, removed_ids))
    rerun = execute(node, {"base": reduced, "side": side})
    assert fast.equals(rerun.frame)


@given(case=random_pipeline_case())
@settings(max_examples=50, deadline=None)
def test_row_ids_stable_through_pipeline(case):
    base, side, ops, thresholds, __ = case
    plan = PipelinePlan()
    node = build(plan, ops, thresholds)
    result = execute(node, {"base": base, "side": side})
    assert set(result.frame.row_ids.tolist()) <= set(base.row_ids.tolist())
    # Every output row's provenance names exactly one base tuple.
    ids = result.provenance.source_row_ids("base")
    assert np.array_equal(ids, result.frame.row_ids)
