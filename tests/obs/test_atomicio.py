"""Atomic artifact writes: no torn lines, no corrupt files after a crash."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import RunLedger, atomic_append_line, atomic_write_text, atomic_writer


class TestAtomicWriter:
    def test_replaces_target_on_clean_exit(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_writer(path) as handle:
            handle.write("new contents")
        assert path.read_text() == "new contents"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_crashed_write_is_invisible(self, tmp_path):
        """A writer that dies mid-write leaves the previous contents intact
        and no staging litter behind — the simulated partial write is
        unobservable after (the absence of) the rename."""
        path = tmp_path / "out.txt"
        path.write_text("previous")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_writer(path) as handle:
                handle.write("half of the new cont")  # partial write...
                raise RuntimeError("boom")  # ...then the crash
        assert path.read_text() == "previous"
        assert os.listdir(tmp_path) == ["out.txt"]  # no .tmp orphans

    def test_crashed_first_write_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert not path.exists()
        assert os.listdir(tmp_path) == []


class TestAtomicAppendLine:
    def test_appends_complete_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        atomic_append_line(path, '{"a": 1}')
        atomic_append_line(path, '{"b": 2}\n')  # trailing newline tolerated
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_quarantines_torn_tail_from_foreign_writer(self, tmp_path):
        """A non-atomic writer killed mid-line leaves a torn suffix; the
        next atomic append isolates it on its own line so a lenient
        line-skipping loader loses exactly one record, not the file."""
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2')  # torn: no trailing newline
        atomic_append_line(path, '{"c": 3}')
        lines = path.read_text().splitlines()
        assert lines == ['{"a": 1}', '{"b": 2', '{"c": 3}']
        parsed = []
        for line in lines:  # the lenient-loader idiom
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        assert parsed == [{"a": 1}, {"c": 3}]


class TestLedgerUsesAtomicAppend:
    def test_ledger_survives_torn_tail(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record_event("valuation", config={"seed": 1}, stats={"n": 2})
        # Simulate a foreign writer crashing mid-append.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        ledger.record_event("valuation", config={"seed": 2}, stats={"n": 3})
        records = RunLedger(path).load()
        assert len(records) == 2
        assert [r.config["seed"] for r in records] == [1, 2]


class TestAdvisoryLock:
    def test_lock_serializes_and_cleans_up(self, tmp_path):
        from repro.obs import advisory_lock

        path = tmp_path / "log.jsonl"
        with advisory_lock(path) as held:
            assert held  # fcntl available on this platform
            assert (tmp_path / "log.jsonl.lock").exists()
        # Sidecar stays (cheap, reusable); the target is untouched.
        assert not path.exists()

    def test_unlocked_append_can_lose_lines_locked_never(self, tmp_path):
        """Two processes hammering one file: the copy+rename append without
        the advisory lock can drop lines (read-copy-rename race); with the
        lock (the default) every line survives. This is the regression
        guard for RunLedger/JobJournal multi-process safety."""
        import subprocess
        import sys

        path = tmp_path / "log.jsonl"
        n_lines = 150
        script = (
            "import sys\n"
            "from repro.obs import atomic_append_line\n"
            "who, path = sys.argv[1], sys.argv[2]\n"
            f"for i in range({n_lines}):\n"
            "    atomic_append_line(path, f'{who}:{i}')\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, who, str(path)], env=env
            )
            for who in ("a", "b")
        ]
        for worker in workers:
            assert worker.wait(timeout=120) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 2 * n_lines  # nothing lost, nothing torn
        for who in ("a", "b"):
            seen = [line for line in lines if line.startswith(f"{who}:")]
            assert seen == [f"{who}:{i}" for i in range(n_lines)]  # in order

    def test_two_process_ledger_appends_all_survive(self, tmp_path):
        """Satellite regression: two RunLedger writers in separate processes
        interleave without losing records."""
        import subprocess
        import sys

        path = tmp_path / "ledger.jsonl"
        script = (
            "import sys\n"
            "from repro.obs import RunLedger\n"
            "who, path = sys.argv[1], sys.argv[2]\n"
            "ledger = RunLedger(path)\n"
            "for i in range(40):\n"
            "    ledger.record_event('valuation', config={'who': who, 'i': i})\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, who, str(path)], env=env
            )
            for who in ("a", "b")
        ]
        for worker in workers:
            assert worker.wait(timeout=120) == 0
        records = RunLedger(path).load()
        assert len(records) == 80
        for who in ("a", "b"):
            mine = [r.config["i"] for r in records if r.config["who"] == who]
            assert mine == list(range(40))


class TestEnvelopeFraming:
    def test_frame_is_one_json_object_per_line(self):
        from repro.obs.atomicio import ENVELOPE_SCHEMA_VERSION, frame_line

        line = frame_line({"b": 2, "a": [1.5, None, "x"]})
        assert "\n" not in line
        envelope = json.loads(line)
        assert envelope["_env"] == ENVELOPE_SCHEMA_VERSION
        assert set(envelope) == {"_env", "crc", "data"}
        assert envelope["data"] == {"b": 2, "a": [1.5, None, "x"]}

    def test_unframe_round_trips(self):
        from repro.obs.atomicio import frame_line, unframe

        payload = {"x": 1e-17, "y": "ünïcode", "z": [True, False]}
        out, reason = unframe(json.loads(frame_line(payload)))
        assert reason is None and out == payload

    def test_crc_survives_parse_reserialize_round_trip(self):
        from repro.obs.atomicio import canonical_json, crc32_hex, frame_line

        payload = {"f": 0.1 + 0.2, "tiny": 5e-324, "big": 1.7976931348623157e308}
        envelope = json.loads(frame_line(payload))
        # the reader's recomputation path, explicitly
        assert crc32_hex(canonical_json(envelope["data"])) == envelope["crc"]

    def test_v1_unframed_records_pass_through(self):
        from repro.obs.atomicio import unframe

        legacy = {"run_id": "r1", "kind": "pipeline"}
        assert unframe(legacy) == (legacy, None)
        assert unframe([1, 2]) == ([1, 2], None)
        assert unframe("scalar") == ("scalar", None)

    def test_tampered_payload_fails_crc(self):
        from repro.obs.atomicio import frame_line, unframe

        envelope = json.loads(frame_line({"amount": 100}))
        envelope["data"]["amount"] = 999
        _, reason = unframe(envelope)
        assert reason == "crc_mismatch"

    def test_malformed_envelope_is_flagged(self):
        from repro.obs.atomicio import unframe

        assert unframe({"_env": 2, "data": {"x": 1}})[1] == "envelope_malformed"
        assert unframe({"_env": 2, "crc": "00000000"})[1] == "envelope_malformed"


class TestReadJsonl:
    def _write(self, path, lines):
        path.write_text("".join(line + "\n" for line in lines))

    def test_missing_file_is_clean_empty(self, tmp_path):
        from repro.obs.atomicio import read_jsonl

        payloads, report = read_jsonl(tmp_path / "absent.jsonl")
        assert payloads == [] and report.clean and report.n_loaded == 0

    def test_mixed_v1_v2_file_loads_fully(self, tmp_path):
        from repro.obs.atomicio import frame_line, read_jsonl

        path = tmp_path / "mixed.jsonl"
        self._write(path, ['{"i": 0}', frame_line({"i": 1}), '{"i": 2}'])
        payloads, report = read_jsonl(path)
        assert [p["i"] for p in payloads] == [0, 1, 2]
        assert report.clean and report.n_loaded == 3

    def test_corruption_quarantines_and_loads_rest(self, tmp_path):
        from repro.obs.atomicio import frame_line, read_jsonl

        path = tmp_path / "rotten.jsonl"
        good = frame_line({"i": 0})
        torn = frame_line({"i": 1})[:-9]
        flipped = frame_line({"i": 2}).replace('"i":2', '"i":3')
        self._write(path, [good, torn, flipped, "", "plain garbage"])
        payloads, report = read_jsonl(path, artifact="test")
        assert [p["i"] for p in payloads] == [0]
        assert report.n_quarantined == 3
        assert report.reasons == {
            "not_json": 2, "crc_mismatch": 1,
        }
        sidecar = tmp_path / "rotten.jsonl.corrupt"
        assert report.quarantine_path == str(sidecar)
        assert sidecar.exists()

    def test_sidecar_is_itself_a_valid_framed_artifact(self, tmp_path):
        from repro.obs.atomicio import frame_line, read_jsonl

        path = tmp_path / "a.jsonl"
        self._write(path, [frame_line({"i": 0}), "junk"])
        read_jsonl(path, artifact="test")
        records, report = read_jsonl(
            path.with_name("a.jsonl.corrupt"), artifact="quarantine"
        )
        assert report.clean
        (record,) = records
        assert record["kind"] == "quarantined_record"
        assert record["artifact"] == "test"
        assert record["raw"] == "junk"
        assert record["reason"] == "not_json"
        assert record["line_no"] == 1

    def test_repeated_loads_do_not_requarantine(self, tmp_path):
        from repro.obs import metrics as obs_metrics
        from repro.obs.atomicio import frame_line, read_jsonl

        path = tmp_path / "a.jsonl"
        self._write(path, [frame_line({"i": 0}), "junk"])
        _, first = read_jsonl(path, artifact="test")
        assert first.n_quarantined_new == 1
        _, second = read_jsonl(path, artifact="test")
        assert second.n_quarantined == 1  # still accounted...
        assert second.n_quarantined_new == 0  # ...but not re-quarantined
        sidecar_lines = (
            (tmp_path / "a.jsonl.corrupt").read_text().strip().splitlines()
        )
        assert len(sidecar_lines) == 1
        name = "storage.records_quarantined{artifact=test}"
        assert obs_metrics.snapshot()[name]["value"] == 1.0
        assert len(second.alerts) == 0  # no fresh damage -> no new alert

    def test_alert_severity_tracks_surviving_records(self, tmp_path):
        from repro.obs.atomicio import frame_line, read_jsonl, storage_alerts

        mixed = tmp_path / "mixed.jsonl"
        self._write(mixed, [frame_line({"i": 0}), "junk"])
        _, partial = read_jsonl(mixed, artifact="m")
        assert partial.alerts[0].severity == "warn"
        dead = tmp_path / "dead.jsonl"
        self._write(dead, ["junk1", "junk2"])
        _, total = read_jsonl(dead, artifact="d")
        assert total.alerts[0].severity == "critical"
        ring = storage_alerts()
        assert [a.severity for a in ring] == ["warn", "critical"]
        assert all(a.kind == "storage_corruption" for a in ring)

    def test_quarantine_false_skips_sidecar(self, tmp_path):
        from repro.obs.atomicio import read_jsonl

        path = tmp_path / "a.jsonl"
        self._write(path, ["junk"])
        _, report = read_jsonl(path, quarantine=False)
        assert report.n_quarantined == 1
        assert not (tmp_path / "a.jsonl.corrupt").exists()

    def test_non_object_records_respect_require_objects(self, tmp_path):
        from repro.obs.atomicio import read_jsonl

        path = tmp_path / "a.jsonl"
        self._write(path, ["[1, 2]", "3"])
        payloads, report = read_jsonl(path, require_objects=False)
        assert payloads == [[1, 2], 3] and report.clean
        _, strict = read_jsonl(tmp_path / "a.jsonl", artifact="s")
        assert strict.reasons == {"not_object": 2}

    def test_report_to_dict_is_json_serializable(self, tmp_path):
        from repro.obs.atomicio import read_jsonl

        path = tmp_path / "a.jsonl"
        self._write(path, ["junk"])
        _, report = read_jsonl(path, artifact="t")
        json.dumps(report.to_dict())


class TestIOHookInstallation:
    def test_io_hooks_scope_restores_previous(self):
        from repro.obs.atomicio import IOHooks, install_io_hooks, io_hooks

        outer = IOHooks()
        assert install_io_hooks(outer) is None
        inner = IOHooks()
        with io_hooks(inner) as active:
            assert active is inner
        assert install_io_hooks(None) is outer

    def test_hooks_see_the_commit_sequence(self, tmp_path):
        from repro.obs.atomicio import IOHooks, atomic_write_text, io_hooks

        calls = []

        class Spy(IOHooks):
            def on_commit(self, path, handle):
                calls.append(("commit", path.name))

            def on_fsync(self, path, fileno):
                calls.append(("fsync", path.name))
                return True

            def on_replace(self, tmp, path, when):
                calls.append((f"replace_{when}", path.name))

            def on_dirsync(self, dirpath):
                calls.append(("dirsync", dirpath.name))
                return True

        with io_hooks(Spy()):
            atomic_write_text(tmp_path / "x.txt", "data")
        assert [c[0] for c in calls] == [
            "commit", "fsync", "replace_before", "replace_after", "dirsync",
        ]
        assert (tmp_path / "x.txt").read_text() == "data"

    def test_fsync_dir_best_effort_true_on_posix(self, tmp_path):
        from repro.obs.atomicio import fsync_dir

        assert fsync_dir(tmp_path) is True
