"""Admission control: fair share, bounded depth, shedding, circuit breaking."""

from __future__ import annotations

import pytest

from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    FairShareQueue,
    Job,
    JobRejected,
    JobRequest,
    RetryPolicy,
)


def job(tenant="t", priority=0, ident="j"):
    return Job(ident, JobRequest(kind="v", tenant=tenant, priority=priority))


class TestFairShareQueue:
    def test_round_robin_across_tenants(self):
        queue = FairShareQueue()
        # Tenant a floods; b and c each queue one job.
        for i in range(4):
            queue.push(job("a", ident=f"a{i}"))
        queue.push(job("b", ident="b0"))
        queue.push(job("c", ident="c0"))
        order = [queue.pop().job_id for _ in range(6)]
        # Every tenant is served once per rotation: b and c never wait
        # behind a's backlog.
        assert order == ["a0", "b0", "c0", "a1", "a2", "a3"]

    def test_priority_within_lane_fifo_among_equals(self):
        queue = FairShareQueue()
        queue.push(job("t", priority=0, ident="low"))
        queue.push(job("t", priority=5, ident="hi-first"))
        queue.push(job("t", priority=5, ident="hi-second"))
        assert [queue.pop().job_id for _ in range(3)] == [
            "hi-first", "hi-second", "low",
        ]

    def test_lowest_priority_prefers_newest(self):
        queue = FairShareQueue()
        old = job("a", priority=0, ident="old")
        queue.push(old)
        new = job("b", priority=0, ident="new")
        new.submitted_at = old.submitted_at + 1.0
        queue.push(new)
        queue.push(job("c", priority=3, ident="high"))
        assert queue.lowest_priority().job_id == "new"

    def test_remove(self):
        queue = FairShareQueue()
        target = job("t", ident="x")
        queue.push(target)
        assert queue.remove(target) and len(queue) == 0
        assert not queue.remove(target)


class TestAdmissionController:
    def test_queue_full_rejects_equal_priority(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=2))
        controller.admit(job(ident="a"))
        controller.admit(job(ident="b"))
        with pytest.raises(JobRejected, match="queue_full"):
            controller.admit(job(ident="c"))
        assert len(controller.queue) == 2

    def test_higher_priority_sheds_the_lowest(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=2))
        controller.admit(job(priority=0, ident="victim"))
        controller.admit(job(priority=5, ident="keeper"))
        shed = controller.admit(job(priority=3, ident="vip"))
        assert shed.job_id == "victim"
        assert len(controller.queue) == 2  # bound holds through the swap

    def test_shedding_requires_strictly_higher_priority(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=1))
        controller.admit(job(priority=2, ident="incumbent"))
        with pytest.raises(JobRejected, match="queue_full"):
            controller.admit(job(priority=2, ident="peer"))

    def test_shedding_can_be_disabled(self):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=1, shed_lower_priority=False)
        )
        controller.admit(job(priority=0))
        with pytest.raises(JobRejected, match="queue_full"):
            controller.admit(job(priority=9))

    def test_tenant_quota(self):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=10, max_queued_per_tenant=1)
        )
        controller.admit(job("greedy", ident="a"))
        with pytest.raises(JobRejected, match="tenant_quota"):
            controller.admit(job("greedy", ident="b"))
        controller.admit(job("other", ident="c"))  # other tenants unaffected

    def test_open_breaker_rejects_submissions(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=10),
            BreakerPolicy(failure_threshold=2, cooldown_s=5.0),
            clock=clock,
        )
        controller.record_result("t", ok=False)
        controller.record_result("t", ok=False)
        with pytest.raises(JobRejected, match="circuit_open"):
            controller.admit(job("t"))
        controller.admit(job("other"))  # breakers are per tenant
        clock.now += 5.0
        controller.admit(job("t"))  # half-open lets a probe through


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_full_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=3, cooldown_s=10.0), clock=clock
        )
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.now += 10.0
        assert breaker.state == "half_open" and breaker.allow()
        breaker.record_failure()  # failed probe re-opens with fresh cooldown
        assert breaker.state == "open"
        clock.now += 10.0
        breaker.record_success()  # successful probe closes fully
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, max_backoff_s=0.5)
        assert [policy.delay_s(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
