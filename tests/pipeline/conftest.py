"""Shared pipeline fixtures: the Figure-3 style letters pipeline."""

import numpy as np
import pytest

from repro.datasets import generate_hiring_data
from repro.learn import CellImputer, ColumnTransformer, OneHotEncoder, Pipeline, StandardScaler
from repro.learn.model_selection import split_frame
from repro.pipeline import PipelinePlan
from repro.text import SentenceBertTransformer


@pytest.fixture(scope="module")
def hiring_data():
    return generate_hiring_data(n=400, seed=7)


@pytest.fixture(scope="module")
def hiring_splits(hiring_data):
    train, valid = split_frame(hiring_data["letters"], fractions=(0.75, 0.25), seed=1)
    return train, valid


def build_letters_pipeline(sector: str = "healthcare"):
    """The paper's Figure-3 pipeline (delegates to the public template)."""
    from repro.pipeline import letters_pipeline

    return letters_pipeline(sector=sector)


@pytest.fixture()
def letters_pipeline():
    return build_letters_pipeline()


@pytest.fixture()
def sources(hiring_data, hiring_splits):
    train, __ = hiring_splits
    return {
        "train_df": train,
        "jobdetail_df": hiring_data["jobdetail"],
        "social_df": hiring_data["social"],
    }


@pytest.fixture()
def valid_sources(hiring_data, hiring_splits):
    __, valid = hiring_splits
    return {
        "train_df": valid,
        "jobdetail_df": hiring_data["jobdetail"],
        "social_df": hiring_data["social"],
    }
