"""Tests for distribution-drift inspections."""

import numpy as np
import pytest

from repro.errors import inject_distribution_shift, inject_selection_bias
from repro.frame import DataFrame
from repro.pipeline import (
    categorical_drift,
    drift_report,
    label_balance_shift,
    numeric_drift,
)


@pytest.fixture()
def reference():
    rng = np.random.default_rng(0)
    return DataFrame(
        {
            "value": rng.normal(size=400),
            "group": rng.choice(["A", "B"], size=400, p=[0.7, 0.3]).astype(str),
            "label": rng.choice(["pos", "neg"], size=400, p=[0.5, 0.5]).astype(str),
        }
    )


class TestNumericDrift:
    def test_same_distribution_silent(self, reference):
        rng = np.random.default_rng(1)
        current = DataFrame({"value": rng.normal(size=400)})
        assert numeric_drift(reference, current, "value") == []

    def test_shifted_distribution_flagged(self, reference):
        rng = np.random.default_rng(1)
        current = DataFrame({"value": rng.normal(loc=2.0, size=400)})
        issues = numeric_drift(reference, current, "value")
        assert issues and issues[0].severity == "warning"

    def test_injected_shift_detected(self, reference):
        shifted, __ = inject_distribution_shift(
            reference, "value", fraction=0.5, shift=4.0, seed=1
        )
        assert numeric_drift(reference, shifted, "value")

    def test_non_numeric_raises(self, reference):
        with pytest.raises(TypeError):
            numeric_drift(reference, reference, "group")

    def test_tiny_sample_is_info_only(self, reference):
        current = DataFrame({"value": [1.0, 2.0]})
        issues = numeric_drift(reference, current, "value")
        assert issues[0].severity == "info"


class TestCategoricalDrift:
    def test_same_distribution_silent(self, reference):
        assert categorical_drift(reference, reference, "group") == []

    def test_selection_bias_detected(self, reference):
        biased, __ = inject_selection_bias(
            reference, "group", "B", keep_fraction=0.1, seed=2
        )
        issues = categorical_drift(reference, biased, "group")
        assert issues and issues[0].details["tv_distance"] > 0.15

    def test_new_category_contributes(self, reference):
        current = DataFrame({"group": ["C"] * 100})
        issues = categorical_drift(reference, current, "group")
        assert issues and issues[0].details["tv_distance"] == pytest.approx(1.0)


class TestLabelBalance:
    def test_balanced_silent(self, reference):
        assert label_balance_shift(reference, reference, "label") == []

    def test_shifted_labels_flagged(self, reference):
        rng = np.random.default_rng(3)
        current = DataFrame(
            {"label": rng.choice(["pos", "neg"], size=400, p=[0.9, 0.1]).astype(str)}
        )
        issues = label_balance_shift(reference, current, "label")
        assert len(issues) == 2  # both classes moved


class TestDriftReport:
    def test_auto_column_selection(self, reference):
        rng = np.random.default_rng(4)
        current = DataFrame(
            {
                "value": rng.normal(loc=3.0, size=300),
                "group": np.asarray(["B"] * 300, dtype=str),
                "label": rng.choice(["pos", "neg"], size=300, p=[0.95, 0.05]).astype(str),
            }
        )
        issues = drift_report(reference, current, label_column="label")
        checks = {i.check for i in issues}
        assert {"numeric_drift", "categorical_drift", "label_balance_shift"} <= checks

    def test_clean_report_empty(self, reference):
        assert drift_report(reference, reference, label_column="label") == []
