"""Tests for edit-tolerant fuzzy joins (the typo-repair path)."""

import numpy as np
import pytest

from repro.errors import inject_typos
from repro.frame import DataFrame


@pytest.fixture()
def tables():
    left = DataFrame(
        {"name": ["alice", "bob", "carol", "dave"], "v": [1, 2, 3, 4]}
    )
    right = DataFrame(
        {"name": ["alice", "bob", "carol", "dave"], "score": [10, 20, 30, 40]}
    )
    return left, right


class TestEditFuzzyJoin:
    @pytest.mark.parametrize(
        "typo,original",
        [
            ("alcie", "alice"),  # adjacent transposition
            ("alic", "alice"),   # deletion
            ("alicee", "alice"), # insertion
            ("alize", "alice"),  # substitution
            (" Alice", "alice"), # whitespace + case (normalisation)
        ],
    )
    def test_single_edit_typos_match(self, tables, typo, original):
        __, right = tables
        left = DataFrame({"name": [typo], "v": [1]})
        joined = left.join(right, on="name", how="inner", fuzzy="edit")
        assert joined.num_rows == 1
        assert joined["score"].to_list() == [10]

    def test_two_edits_do_not_match(self, tables):
        __, right = tables
        left = DataFrame({"name": ["alzce x"], "v": [1]})
        joined = left.join(right, on="name", how="inner", fuzzy="edit")
        assert joined.num_rows == 0

    def test_exact_match_preferred_over_edit(self, tables):
        """'bob' must match 'bob', not an edit-distance neighbour."""
        left = DataFrame({"name": ["bob"], "v": [1]})
        right = DataFrame({"name": ["bo", "bob"], "score": [99, 20]})
        joined = left.join(right, on="name", how="inner", fuzzy="edit")
        assert joined["score"].to_list() == [20]

    def test_repairs_injected_typos(self, tables):
        """The full loop: typos break the exact join; edit mode repairs it."""
        left, right = tables
        big_left = DataFrame(
            {
                "name": np.asarray(
                    [f"person{i:03d}" for i in range(100)], dtype=str
                ),
                "v": np.arange(100),
            }
        )
        big_right = DataFrame(
            {
                "name": np.asarray(
                    [f"person{i:03d}" for i in range(100)], dtype=str
                ),
                "score": np.arange(100) * 2,
            }
        )
        broken, report = inject_typos(big_left, "name", fraction=0.3, seed=1)
        exact = broken.join(big_right, on="name", how="inner")
        repaired = broken.join(big_right, on="name", how="inner", fuzzy="edit")
        assert exact.num_rows < 100
        assert repaired.num_rows > exact.num_rows
        # The overwhelming majority of repaired matches find the correct
        # partner; a typo that lands within one edit of *another* key (e.g.
        # "person036" → "person03", ambiguous with "person003") may match
        # wrongly — the inherent false-match rate of edit-based joins.
        correct = sum(
            row["score"] == 2 * row["v"] for row in repaired.to_rows()
        )
        assert correct / repaired.num_rows > 0.9

    def test_normalize_mode_unchanged(self, tables):
        left, right = tables
        messy = DataFrame({"name": ["  ALICE "], "v": [1]})
        joined = messy.join(right, on="name", how="inner", fuzzy="normalize")
        assert joined.num_rows == 1
        typo = DataFrame({"name": ["alcie"], "v": [1]})
        assert typo.join(right, on="name", how="inner", fuzzy="normalize").num_rows == 0

    def test_invalid_mode_raises(self, tables):
        left, right = tables
        with pytest.raises(ValueError):
            left.join(right, on="name", fuzzy="phonetic")

    def test_pipeline_operator_supports_edit_mode(self, tables):
        from repro.pipeline import PipelinePlan, execute

        left, right = tables
        broken = DataFrame({"name": ["alcie", "bob"], "v": [1, 2]})
        plan = PipelinePlan()
        sink = plan.source("l").join(plan.source("r"), on="name", fuzzy="edit")
        result = execute(sink, {"l": broken, "r": right})
        assert result.frame["score"].to_list() == [10, 20]
        # Provenance records the repaired match.
        assert ("r", 0) in result.provenance.tuples[0]
