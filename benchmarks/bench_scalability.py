"""Experiment T-scale — cost scaling of importance computation.

Section 2.1's "Overcoming Computational Challenges" motivates two levers:
the KNN proxy (closed form, no retraining) and Monte-Carlo truncation
(TMC stops scanning a permutation once the utility saturates). This bench
reports, as the training-set size grows:

- wall-clock of the closed-form methods (KNN-Shapley, influence),
- wall-clock *and retraining counts* of the retraining-based methods
  (LOO: exactly n+1 retrainings; truncated MC: sub-linear scans).

Shapes to reproduce: the wall-clock gap between LOO and the closed-form
methods widens with n; TMC's retraining count grows *sub-linearly* (the
truncation savings grow with n).
"""

import time

from repro.datasets import make_classification
from repro.importance import (
    Utility,
    influence_importance,
    knn_shapley,
    loo_importance,
    shapley_mc,
)
from repro.learn import LogisticRegression
from repro.viz import format_records

SIZES = [50, 100, 200, 400]
N_VALID = 50
MC_PERMUTATIONS = 3


def time_methods(n: int) -> dict:
    X, y = make_classification(n=n + N_VALID, n_features=4, seed=1)
    Xtr, ytr = X[:n], y[:n]
    Xv, yv = X[n:], y[n:]
    row: dict = {"n_train": n}

    start = time.perf_counter()
    knn_shapley(Xtr, ytr, Xv, yv, k=5)
    row["knn_shapley_s"] = round(time.perf_counter() - start, 4)

    model = LogisticRegression(max_iter=60).fit(Xtr, ytr)
    start = time.perf_counter()
    influence_importance(model, Xtr, ytr, Xv, yv)
    row["influence_s"] = round(time.perf_counter() - start, 4)

    utility = Utility(LogisticRegression(max_iter=30), Xtr, ytr, Xv, yv)
    start = time.perf_counter()
    loo_importance(utility)
    row["loo_s"] = round(time.perf_counter() - start, 4)
    row["loo_retrainings"] = utility.n_evaluations

    utility = Utility(LogisticRegression(max_iter=30), Xtr, ytr, Xv, yv)
    start = time.perf_counter()
    shapley_mc(
        utility,
        n_permutations=MC_PERMUTATIONS,
        truncation_tolerance=0.02,
        seed=0,
    )
    row["tmc_s"] = round(time.perf_counter() - start, 4)
    row["tmc_retrainings"] = utility.n_evaluations
    # Untruncated MC would need n retrainings per permutation.
    row["tmc_savings"] = round(
        1.0 - row["tmc_retrainings"] / (MC_PERMUTATIONS * n), 3
    )
    return row


def run_scaling() -> list[dict]:
    return [time_methods(n) for n in SIZES]


def test_scalability(benchmark, write_report):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    write_report("scalability", format_records(rows))

    for row in rows:
        # Closed-form methods are much cheaper than n+1 retrainings.
        assert row["knn_shapley_s"] < row["loo_s"]
        assert row["influence_s"] < row["loo_s"]
        # LOO cost is exactly n + 1 utility evaluations.
        assert row["loo_retrainings"] == row["n_train"] + 1

    first, last = rows[0], rows[-1]
    # The absolute wall-clock gap between LOO and KNN-Shapley widens with n.
    assert (last["loo_s"] - last["knn_shapley_s"]) > (
        first["loo_s"] - first["knn_shapley_s"]
    )
    # Truncation savings grow with n (the utility saturates earlier,
    # relatively speaking).
    assert last["tmc_savings"] >= first["tmc_savings"]
