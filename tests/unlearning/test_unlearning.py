"""Tests for machine unlearning (removal-aware KNN and Newton unlearning)."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.learn import KNeighborsClassifier, LogisticRegression
from repro.unlearning import RemovalAwareKNN, newton_unlearn


@pytest.fixture(scope="module")
def task():
    X, y = make_classification(n=300, n_features=4, seed=6)
    return X[:220], y[:220], X[220:], y[220:]


class TestRemovalAwareKNN:
    def test_forget_matches_retrained_knn_exactly(self, task):
        """The defining property: forgetting equals retraining, exactly."""
        Xtr, ytr, Xv, __ = task
        model = RemovalAwareKNN(5).fit(Xtr, ytr)
        removed = list(range(0, 60))
        model.forget(removed)
        keep = np.ones(len(ytr), dtype=bool)
        keep[removed] = False
        reference = KNeighborsClassifier(5).fit(Xtr[keep], ytr[keep])
        assert np.array_equal(model.predict(Xv), reference.predict(Xv))
        assert np.allclose(model.predict_proba(Xv), reference.predict_proba(Xv))

    def test_forget_is_idempotent(self, task):
        Xtr, ytr, Xv, __ = task
        model = RemovalAwareKNN(3).fit(Xtr, ytr)
        model.forget([1, 2, 3])
        before = model.predict(Xv)
        model.forget([1, 2, 3])
        assert np.array_equal(model.predict(Xv), before)
        assert model.n_active == len(ytr) - 3

    def test_sequential_forgetting(self, task):
        Xtr, ytr, Xv, __ = task
        model = RemovalAwareKNN(3).fit(Xtr, ytr)
        model.forget([0]).forget([1]).forget([2])
        assert model.n_active == len(ytr) - 3

    def test_cannot_forget_everything(self, task):
        Xtr, ytr, *__ = task
        model = RemovalAwareKNN(3).fit(Xtr[:4], ytr[:4])
        with pytest.raises(ValueError):
            model.forget(range(4))


class TestNewtonUnlearn:
    def test_newton_path_matches_full_retrain(self, task):
        """For a small removal, the one-step unlearned model must agree with
        a from-scratch retrain on predictions."""
        Xtr, ytr, Xv, __ = task
        model = LogisticRegression(l2=1e-2).fit(Xtr, ytr)
        unlearned, report = newton_unlearn(model, Xtr, ytr, range(8))
        assert report.method == "newton"
        assert report.certified
        assert report.residual_norm <= 1e-3
        retrained = LogisticRegression(l2=1e-2).fit(Xtr[8:], ytr[8:])
        agreement = np.mean(unlearned.predict(Xv) == retrained.predict(Xv))
        assert agreement >= 0.98

    def test_original_model_untouched(self, task):
        Xtr, ytr, *__ = task
        model = LogisticRegression(l2=1e-2).fit(Xtr, ytr)
        coef_before = model.coef_.copy()
        newton_unlearn(model, Xtr, ytr, [0, 1])
        assert np.array_equal(model.coef_, coef_before)

    def test_large_removal_still_certified(self, task):
        """Removing a third of the data: either the Newton step suffices or
        the retrain fallback fires; both must end certified."""
        Xtr, ytr, *__ = task
        model = LogisticRegression(l2=1e-2).fit(Xtr, ytr)
        __, report = newton_unlearn(model, Xtr, ytr, range(70), tolerance=1e-6)
        assert report.certified
        assert report.method in ("newton", "retrain")

    def test_single_class_removal_raises(self, task):
        Xtr, ytr, *__ = task
        model = LogisticRegression().fit(Xtr, ytr)
        majority = np.flatnonzero(ytr == 0)
        keep_one_class = np.flatnonzero(ytr == 1)
        with pytest.raises(ValueError):
            newton_unlearn(model, Xtr, ytr, keep_one_class)

    def test_report_counts_removals(self, task):
        Xtr, ytr, *__ = task
        model = LogisticRegression(l2=1e-2).fit(Xtr, ytr)
        __, report = newton_unlearn(model, Xtr, ytr, [3, 5, 7])
        assert report.n_removed == 3
