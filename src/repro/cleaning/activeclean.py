"""ActiveClean-style progressive cleaning (Krishnan et al. [42]).

ActiveClean interleaves cleaning with model updates: records are sampled
for cleaning with probability proportional to the model's per-sample
gradient magnitude, because high-gradient dirty records distort the model
most. This module implements the sampling loop on top of the library's
logistic regression, as the gradient-based counterpart to the
ranking-based strategies in :mod:`strategies`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..frame import DataFrame
from ..importance.influence import per_sample_gradients
from ..learn.base import clone
from ..learn.models.logistic import LogisticRegression
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from .iterative import CleaningCurve
from .oracle import CleaningOracle

__all__ = ["activeclean"]


def activeclean(
    dirty_train: DataFrame,
    valid: DataFrame,
    featurize: Callable[[DataFrame], np.ndarray],
    label_column: str,
    oracle: CleaningOracle,
    batch_size: int = 25,
    n_rounds: int = 4,
    seed: int = 0,
    l2: float = 1e-3,
) -> CleaningCurve:
    """Gradient-weighted sample-and-clean loop.

    Each round: retrain on the current data, compute per-sample gradient
    norms, sample an uncleaned batch with probability ∝ gradient norm,
    clean it via the oracle, and record validation accuracy.
    """
    rng = np.random.default_rng(seed)

    def labels_of(frame: DataFrame) -> np.ndarray:
        return np.asarray(frame.column(label_column).to_list())

    x_valid = featurize(valid)
    y_valid = labels_of(valid)

    current = dirty_train.copy()
    cleaned: set[int] = set()
    curve = CleaningCurve(strategy="activeclean")
    with _obs.span(
        "cleaning.activeclean", batch_size=batch_size, n_rounds=n_rounds, seed=seed
    ):
        for round_no in range(n_rounds + 1):
            with _obs.span("cleaning.round", round=round_no) as sp:
                x_train = featurize(current)
                y_train = labels_of(current)
                model = LogisticRegression(l2=l2).fit(x_train, y_train)
                accuracy = float(model.score(x_valid, y_valid))
                curve.records.append(
                    {
                        "round": round_no,
                        "n_cleaned": len(cleaned),
                        "valid_accuracy": accuracy,
                    }
                )
                if _obs.enabled():
                    sp.set(n_cleaned=len(cleaned), valid_accuracy=accuracy)
                if round_no == n_rounds:
                    break
                gradients = per_sample_gradients(model, x_train, y_train)
                norms = np.linalg.norm(gradients, axis=1)
                eligible = np.asarray(
                    [
                        p
                        for p in range(current.num_rows)
                        if int(current.row_ids[p]) not in cleaned
                    ]
                )
                if len(eligible) == 0:
                    break
                weights = norms[eligible]
                total = weights.sum()
                probabilities = weights / total if total > 0 else None
                take = min(batch_size, len(eligible))
                batch = rng.choice(eligible, size=take, replace=False, p=probabilities)
                batch_ids = [int(current.row_ids[p]) for p in batch]
                current = oracle.clean(current, batch_ids)
                cleaned.update(batch_ids)
                if _obs.enabled():
                    _obs_metrics.counter("cleaning.rows_cleaned").inc(len(batch_ids))
                    _obs_metrics.counter("cleaning.rounds").inc()
    return curve
