"""What-if analysis and preprocessing search over a shared pipeline.

Two §2.2 systems on top of the provenance executor:

1. **What-if** (mlwhatif [23]): evaluate data-centric pipeline variations —
   different sector filters × imputation strategies — with shared-subplan
   execution, so the common joins run once instead of once per variant.
2. **Search** (DiffPrep [44] / SAGA [76]): find the best preprocessing
   configuration by exhaustive grid or greedy coordinate descent.

Run with:  python examples/whatif_and_search.py
"""

import numpy as np

from repro.datasets import generate_hiring_data
from repro.errors import inject_missing
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    KNeighborsClassifier,
    MinMaxScaler,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import (
    PipelinePlan,
    SearchDimension,
    WhatIfVariant,
    execute,
    greedy_search,
    grid_search,
    run_what_if,
)
from repro.text import SentenceBertTransformer


def encoder(imputer_strategy: str, scaler):
    return ColumnTransformer(
        [
            (SentenceBertTransformer(n_features=16), "letter_text"),
            (Pipeline([CellImputer(imputer_strategy, fill_value="none"),
                       OneHotEncoder()]), "degree"),
            (scaler, ["age", "employer_rating"]),
        ]
    )


def main() -> None:
    data = generate_hiring_data(n=700, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    train, __ = inject_missing(train, "degree", fraction=0.3, seed=3)
    sources = {"train_df": train, "jobdetail_df": data["jobdetail"]}
    valid_sources = {"train_df": valid, "jobdetail_df": data["jobdetail"]}

    def evaluate(result):
        model = KNeighborsClassifier(5).fit(result.X, result.y)
        valid_result = execute(result.sink, valid_sources, fit=False)
        return model.score(valid_result.X, valid_result.y)

    # ------------------------------------------------------------------
    # 1. What-if: sector filter × imputation strategy, shared prefix.
    # ------------------------------------------------------------------
    plan = PipelinePlan()
    base = plan.source("train_df").join(plan.source("jobdetail_df"), on="job_id")
    variants = []
    for sector in ("healthcare", "finance"):
        filtered = base.filter(
            lambda df, s=sector: df["sector"] == s, f"sector == {sector!r}"
        )
        for imputer in ("most_frequent", "constant"):
            variants.append(
                WhatIfVariant(
                    f"{sector} + impute:{imputer}",
                    filtered.encode(
                        encoder(imputer, StandardScaler()),
                        label_column="sentiment",
                    ),
                )
            )
    report = run_what_if(variants, sources, evaluate)
    print(report.render())

    # ------------------------------------------------------------------
    # 2. Search: grid vs greedy over a 12-configuration space.
    # ------------------------------------------------------------------
    dimensions = [
        SearchDimension("imputer", {"most_frequent": None, "constant": None}),
        SearchDimension("scaler", {"standard": None, "minmax": None}),
        SearchDimension("sector", {"all": None, "healthcare": None, "finance": None}),
    ]

    def build(plan, config, shared):
        if "base" not in shared:
            shared["base"] = plan.source("train_df").join(
                plan.source("jobdetail_df"), on="job_id"
            )
        node = shared["base"]
        if config["sector"] != "all":
            key = ("sector", config["sector"])
            if key not in shared:
                shared[key] = node.filter(
                    lambda df, s=config["sector"]: df["sector"] == s,
                    f"sector == {config['sector']!r}",
                )
            node = shared[key]
        scaler = StandardScaler() if config["scaler"] == "standard" else MinMaxScaler()
        return node.encode(
            encoder(config["imputer"], scaler), label_column="sentiment"
        )

    print("\nexhaustive grid search:")
    grid = grid_search(dimensions, build, sources, evaluate)
    print(grid.render())

    print("\ngreedy coordinate descent (one round):")
    greedy = greedy_search(dimensions, build, sources, evaluate, n_rounds=1)
    print(greedy.render())
    print(
        f"\ngreedy reached {greedy.best_score:.4f} in {greedy.n_evaluated} "
        f"evaluations vs grid's {grid.best_score:.4f} in {grid.n_evaluated}."
    )


if __name__ == "__main__":
    main()
