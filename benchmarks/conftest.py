"""Shared benchmark fixtures.

Every bench writes its rendered report (the paper-style table or figure) to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference concrete
numbers from the last run. Benches that pass ``records=`` additionally get
a machine-readable ``benchmarks/results/<name>.json`` so downstream tooling
(CI trend tracking, plots) never has to re-parse the rendered tables.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays so json.dump accepts them."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def write_report(results_dir):
    def writer(name: str, text: str, records=None) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        if records is not None:
            (results_dir / f"{name}.json").write_text(
                json.dumps(_jsonable(records), indent=2, sort_keys=True) + "\n"
            )
        print(f"\n=== {name} ===\n{text}")

    return writer
