"""End-to-end smoke for the telemetry plane — run by the CI telemetry job.

Two acts, both against the real thing (no mocks, no monkeypatching):

1. Boot a :class:`~repro.service.JobRuntime` with a
   :class:`~repro.service.TelemetryServer`, drive multi-tenant jobs
   through it, and scrape ``/metrics``, ``/healthz``, and ``/slo`` over a
   real TCP socket. The ``/metrics`` body must parse as valid OpenMetrics
   and carry the per-tenant latency series; the scrape is saved to
   ``benchmarks/results/telemetry_metrics.txt`` as a CI artifact.

2. Crash a pooled valuation worker with :class:`~repro.errors.ChaosMonkey`
   under an armed flight recorder, producing a real flight dump in
   ``benchmarks/results/flight/`` — uploaded so a red CI run demonstrates
   exactly what an operator would pull off a crashed deployment.

Usage::

    PYTHONPATH=src python tools/telemetry_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

import numpy as np

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


async def _http_get(port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


async def scrape_live_server() -> str:
    from repro.obs.export import parse_openmetrics
    from repro.service import JobRequest, JobRuntime, TelemetryServer

    runtime = JobRuntime()
    runtime.register_handler("echo", lambda params, ctx: params["x"])
    async with runtime, TelemetryServer(runtime) as server:
        for tenant in ("alice", "bob", "alice"):
            await runtime.submit(
                JobRequest(kind="echo", params={"x": 1}, dedup=False,
                           tenant=tenant)
            ).wait()

        status, health = await _http_get(server.port, "/healthz")
        assert status == 200, f"/healthz -> {status}"
        assert json.loads(health)["status"] == "ok"

        status, metrics = await _http_get(server.port, "/metrics")
        assert status == 200, f"/metrics -> {status}"
        text = metrics.decode("utf-8")
        samples = parse_openmetrics(text)  # must be valid OpenMetrics
        tenants = {
            s["labels"]["tenant"]
            for s in samples["service_job_latency_s_count"]
        }
        assert tenants == {"alice", "bob"}, tenants

        status, slo = await _http_get(server.port, "/slo")
        assert status == 200, f"/slo -> {status}"
        assert set(json.loads(slo)["tenants"]) == {"alice", "bob"}
    return text


def crash_a_pooled_worker(dump_dir: Path) -> Path:
    from repro.errors import ChaosMonkey
    from repro.importance import SubsetUtility, ValuationEngine
    from repro.obs import flight as obs_flight
    from repro.obs import trace as obs_trace

    rng = np.random.default_rng(3)
    w = rng.normal(size=10)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    obs_flight.configure(dump_dir=dump_dir)
    engine = ValuationEngine(
        SubsetUtility(func, 10),
        n_workers=2,
        chaos=ChaosMonkey(worker_crash_chunks=[3]),
    )
    obs_trace.enable()
    try:
        run = engine.run_permutations(16, seed=5)
    finally:
        obs_trace.disable()
    assert run is not None, "engine did not recover from the seeded crash"

    dumps = sorted(dump_dir.glob("flight-*worker-crash*.jsonl"))
    assert dumps, f"no flight dump in {dump_dir}"
    header, events = obs_flight.load_dump(dumps[0])
    assert header["kind"] == "flight_dump"
    kinds = {e["kind"] for e in events}
    assert "supervision.crash" in kinds, kinds
    assert "span" in kinds, kinds  # the crashed worker's backhauled spans
    return dumps[0]


def main() -> int:
    RESULTS.mkdir(parents=True, exist_ok=True)

    metrics_text = asyncio.run(scrape_live_server())
    metrics_path = RESULTS / "telemetry_metrics.txt"
    metrics_path.write_text(metrics_text, encoding="utf-8")
    print(f"scraped /metrics OK -> {metrics_path}"
          f" ({len(metrics_text.splitlines())} lines)")

    flight_dir = RESULTS / "flight"
    flight_dir.mkdir(parents=True, exist_ok=True)
    dump = crash_a_pooled_worker(flight_dir)
    print(f"flight dump OK -> {dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
