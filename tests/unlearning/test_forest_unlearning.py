"""Tests for HedgeCut-style forest unlearning."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.unlearning import RemovalAwareForest


@pytest.fixture(scope="module")
def task():
    X, y = make_classification(n=400, n_features=4, seed=8)
    return X[:320], y[:320], X[320:], y[320:]


class TestRemovalAwareForest:
    def test_accuracy_reasonable(self, task):
        Xtr, ytr, Xv, yv = task
        forest = RemovalAwareForest(n_trees=15, seed=0).fit(Xtr, ytr)
        assert forest.score(Xv, yv) > 0.8

    def test_subsampling_limits_refits(self, task):
        """With 20% bootstraps, a single deletion touches few trees."""
        Xtr, ytr, *__ = task
        forest = RemovalAwareForest(
            n_trees=20, sample_fraction=0.2, seed=0
        ).fit(Xtr, ytr)
        refits = forest.forget([3])
        # Expected hit rate per tree: 1 − (1 − 1/n)^(0.2n) ≈ 18%.
        assert refits < 12

    def test_full_bootstrap_touches_most_trees(self, task):
        Xtr, ytr, *__ = task
        forest = RemovalAwareForest(n_trees=20, sample_fraction=1.0, seed=0).fit(Xtr, ytr)
        refits = forest.forget([3])
        assert refits >= 8  # ≈ 63% of trees in expectation

    def test_forgotten_points_leave_no_trace(self, task):
        """After forgetting, no tree's active sample contains removed rows —
        the exactness property of the partial refit."""
        Xtr, ytr, *__ = task
        forest = RemovalAwareForest(n_trees=10, seed=1).fit(Xtr, ytr)
        removed = [0, 5, 9]
        forest.forget(removed)
        for rows in forest.sample_rows_:
            active = rows[~forest.removed_[rows]]
            assert not set(active.tolist()) & set(removed)

    def test_idempotent_forgetting(self, task):
        Xtr, ytr, *__ = task
        forest = RemovalAwareForest(n_trees=10, seed=1).fit(Xtr, ytr)
        forest.forget([2])
        assert forest.forget([2]) == 0  # no refits for already-removed rows
        assert forest.n_active == len(ytr) - 1

    def test_untouched_trees_identical(self, task):
        """Trees whose bootstrap misses the removal keep their object."""
        Xtr, ytr, *__ = task
        forest = RemovalAwareForest(
            n_trees=20, sample_fraction=0.15, seed=2
        ).fit(Xtr, ytr)
        before = list(forest.trees_)
        forest.forget([7])
        unchanged = sum(a is b for a, b in zip(before, forest.trees_))
        assert unchanged >= 1
        for t, (a, b) in enumerate(zip(before, forest.trees_)):
            hit = 7 in set(forest.sample_rows_[t].tolist())
            assert (a is b) == (not hit)

    def test_prediction_still_works_after_heavy_forgetting(self, task):
        Xtr, ytr, Xv, yv = task
        forest = RemovalAwareForest(n_trees=10, seed=3).fit(Xtr, ytr)
        forest.forget(range(0, 150))
        assert forest.score(Xv, yv) > 0.7

    def test_cannot_forget_everything(self, task):
        Xtr, ytr, *__ = task
        forest = RemovalAwareForest(n_trees=5, seed=4).fit(Xtr[:10], ytr[:10])
        with pytest.raises(ValueError):
            forest.forget(range(10))

    def test_invalid_sample_fraction_raises(self):
        with pytest.raises(ValueError):
            RemovalAwareForest(sample_fraction=0.0)
