"""Experiment — error propagation into predictive query answers (Figure 1).

Figure 1's central claim is that data errors propagate through *all* pipeline
stages and finally corrupt the answers of predictive queries. This bench
closes that loop end to end:

1. run a grouped predictive query over a model trained on clean data,
2. inject group-targeted label bias into the *training source*,
3. observe the query answer for the targeted group shift,
4. file an aggregate complaint at the original value and let the Rain-style
   resolver remove the responsible training tuples,
5. verify the answer moves back and that the removed tuples are enriched
   for the actually-corrupted ones.
"""

import numpy as np

from repro.core import default_featurize
from repro.datasets import load_recommendation_letters
from repro.errors import inject_group_label_bias
from repro.learn import LogisticRegression
from repro.queries import AggregateComplaint, PredictiveQuery, resolve_aggregate_complaint
from repro.viz import format_records


def run_stage() -> dict:
    train, __, test = load_recommendation_letters(n=500, seed=7)
    y_clean = np.asarray(train.column("sentiment").to_list())
    X_train = default_featurize(train)

    def make_query(model):
        return PredictiveQuery(
            model, default_featurize, group_column="sex",
            aggregate="positive_rate", positive="positive",
        )

    clean_model = LogisticRegression(max_iter=80).fit(X_train, y_clean)
    clean_value = make_query(clean_model).run(test).value_for("f")

    # Systematic bias: positive letters for female applicants get flipped.
    dirty, report = inject_group_label_bias(
        train, "sentiment", "sex", "f",
        from_label="positive", to_label="negative", fraction=0.5, seed=3,
    )
    y_dirty = np.asarray(dirty.column("sentiment").to_list())
    dirty_model = LogisticRegression(max_iter=80).fit(X_train, y_dirty)
    dirty_query = make_query(dirty_model)
    dirty_value = dirty_query.run(test).value_for("f")

    complaint = AggregateComplaint(
        group="f", target=clean_value - 0.02, direction="at_least"
    )
    resolution = resolve_aggregate_complaint(
        dirty_query, X_train, y_dirty, test, complaint,
        max_removals=80, batch_size=10,
    )
    removed_ids = dirty.row_ids[resolution.removed_positions]
    corrupted = set(report.row_ids.tolist())
    hits = len(set(removed_ids.tolist()) & corrupted)
    base_rate = len(corrupted) / train.num_rows
    return {
        "clean_value": clean_value,
        "dirty_value": dirty_value,
        "repaired_value": resolution.value_after,
        "resolved": resolution.resolved,
        "n_removed": len(resolution.removed_positions),
        "removal_precision": hits / max(len(removed_ids), 1),
        "corruption_base_rate": base_rate,
    }


def test_query_error_propagation(benchmark, write_report):
    result = benchmark.pedantic(run_stage, rounds=1, iterations=1)
    report = format_records(
        [
            {"quantity": "query answer, clean training data",
             "value": result["clean_value"]},
            {"quantity": "query answer, biased training data",
             "value": result["dirty_value"]},
            {"quantity": "query answer after complaint resolution",
             "value": result["repaired_value"]},
            {"quantity": "training tuples removed", "value": result["n_removed"]},
            {"quantity": "removal precision (vs corrupted tuples)",
             "value": result["removal_precision"]},
            {"quantity": "corruption base rate",
             "value": result["corruption_base_rate"]},
        ]
    )
    write_report("query_stage", report)

    # The bias must visibly depress the group's query answer...
    assert result["dirty_value"] < result["clean_value"] - 0.05
    # ...and the complaint-driven repair must recover it.
    assert result["resolved"]
    assert result["repaired_value"] >= result["clean_value"] - 0.02 - 1e-9
    # The removals should concentrate on actually-corrupted tuples.
    assert result["removal_precision"] > 2 * result["corruption_base_rate"]
