"""Checkpoint/resume for valuation runs.

The Identify track's Monte-Carlo estimators are the most expensive jobs in
the toolkit — hours of model retrainings whose only output is a handful of
accumulator arrays. A preempted or killed run used to lose every
permutation already paid for. This module makes valuation state durable:

- :class:`CheckpointStore` persists a schema-versioned JSON snapshot
  atomically (staged + fsync + rename, via :mod:`repro.obs.atomicio`), so
  a run killed *mid-write* leaves the previous snapshot intact and a
  resumed run never loads a torn file.
- :func:`config_fingerprint` hashes everything that determines the
  sampling trajectory — game size, seed, target budget, position weights,
  truncation/convergence settings, antithetic pairing — and the store
  refuses to resume when the fingerprint disagrees
  (:class:`CheckpointMismatchError`): resuming a run under a different
  configuration would silently blend two different estimators.

The resume invariant, which the engine's tests enforce bit-for-bit: because
every permutation ordering is pre-drawn from the master
``np.random.default_rng(seed)`` stream, the *RNG position* of a run is
fully captured by ``(seed, completed-permutation watermark)``. A resumed
run re-draws the same orderings, restores the per-row sums / sums of
squares / evaluation census exactly (JSON round-trips IEEE-754 doubles
losslessly), skips the watermarked prefix, and accumulates the remaining
waves in the original order — producing values bit-identical to a run that
was never interrupted, for any worker count.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..obs.atomicio import atomic_write_text

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "config_fingerprint",
]

#: Bump when the snapshot layout changes incompatibly. Loaders refuse to
#: resume from a different major version — unlike the lenient ledger
#: readers, a checkpoint read wrong silently corrupts results.
CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded (unreadable, wrong schema, ...)."""


class CheckpointMismatchError(CheckpointError):
    """Refusing to resume: the stored run had a different configuration."""


def _canonical(value: Any) -> Any:
    """JSON-stable form of a config value (arrays → hashed, tuples → lists)."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """Deterministic hex digest of a run configuration."""
    payload = json.dumps(_canonical(dict(config)), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class CheckpointStore:
    """Atomic, schema-versioned snapshot file for one valuation run.

    By default one store holds one snapshot (the latest wave boundary);
    history is not kept — the point is crash durability, not time travel.
    The snapshot is a single JSON document::

        {"schema_version": 1, "kind": "permutation", "fingerprint": "...",
         "completed": 40, "totals": [...], "sumsq": [...], ...}

    ``save`` goes through :func:`repro.obs.atomicio.atomic_write_text`;
    ``load`` validates the schema version and (when asked) the config
    fingerprint before handing state back.

    ``keep_last=N`` additionally archives each wave snapshot next to the
    primary file (``<name>.wave<completed>``) and prunes superseded
    archives beyond the newest ``N`` — the retention knob long service
    runs need so a checkpoint directory holding many jobs' stores stays
    bounded while still allowing a short rewind. Resume always reads the
    primary file, so pruning never affects crash recovery.
    """

    def __init__(self, path: Any, keep_last: int | None = None) -> None:
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be >= 1 (or None)")
        self.path = Path(path)
        self.keep_last = keep_last

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, state: Mapping[str, Any]) -> None:
        """Atomically replace the snapshot with ``state``.

        With ``keep_last`` set, also write a per-wave archive and prune
        superseded archives so at most ``keep_last`` remain.
        """
        payload = {"schema_version": CHECKPOINT_SCHEMA_VERSION, **state}
        text = json.dumps(payload, sort_keys=True) + "\n"
        atomic_write_text(self.path, text)
        if self.keep_last is not None:
            completed = int(state.get("completed", 0))
            archive = self.path.with_name(
                f"{self.path.name}.wave{completed:08d}"
            )
            atomic_write_text(archive, text)
            self._prune()

    def archives(self) -> list[Path]:
        """Retained per-wave archives, oldest watermark first."""
        pattern = f"{self.path.name}.wave*"
        return sorted(self.path.parent.glob(pattern))

    def _prune(self) -> None:
        for stale in self.archives()[: -int(self.keep_last)]:
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent prune
                pass

    def load(self) -> dict[str, Any] | None:
        """The stored snapshot, or None when no checkpoint exists yet."""
        if not self.path.exists():
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint at {self.path}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise CheckpointError(f"malformed checkpoint at {self.path}")
        version = payload.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema v{version} at {self.path} is not "
                f"readable by this runtime (expected v{CHECKPOINT_SCHEMA_VERSION})"
            )
        return payload

    def load_matching(
        self, kind: str, fingerprint: str
    ) -> dict[str, Any] | None:
        """Load and validate against the resuming run's identity.

        Returns None when no checkpoint exists; raises
        :class:`CheckpointMismatchError` when one exists but belongs to a
        different run kind or configuration.
        """
        payload = self.load()
        if payload is None:
            return None
        if payload.get("kind") != kind:
            raise CheckpointMismatchError(
                f"checkpoint at {self.path} is a {payload.get('kind')!r} "
                f"snapshot, not {kind!r}"
            )
        if payload.get("fingerprint") != fingerprint:
            raise CheckpointMismatchError(
                f"checkpoint at {self.path} was written under a different "
                "run configuration (fingerprint mismatch); refusing to "
                "resume — delete the file or rerun with the original "
                "settings"
            )
        return payload

    def clear(self) -> None:
        """Remove the snapshot and any archives (e.g. after a run completes)."""
        for target in [self.path, *self.archives()]:
            try:
                target.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "present" if self.exists() else "absent"
        return f"CheckpointStore({str(self.path)!r}, {state})"
