"""Tests for the utility-game wrapper."""

import numpy as np
import pytest

from repro.importance import SubsetUtility, Utility, loo_importance
from repro.learn import KNeighborsClassifier, LogisticRegression


@pytest.fixture()
def utility(binary_data):
    Xtr, ytr, Xv, yv = binary_data
    return Utility(LogisticRegression(max_iter=50), Xtr, ytr, Xv, yv)


class TestUtility:
    def test_empty_subset_returns_null_score(self, utility):
        assert utility.evaluate([]) == utility.null_score

    def test_null_score_is_majority_accuracy(self, binary_data):
        __, __, Xv, yv = binary_data
        utility = Utility(LogisticRegression(), np.zeros((4, 2)), [0, 1, 0, 1], Xv, yv)
        values, counts = np.unique(yv, return_counts=True)
        assert utility.null_score == pytest.approx(counts.max() / counts.sum())

    def test_single_class_subset_constant_predictor(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        utility = Utility(LogisticRegression(), Xtr, ytr, Xv, yv)
        ones = np.flatnonzero(ytr == 1)[:3]
        expected = float(np.mean(yv == 1))
        assert utility.evaluate(ones) == pytest.approx(expected)

    def test_full_score_trains_real_model(self, utility, binary_data):
        __, __, Xv, yv = binary_data
        assert utility.full_score() > 0.8

    def test_counts_evaluations(self, utility):
        before = utility.n_evaluations
        utility.evaluate(np.arange(20))
        assert utility.n_evaluations == before + 1

    def test_degenerate_subsets_do_not_count_as_evaluations(self, utility):
        before = utility.n_evaluations
        utility.evaluate([])
        assert utility.n_evaluations == before

    def test_single_class_subset_counts_as_evaluation(self, utility, binary_data):
        # The constant-predictor shortcut still scores the validation set,
        # so it must be charged (only the cached null score is free).
        __, ytr, __, __ = binary_data
        before = utility.n_evaluations
        utility.evaluate(np.flatnonzero(ytr == 1)[:3])
        assert utility.n_evaluations == before + 1

    def test_custom_metric(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        calls = []

        def metric(y_true, y_pred):
            calls.append(1)
            return 0.5

        utility = Utility(LogisticRegression(), Xtr, ytr, Xv, yv, metric=metric)
        assert utility.evaluate(np.arange(30)) == 0.5
        assert calls

    def test_custom_null_score(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        utility = Utility(LogisticRegression(), Xtr, ytr, Xv, yv, null_score=0.123)
        assert utility.evaluate([]) == 0.123

    def test_length_mismatch_raises(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        with pytest.raises(ValueError):
            Utility(LogisticRegression(), Xtr, ytr[:-1], Xv, yv)

    def test_works_with_knn_model(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        utility = Utility(KNeighborsClassifier(3), Xtr, ytr, Xv, yv)
        assert 0.0 <= utility.evaluate(np.arange(40)) <= 1.0


class TestLOO:
    def test_loo_evaluation_count(self):
        game = SubsetUtility(lambda S: float(len(S)), 6)
        loo_importance(game)
        assert game.n_evaluations == 7  # v(N) plus one per point

    def test_loo_flags_harmful_point(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        # Poison one point hard: an exact copy of a validation point with
        # the flipped label. Under 1-NN that point alone misclassifies it.
        X_poison = Xtr[:30].copy()
        y_poison = ytr[:30].copy()
        X_poison[0] = Xv[0]
        y_poison[0] = 1 - yv[0]
        utility = Utility(KNeighborsClassifier(1), X_poison, y_poison, Xv, yv)
        result = loo_importance(utility)
        assert result.values[0] < 0
        assert result.values[0] <= np.percentile(result.values, 20)
