"""Metamorphic tests of the game-theoretic importance estimators.

Instead of pinning numeric outputs, these assert the Shapley *axioms*
(efficiency, symmetry, additivity for additive games) and invariances
under input transformations that provably must not change the answer:
permuting the training set, duplicating a point, flipping a label.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.importance import (
    banzhaf_brute_force,
    exact_knn_shapley,
    grouped_knn_utility,
    knn_shapley,
    loo_importance,
    shapley_brute_force,
)
from repro.importance.utility import SubsetUtility

weight_lists = st.lists(
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    min_size=2,
    max_size=6,
)
seeds = st.integers(min_value=0, max_value=10_000)


def _random_game(weights, seed):
    """Deterministic non-additive game: weights plus pairwise interactions."""
    n = len(weights)
    rng = np.random.default_rng(seed)
    pair = rng.normal(scale=0.5, size=(n, n))
    pair = (pair + pair.T) / 2.0
    w = np.asarray(weights)

    def v(indices):
        idx = np.asarray(list(indices), dtype=np.int64)
        if len(idx) == 0:
            return 0.0
        total = float(w[idx].sum())
        total += float(pair[np.ix_(idx, idx)].sum()) / 2.0
        return total

    return SubsetUtility(v, n)


class TestShapleyAxioms:
    @given(weights=weight_lists, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_efficiency_on_arbitrary_games(self, weights, seed):
        utility = _random_game(weights, seed)
        values = shapley_brute_force(utility).values
        grand = utility.func(range(len(weights)))
        assert np.isclose(values.sum(), grand - utility.func([]), atol=1e-8)

    @given(weights=weight_lists)
    @settings(max_examples=25, deadline=None)
    def test_additive_games_have_shapley_equal_weights(self, weights):
        w = np.asarray(weights)
        utility = SubsetUtility(
            lambda idx: float(w[np.asarray(list(idx), dtype=np.int64)].sum())
            if len(list(idx))
            else 0.0,
            len(w),
        )
        np.testing.assert_allclose(shapley_brute_force(utility).values, w, atol=1e-9)

    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_symmetric_games_give_equal_values(self, n, seed):
        # v depends only on |S|: every player is interchangeable, so
        # symmetry forces all values equal — and efficiency pins them.
        g = np.random.default_rng(seed).normal(size=n + 1)
        utility = SubsetUtility(lambda idx: float(g[len(list(idx))]), n)
        values = shapley_brute_force(utility).values
        np.testing.assert_allclose(values, values[0], atol=1e-9)
        assert np.isclose(values.sum(), g[n] - g[0], atol=1e-8)


class TestPermutationInvariance:
    @given(weights=weight_lists, seed=seeds, perm_seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_loo_is_permutation_equivariant(self, weights, seed, perm_seed):
        n = len(weights)
        perm = np.random.default_rng(perm_seed).permutation(n)
        base = _random_game(weights, seed)
        # The relabelled game: player i plays original player perm[i]'s role.
        relabelled = SubsetUtility(
            lambda idx: base.func(perm[np.asarray(list(idx), dtype=np.int64)])
            if len(list(idx))
            else base.func([]),
            n,
        )
        original = loo_importance(base).values
        permuted = loo_importance(relabelled).values
        np.testing.assert_allclose(permuted, original[perm], atol=1e-9)

    @given(weights=weight_lists, seed=seeds, perm_seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_banzhaf_is_permutation_equivariant(self, weights, seed, perm_seed):
        n = len(weights)
        perm = np.random.default_rng(perm_seed).permutation(n)
        base = _random_game(weights, seed)
        relabelled = SubsetUtility(
            lambda idx: base.func(perm[np.asarray(list(idx), dtype=np.int64)])
            if len(list(idx))
            else base.func([]),
            n,
        )
        original = banzhaf_brute_force(base).values
        permuted = banzhaf_brute_force(relabelled).values
        np.testing.assert_allclose(permuted, original[perm], atol=1e-9)


class TestKnnShapleyMetamorphic:
    @given(seed=seeds, n=st.integers(min_value=4, max_value=15))
    @settings(max_examples=25, deadline=None)
    def test_duplicated_training_points_get_equal_values(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 3))
        y = rng.integers(0, 2, size=n)
        # Duplicate point 0 exactly (same features, same label).
        x_dup = np.vstack([x, x[:1]])
        y_dup = np.concatenate([y, y[:1]])
        x_valid = rng.normal(size=(5, 3))
        y_valid = rng.integers(0, 2, size=5)
        values = knn_shapley(x_dup, y_dup, x_valid, y_valid, k=3).values
        # Shapley symmetry: interchangeable players have identical values.
        assert np.isclose(values[0], values[n], atol=1e-9)

    @given(seed=seeds, n=st.integers(min_value=4, max_value=15))
    @settings(max_examples=25, deadline=None)
    def test_flipping_a_label_off_the_validation_set_never_helps(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 3))
        y = rng.integers(0, 2, size=n)
        x_valid = rng.normal(size=(5, 3))
        y_valid = rng.integers(0, 2, size=5)
        target = int(rng.integers(0, n))
        before = knn_shapley(x, y, x_valid, y_valid, k=3).values
        # Relabel one point to a class absent from validation: its match
        # indicator can only drop, so its value must weakly decrease.
        y_flipped = y.copy()
        y_flipped[target] = 2
        after = knn_shapley(x, y_flipped, x_valid, y_valid, k=3).values
        assert after[target] <= before[target] + 1e-9

    @given(seed=seeds, n=st.integers(min_value=3, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_efficiency_against_utility(self, seed, n):
        from repro.importance.knn_shapley import knn_utility

        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 2))
        y = rng.integers(0, 2, size=n)
        x_valid = rng.normal(size=(4, 2))
        y_valid = rng.integers(0, 2, size=4)
        values = knn_shapley(x, y, x_valid, y_valid, k=2).values
        grand = knn_utility(np.arange(n), x, y, x_valid, y_valid, k=2)
        assert np.isclose(values.sum(), grand, atol=1e-8)


def _random_groups(rng, n_players, n_candidates):
    """Random disjoint fan-out: every candidate owned by exactly one player."""
    owner = rng.integers(0, n_players, size=n_candidates)
    return [np.flatnonzero(owner == p) for p in range(n_players)]


class TestExactKnnMetamorphic:
    """The exact pipeline path must satisfy the same Shapley axioms."""

    @given(seed=seeds, n_players=st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_efficiency_sums_to_utility_gap(self, seed, n_players):
        rng = np.random.default_rng(seed)
        n = n_players * 2
        x = rng.normal(size=(n, 2))
        y = rng.integers(0, 2, size=n)
        x_valid = rng.normal(size=(4, 2))
        y_valid = rng.integers(0, 2, size=4)
        groups = _random_groups(rng, n_players, n)
        values = exact_knn_shapley(x, y, x_valid, y_valid, groups, k=1).values
        grand = grouped_knn_utility(
            range(n_players), groups, x, y, x_valid, y_valid, k=1
        )
        empty = grouped_knn_utility([], groups, x, y, x_valid, y_valid, k=1)
        assert np.isclose(values.sum(), grand - empty, atol=1e-8)

    @given(seed=seeds, n_players=st.integers(min_value=2, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_duplicate_source_rows_get_equal_values(self, seed, n_players):
        # Two players whose candidate groups are identical copies (same
        # features, same labels) are interchangeable: Shapley symmetry.
        rng = np.random.default_rng(seed)
        per = int(rng.integers(1, 4))
        block = rng.normal(size=(per, 2))
        labels = rng.integers(0, 2, size=per)
        extra = rng.normal(size=(n_players * 2, 2))
        extra_y = rng.integers(0, 2, size=n_players * 2)
        x = np.vstack([block, block, extra])
        y = np.concatenate([labels, labels, extra_y])
        groups = [np.arange(per), np.arange(per, 2 * per)]
        rest = _random_groups(rng, n_players, len(extra))
        groups += [g + 2 * per for g in rest]
        x_valid = rng.normal(size=(4, 2))
        y_valid = rng.integers(0, 2, size=4)
        values = exact_knn_shapley(x, y, x_valid, y_valid, groups, k=1).values
        assert np.isclose(values[0], values[1], atol=1e-9)

    @given(seed=seeds, n_players=st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_flipping_a_source_rows_labels_never_helps(self, seed, n_players):
        # Relabel every candidate of one player to a class absent from the
        # validation set: the player's match indicators can only drop, so
        # its exact value must weakly decrease.
        rng = np.random.default_rng(seed)
        n = n_players * 2
        x = rng.normal(size=(n, 2))
        y = rng.integers(0, 2, size=n)
        x_valid = rng.normal(size=(4, 2))
        y_valid = rng.integers(0, 2, size=4)
        groups = _random_groups(rng, n_players, n)
        target = int(rng.integers(0, n_players))
        before = exact_knn_shapley(x, y, x_valid, y_valid, groups, k=1).values
        y_flipped = y.copy()
        y_flipped[groups[target]] = 2
        after = exact_knn_shapley(
            x, y_flipped, x_valid, y_valid, groups, k=1
        ).values
        assert after[target] <= before[target] + 1e-9
