"""The data-selection challenge (DataPerf-style track, ref [49]).

Section 3.2 cites "recent benchmarks for data-centric AI development"
(DataPerf) as the inspiration for the hands-on challenge. DataPerf's other
canonical track is *selection*: given a large, partially-corrupted candidate
pool and a training budget, pick the subset that trains the best model.
Good selections are the mirror image of good cleaning priorities — drop the
harmful tuples, keep the informative ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..datasets import load_recommendation_letters
from ..errors import inject_label_errors
from ..frame import DataFrame
from ..learn.base import Estimator, clone
from ..learn.models.knn import KNeighborsClassifier
from ..text import TextEmbedder
from .leaderboard import Leaderboard

__all__ = ["SelectionChallenge", "SelectionSubmission"]


@dataclass
class SelectionSubmission:
    participant: str
    n_selected: int
    hidden_test_accuracy: float


class SelectionChallenge:
    """Pick ≤ ``budget`` training tuples from a noisy pool.

    Participants see the candidate ``pool`` (with hidden label errors) and
    the ``valid`` split; submissions are scored by retraining on exactly the
    selected tuples and evaluating on a hidden test set.
    """

    def __init__(
        self,
        n: int = 600,
        budget: int = 150,
        error_fraction: float = 0.25,
        error_seed: int = 31,
        model: Estimator | None = None,
        embed_features: int = 48,
    ) -> None:
        clean_pool, valid, test = load_recommendation_letters(n=n, seed=error_seed)
        self.budget = int(budget)
        self.valid = valid
        self._hidden_test = test
        self.model = model if model is not None else KNeighborsClassifier(5)
        self._embedder = TextEmbedder(n_features=embed_features).fit(None)
        self.pool, self._error_report = inject_label_errors(
            clean_pool, "sentiment", fraction=error_fraction, seed=error_seed
        )
        self.leaderboard = Leaderboard()

    def featurize(self, frame: DataFrame) -> np.ndarray:
        text = self._embedder.transform(frame.column("letter_text"))
        rating = frame.column("employer_rating").fillna(3.0).to_numpy().astype(float)
        return np.column_stack([text, (rating - 3.3).reshape(-1, 1)])

    def submit(self, participant: str, row_ids: Iterable[int]) -> SelectionSubmission:
        """Train on the selected tuples; score on the hidden test set."""
        requested = [int(rid) for rid in row_ids]
        if len(requested) > self.budget:
            raise ValueError(
                f"selection of {len(requested)} exceeds budget {self.budget}"
            )
        if len(set(requested)) != len(requested):
            raise ValueError("selection contains duplicate row ids")
        positions = self.pool.positions_of(requested)
        selected = self.pool.take(positions)
        y = np.asarray(selected.column("sentiment").to_list())
        if len(np.unique(y)) < 2:
            raise ValueError("selection must cover both classes")
        fitted = clone(self.model).fit(self.featurize(selected), y)
        accuracy = float(
            fitted.score(
                self.featurize(self._hidden_test),
                np.asarray(self._hidden_test.column("sentiment").to_list()),
            )
        )
        self.leaderboard.record(
            participant, score=accuracy, detail={"n_selected": len(requested)}
        )
        return SelectionSubmission(
            participant=participant,
            n_selected=len(requested),
            hidden_test_accuracy=accuracy,
        )

    def reveal_errors(self) -> np.ndarray:
        """Ground-truth corrupted row ids (post-game analysis)."""
        return self._error_report.row_ids

    def random_baseline(self, seed: int = 0) -> SelectionSubmission:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.pool.row_ids, size=self.budget, replace=False)
        return self.submit(f"random-baseline-{seed}", chosen.tolist())
