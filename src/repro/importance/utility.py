"""Utility games over training subsets.

Game-theoretic importance methods (LOO, Shapley, Banzhaf, Beta-Shapley) all
measure the same object: a *utility function* ``v(S)`` that maps a subset S
of training points to the downstream quality of a model trained on S. This
module provides that function with consistent handling of the degenerate
subsets (empty, single-class) that subset-sampling inevitably produces.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..learn.base import Estimator, clone
from ..learn.metrics import accuracy

__all__ = ["Utility", "SubsetUtility"]


class Utility:
    """``v(S)`` = metric of ``model`` trained on subset S, on validation data.

    Parameters
    ----------
    model:
        Unfitted estimator prototype; cloned for every evaluation.
    x_train, y_train:
        The full training pool that subsets index into.
    x_valid, y_valid:
        Held-out data on which the metric is computed.
    metric:
        ``metric(y_true, y_pred) -> float``; defaults to accuracy. For
        fairness games pass a closure over the group attribute.
    null_score:
        Value of ``v(∅)``. Defaults to the accuracy of always predicting the
        majority *validation* class — the natural "no training data" model.
    """

    def __init__(
        self,
        model: Estimator,
        x_train: Any,
        y_train: Any,
        x_valid: Any,
        y_valid: Any,
        metric: Callable[[np.ndarray, np.ndarray], float] = accuracy,
        null_score: float | None = None,
    ) -> None:
        self.model = model
        self.x_train = np.asarray(x_train, dtype=float)
        self.y_train = np.asarray(y_train)
        self.x_valid = np.asarray(x_valid, dtype=float)
        self.y_valid = np.asarray(y_valid)
        if len(self.x_train) != len(self.y_train):
            raise ValueError("x_train and y_train must have equal length")
        if len(self.x_valid) != len(self.y_valid):
            raise ValueError("x_valid and y_valid must have equal length")
        self.metric = metric
        if null_score is None:
            values, counts = np.unique(self.y_valid, return_counts=True)
            majority = values[np.argmax(counts)]
            constant = np.repeat(np.asarray([majority]), len(self.y_valid))
            null_score = float(metric(self.y_valid, constant))
        self.null_score = float(null_score)
        self.n_evaluations = 0

    @property
    def n_train(self) -> int:
        return len(self.y_train)

    def evaluate(self, indices: Sequence[int]) -> float:
        """``v(S)`` for S given as training positions."""
        idx = np.asarray(list(indices), dtype=np.int64)
        if len(idx) == 0:
            return self.null_score
        ys = self.y_train[idx]
        if len(np.unique(ys)) < 2:
            # Single-class subset: the model degenerates to a constant
            # predictor of that class. No model is retrained, but the metric
            # *is* evaluated, so it counts toward ``n_evaluations`` (only the
            # empty subset, answered from the cached null score, is free).
            self.n_evaluations += 1
            constant = np.repeat(ys[:1], len(self.y_valid))
            return float(self.metric(self.y_valid, constant))
        self.n_evaluations += 1
        fitted = clone(self.model).fit(self.x_train[idx], ys)
        predictions = fitted.predict(self.x_valid)
        return float(self.metric(self.y_valid, predictions))

    def full_score(self) -> float:
        """``v(N)`` — utility of the entire training pool."""
        return self.evaluate(np.arange(self.n_train))


class SubsetUtility:
    """Adapter exposing an arbitrary ``v(indices)`` callable as a utility.

    Lets the game-theoretic estimators run over non-model games (used in
    tests against hand-constructed games with known Shapley values).
    """

    def __init__(self, func: Callable[[Sequence[int]], float], n_train: int) -> None:
        self.func = func
        self._n = int(n_train)
        self.n_evaluations = 0

    @property
    def n_train(self) -> int:
        return self._n

    def evaluate(self, indices: Sequence[int]) -> float:
        self.n_evaluations += 1
        return float(self.func(list(indices)))

    def full_score(self) -> float:
        return self.evaluate(list(range(self._n)))

    @property
    def null_score(self) -> float:
        return float(self.func([]))
