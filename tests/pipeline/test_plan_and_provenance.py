"""Tests for query-plan rendering and the Provenance container."""

import numpy as np
import pytest

from repro.pipeline import Provenance, plan_summary, render_plan
from tests.pipeline.conftest import build_letters_pipeline


class TestPlanRendering:
    def test_render_mentions_all_operators(self):
        __, sink = build_letters_pipeline()
        text = render_plan(sink)
        for token in ("Join", "Filter", "Encode", "Concat", "Source", "train_df"):
            assert token in text

    def test_render_expands_encoder_branches(self):
        __, sink = build_letters_pipeline()
        text = render_plan(sink)
        assert "SentenceBertTransformer" in text
        assert "StandardScaler" in text

    def test_plan_summary_counts(self):
        __, sink = build_letters_pipeline()
        counts = plan_summary(sink)
        assert counts["source"] == 3
        assert counts["join"] == 2
        assert counts["filter"] == 1
        assert counts["map"] == 1
        assert counts["encode"] == 1

    def test_topological_order_inputs_before_consumers(self):
        plan, sink = build_letters_pipeline()
        order = plan.topological_order(sink)
        assert order[-1].kind == "encode"
        position = {node.id: i for i, node in enumerate(order)}
        for node in order:
            for parent in node.inputs:
                assert position[parent.id] < position[node.id]


class TestProvenanceContainer:
    def test_source_row_ids_happy_path(self):
        prov = Provenance([frozenset({("t", 3)}), frozenset({("t", 5), ("s", 1)})])
        assert prov.source_row_ids("t").tolist() == [3, 5]

    def test_source_row_ids_ambiguous_raises(self):
        prov = Provenance([frozenset({("t", 1), ("t", 2)})])
        with pytest.raises(ValueError):
            prov.source_row_ids("t")

    def test_source_row_ids_absent_raises(self):
        prov = Provenance([frozenset({("t", 1)}), frozenset({("s", 2)})])
        with pytest.raises(ValueError):
            prov.source_row_ids("t")

    def test_outputs_of(self):
        prov = Provenance(
            [frozenset({("t", 1)}), frozenset({("t", 2)}), frozenset({("s", 1)})]
        )
        assert prov.outputs_of("t", [2]).tolist() == [1]
        assert prov.outputs_of("s", [1]).tolist() == [2]
        assert prov.outputs_of("t", [99]).tolist() == []

    def test_sources(self):
        prov = Provenance([frozenset({("a", 1), ("b", 2)})])
        assert prov.sources() == {"a", "b"}

    def test_union_rows_length_mismatch_raises(self):
        a = Provenance([frozenset({("t", 1)})])
        b = Provenance([frozenset({("s", 1)}), frozenset({("s", 2)})])
        with pytest.raises(ValueError):
            Provenance.union_rows(a, b)

    def test_concat(self):
        a = Provenance([frozenset({("t", 1)})])
        b = Provenance([frozenset({("t", 2)})])
        assert len(Provenance.concat([a, b])) == 2

    def test_take_reorders(self):
        prov = Provenance([frozenset({("t", 1)}), frozenset({("t", 2)})])
        taken = prov.take(np.asarray([1, 0]))
        assert taken.tuples[0] == frozenset({("t", 2)})

    def test_lineage_table_readable(self):
        prov = Provenance([frozenset({("t", 1), ("s", 4)})])
        table = prov.lineage_table()
        assert table[0]["sources"] == "s[4], t[1]"

    def test_for_source_constructor(self):
        prov = Provenance.for_source("x", np.asarray([7, 8]))
        assert prov.tuples == [frozenset({("x", 7)}), frozenset({("x", 8)})]
