"""Experiment T-cp — certain predictions and CPClean cleaning-effort savings.

Section 2.3's "do we even need to clean?" question: with KNN over incomplete
data, many test predictions are already certain. This bench sweeps the
missing rate and reports the certain-prediction fraction, then compares the
CPClean-style cleaning order against random order on how many oracle calls
reach full certainty. Shape to reproduce: certainty decays with missingness;
CPClean ordering reaches full certainty with no more repairs than random.
"""

import numpy as np

from repro.datasets import make_classification
from repro.uncertainty import certain_prediction_report, cpclean_order, from_matrix_with_nans
from repro.viz import format_records

MISSING_RATES = [0.0, 0.02, 0.05, 0.1, 0.2]
K = 3
N_TEST = 30


def make_task(missing_rate: float, seed: int = 4):
    X, y = make_classification(n=130, n_features=3, seed=seed)
    Xtr, ytr = X[:100], y[:100]
    Xte = X[100:100 + N_TEST]
    rng = np.random.default_rng(seed)
    X_nan = Xtr.copy()
    X_nan[rng.random(Xtr.shape) < missing_rate] = np.nan
    return from_matrix_with_nans(X_nan, ytr.astype(float)), Xtr, Xte


def cleaning_calls_until_certain(dataset, clean_X, x_test, order) -> int:
    """Oracle repairs following ``order`` until every prediction is certain."""
    from repro.uncertainty import UncertainDataset
    from repro.uncertainty.intervals import Interval

    lo = dataset.X.lo.copy()
    hi = dataset.X.hi.copy()
    cells = dataset.uncertain_cells.copy()
    calls = 0
    for row in order:
        report = certain_prediction_report(
            UncertainDataset(Interval(lo, hi), dataset.y, cells), x_test, k=K
        )
        if report.certain_fraction == 1.0:
            break
        if not cells[row].any():
            continue
        lo[row] = clean_X[row]
        hi[row] = clean_X[row]
        cells[row] = False
        calls += 1
    return calls


def run_sweep() -> dict:
    fraction_rows = []
    for rate in MISSING_RATES:
        dataset, __, x_test = make_task(rate)
        report = certain_prediction_report(dataset, x_test, k=K)
        fraction_rows.append(
            {"missing_rate": rate, "certain_fraction": report.certain_fraction}
        )

    dataset, clean_X, x_test = make_task(0.08)
    smart_order = cpclean_order(dataset, x_test, k=K)
    rng = np.random.default_rng(0)
    random_order = rng.permutation(dataset.n_rows)
    calls = {
        "cpclean_order": cleaning_calls_until_certain(
            dataset, clean_X, x_test, smart_order
        ),
        "random_order": cleaning_calls_until_certain(
            dataset, clean_X, x_test, random_order
        ),
    }
    return {"fractions": fraction_rows, "calls": calls}


def test_certain_predictions(benchmark, write_report):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report = format_records(result["fractions"])
    report += (
        f"\n\noracle repairs until all {N_TEST} predictions certain "
        f"(8% missing): cpclean={result['calls']['cpclean_order']}, "
        f"random={result['calls']['random_order']}"
    )
    write_report("certain_predictions", report)

    fractions = [r["certain_fraction"] for r in result["fractions"]]
    assert fractions[0] == 1.0
    assert fractions[-1] <= fractions[0]
    assert fractions[-1] < 1.0  # heavy missingness must create uncertainty
    assert result["calls"]["cpclean_order"] <= result["calls"]["random_order"]
