"""Observability: tracing, metrics, and profiling for the whole runtime.

The paper's Debug pillar is built on fine-grained pipeline inspection;
``repro.obs`` applies the same idea to the library's own execution. Three
zero-dependency layers:

- :mod:`repro.obs.trace` — hierarchical spans with a thread/fork-safe
  in-memory recorder, a ``span()`` context manager, a ``@traced``
  decorator, and JSONL export. Off by default; the disabled path is a
  single flag check.
- :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms with snapshot/reset semantics and JSON export.
- :mod:`repro.obs.profile` — opt-in cProfile capture that attaches its
  results to the trace.

The executor (:mod:`repro.pipeline.execute`), the valuation engine
(:mod:`repro.importance.engine`), and the cleaning loops are instrumented
through this package; the user-facing window is
:class:`repro.obs.tracing` (re-exported as ``nde.tracing()``)::

    import repro.core as nde

    with nde.tracing() as report:
        nde.execute_robust(sink, sources)
    print(report.render())
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
    reset,
    snapshot,
)
from .profile import ProfileResult, profile_block, profiling_requested
from .report import TraceReport, tracing
from .trace import (
    Span,
    TraceRecorder,
    add_attrs,
    current_span,
    disable,
    enable,
    enabled,
    get_recorder,
    span,
    traced,
)

__all__ = [
    # trace
    "Span",
    "TraceRecorder",
    "enabled",
    "enable",
    "disable",
    "span",
    "traced",
    "add_attrs",
    "current_span",
    "get_recorder",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
    # report / profile
    "TraceReport",
    "tracing",
    "ProfileResult",
    "profile_block",
    "profiling_requested",
]
