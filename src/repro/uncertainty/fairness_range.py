"""Consistent range approximation for fair predictive modelling [94].

When the training data suffers *selection bias* of unknown strength — e.g.
group B was undersampled at some unknown rate — a fairness metric computed
on the data is a single point from a whole family of possible values. Zhu
et al. certify fairness by computing the metric's **range over every
consistent correction** of the bias; a model is certifiably (un)fair when
the whole range sits on one side of the threshold.

This implementation covers per-group reweighting families: each group's
true prevalence multiplier is known only up to an interval, and the bounds
of a rate-based fairness metric over the family follow in closed form
because each group's rate statistics are invariant to *within-group*
uniform reweighting — only metrics that mix groups (like overall accuracy)
vary, and selection-rate/TPR gaps across groups vary only through which
group attains the extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .intervals import Interval

__all__ = ["FairnessRange", "demographic_parity_range", "group_metric_range"]


@dataclass
class FairnessRange:
    """A certified interval for a fairness metric under biased sampling."""

    metric: str
    lo: float
    hi: float
    threshold: float | None = None
    extras: dict = field(default_factory=dict)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def certifiably_fair(self, threshold: float | None = None) -> bool:
        """True when *every* consistent world satisfies metric ≤ threshold."""
        threshold = threshold if threshold is not None else self.threshold
        if threshold is None:
            raise ValueError("no fairness threshold provided")
        return self.hi <= threshold

    def certifiably_unfair(self, threshold: float | None = None) -> bool:
        threshold = threshold if threshold is not None else self.threshold
        if threshold is None:
            raise ValueError("no fairness threshold provided")
        return self.lo > threshold


def group_metric_range(
    y_true: Any,
    y_pred: Any,
    group: Any,
    positive: Any,
    statistic: str = "selection_rate",
    prevalence_multipliers: dict | None = None,
    grid: int = 11,
) -> dict:
    """Per-group interval of a rate statistic under label-sampling bias.

    ``prevalence_multipliers[g] = (lo, hi)`` says the observed positives of
    group g are an α-fraction sample with α ∈ [lo, hi] (α < 1: positives
    undersampled). Rates are recomputed with the positives' weights scaled
    by 1/α, sweeping a grid over the interval (the rates are monotone in α,
    so grid endpoints are exact extremes; the grid is kept for readability).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    group = np.asarray(group)
    multipliers = prevalence_multipliers or {}
    out: dict = {}
    for g in np.unique(group):
        members = group == g
        yt, yp = y_true[members], y_pred[members]
        lo_alpha, hi_alpha = multipliers.get(
            g.item() if hasattr(g, "item") else g, (1.0, 1.0)
        )
        values = []
        for alpha in np.linspace(lo_alpha, hi_alpha, grid):
            weight = np.where(yt == positive, 1.0 / max(alpha, 1e-9), 1.0)
            selected = yp == positive
            if statistic == "selection_rate":
                values.append(float(weight[selected].sum() / weight.sum()))
            elif statistic == "tpr":
                positives = yt == positive
                denom = weight[positives].sum()
                values.append(
                    float(weight[selected & positives].sum() / denom) if denom else 0.0
                )
            else:
                raise ValueError(f"unknown statistic: {statistic!r}")
        key = g.item() if hasattr(g, "item") else g
        out[key] = (min(values), max(values))
    return out


def demographic_parity_range(
    y_true: Any,
    y_pred: Any,
    group: Any,
    positive: Any,
    prevalence_multipliers: dict | None = None,
    threshold: float | None = None,
) -> FairnessRange:
    """Range of the demographic-parity gap over all consistent corrections.

    The gap is ``max_g rate_g − min_g rate_g`` with each group's rate known
    only as an interval [lo_g, hi_g]. The exact extremes are closed-form:

    - largest gap: push one group to its maximum and another to its minimum,
      ``max_g hi_g − min_g lo_g``;
    - smallest gap: squeeze all rates toward a common point; zero when the
      intervals share one, else the leftover separation
      ``max(0, max_g lo_g − min_g hi_g)``.
    """
    per_group = group_metric_range(
        y_true, y_pred, group, positive,
        statistic="selection_rate",
        prevalence_multipliers=prevalence_multipliers,
    )
    lows = [bounds[0] for bounds in per_group.values()]
    highs = [bounds[1] for bounds in per_group.values()]
    hi_gap = max(highs) - min(lows)
    lo_gap = max(0.0, max(lows) - min(highs))
    return FairnessRange(
        metric="demographic_parity_difference",
        lo=float(lo_gap),
        hi=float(hi_gap),
        threshold=threshold,
        extras={"per_group_rates": per_group},
    )
