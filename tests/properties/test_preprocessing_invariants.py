"""Algebraic invariants of the preprocessing transformers.

Fit idempotence, inverse-transform round-trips, missingness handling, and
the one-hot simplex constraint — the contracts the encode() pipeline stage
assumes without checking.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import (
    CellImputer,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    SimpleImputer,
    StandardScaler,
)

shapes = st.tuples(
    st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=4)
)
seeds = st.integers(min_value=0, max_value=10_000)
categories = st.sampled_from(["red", "green", "blue", "cyan"])
maybe_categories = st.one_of(st.none(), categories)


def _matrix(shape, seed, nan_fraction=0.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(scale=10.0, size=shape)
    if nan_fraction:
        X[rng.random(shape) < nan_fraction] = np.nan
    return X


class TestScalers:
    @given(shape=shapes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_standard_scaler_fit_transform_is_idempotent(self, shape, seed):
        X = _matrix(shape, seed, nan_fraction=0.2)
        Y = StandardScaler().fit(X).transform(X)
        # Already-standardised data is a fixed point of fit-transform.
        np.testing.assert_allclose(
            StandardScaler().fit(Y).transform(Y), Y, atol=1e-8, equal_nan=True
        )

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_standard_scaler_inverse_roundtrip_with_nans(self, shape, seed):
        X = _matrix(shape, seed, nan_fraction=0.3)
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-8, equal_nan=True)
        # NaN cells pass through both directions untouched.
        assert np.array_equal(np.isnan(back), np.isnan(X))

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_minmax_scaler_fit_is_idempotent(self, shape, seed):
        X = _matrix(shape, seed)
        first = MinMaxScaler().fit(X)
        Y = first.transform(X)
        second = MinMaxScaler().fit(Y)
        np.testing.assert_allclose(second.transform(Y), Y, atol=1e-9)

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_minmax_training_output_in_unit_box(self, shape, seed):
        X = _matrix(shape, seed, nan_fraction=0.2)
        Y = MinMaxScaler().fit(X).transform(X)
        present = Y[~np.isnan(Y)]
        assert np.all(present >= -1e-12)
        assert np.all(present <= 1.0 + 1e-12)


class TestImputers:
    @given(shape=shapes, seed=seeds, strategy=st.sampled_from(["mean", "median", "most_frequent"]))
    @settings(max_examples=60, deadline=None)
    def test_simple_imputer_output_is_complete(self, shape, seed, strategy):
        X = _matrix(shape, seed, nan_fraction=0.4)
        out = SimpleImputer(strategy=strategy).fit(X).transform(X)
        assert not np.isnan(out).any()
        # Observed cells are untouched.
        observed = ~np.isnan(X)
        np.testing.assert_array_equal(out[observed], X[observed])

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_simple_imputer_identity_on_complete_data(self, shape, seed):
        X = _matrix(shape, seed)
        out = SimpleImputer().fit(X).transform(X)
        np.testing.assert_array_equal(out, X)

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_simple_imputer_mean_fill_matches_nanmean(self, shape, seed):
        X = _matrix(shape, seed, nan_fraction=0.4)
        imputer = SimpleImputer(strategy="mean").fit(X)
        for j in range(X.shape[1]):
            present = X[~np.isnan(X[:, j]), j]
            expected = present.mean() if present.size else 0.0
            assert np.isclose(imputer.statistics_[j], expected)

    @given(cells=st.lists(maybe_categories, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_cell_imputer_fills_from_observed_vocabulary(self, cells):
        imputer = CellImputer(strategy="most_frequent").fit(cells)
        out = imputer.transform(cells)
        observed = {c for c in cells if c is not None}
        if observed:
            assert None not in out
            assert set(out) <= observed
        # Observed cells are untouched.
        assert [o for o, c in zip(out, cells) if c is not None] == [
            c for c in cells if c is not None
        ]


class TestEncoders:
    @given(cells=st.lists(maybe_categories, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_one_hot_rows_lie_on_the_simplex(self, cells):
        encoder = OneHotEncoder().fit(cells)
        out = encoder.transform(cells)
        assert out.shape == (len(cells), len(encoder.categories_))
        assert set(np.unique(out)) <= {0.0, 1.0}
        sums = out.sum(axis=1)
        for cell, total in zip(cells, sums):
            assert total == (0.0 if cell is None else 1.0)

    @given(cells=st.lists(categories, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_one_hot_decodes_back_to_input(self, cells):
        encoder = OneHotEncoder().fit(cells)
        out = encoder.transform(cells)
        decoded = [encoder.categories_[j] for j in np.argmax(out, axis=1)]
        assert decoded == cells

    @given(cells=st.lists(maybe_categories, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_one_hot_unseen_category_is_zero_row(self, cells):
        encoder = OneHotEncoder().fit(cells)
        out = encoder.transform(["never-seen-category"])
        assert not out.any()

    @given(cells=st.lists(maybe_categories, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_ordinal_codes_round_trip(self, cells):
        encoder = OrdinalEncoder().fit(cells)
        codes = encoder.transform(cells)[:, 0]
        for cell, code in zip(cells, codes):
            if cell is None:
                assert code == -1
            else:
                assert encoder.categories_[int(code)] == cell

    @given(cells=st.lists(maybe_categories, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_encoder_fit_is_idempotent(self, cells):
        first = OneHotEncoder().fit(cells)
        second = OneHotEncoder().fit(cells)
        assert first.categories_ == second.categories_
        np.testing.assert_array_equal(first.transform(cells), second.transform(cells))
