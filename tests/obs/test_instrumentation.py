"""End-to-end observability: traced pipelines, chaos runs, engine metrics.

These tests exercise the actual instrumentation sites (pipeline executor,
quarantine, valuation engine, cleaning loops) through the ``nde.tracing()``
facade, and pin the guarantees the obs layer advertises: quarantine
counters agree with the quarantine object, the span skeleton is
deterministic for a fixed seed, and nothing is recorded while disabled.
"""

import json

import numpy as np
import pytest

import repro.core as nde
from repro.errors import ChaosMonkey
from repro.frame import DataFrame
from repro.importance import shapley_mc
from repro.importance.engine import ValuationEngine
from repro.importance.utility import SubsetUtility
from repro.learn import ColumnTransformer, StandardScaler
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs import tracing
from repro.pipeline import PipelinePlan, execute_robust


def build_pipeline(n: int = 80):
    frame = DataFrame(
        {
            "value": np.linspace(0.0, 1.0, n),
            "group": ["a" if i % 3 else "b" for i in range(n)],
            "label": ["pos" if i % 2 else "neg" for i in range(n)],
        }
    )
    plan = PipelinePlan()
    sink = (
        plan.source("t")
        .filter(lambda df: df["value"] <= 0.95, "value <= 0.95")
        .with_column("feat", lambda df: df["value"] * 2.0, "feat")
        .encode(
            ColumnTransformer([(StandardScaler(), ["feat"])]), label_column="label"
        )
    )
    return frame, sink


def _skeleton(report):
    """(name, parent position) pairs — id-free, so windows compare equal."""
    position = {s.span_id: i for i, s in enumerate(report.spans)}
    return [(s.name, position.get(s.parent_id)) for s in report.spans]


def _additive_engine(weights, n_workers=1):
    w = np.asarray(weights, dtype=float)
    utility = SubsetUtility(
        lambda idx: float(w[np.asarray(list(idx), dtype=np.int64)].sum())
        if len(list(idx))
        else 0.0,
        len(w),
    )
    return ValuationEngine(utility, n_workers=n_workers)


class TestPipelineTracing:
    def test_execute_robust_yields_per_node_spans(self):
        frame, sink = build_pipeline()
        with tracing() as report:
            result = execute_robust(sink, {"t": frame})
        (root,) = report.roots()
        assert root.name == "pipeline.execute"
        assert root.attrs["robust"] is True
        assert root.attrs["rows_out"] == result.n_rows
        node_spans = report.find("node")
        kinds = [s.name.split(".", 1)[1].split("#")[0] for s in node_spans]
        assert kinds == ["source", "filter", "map", "encode"]
        assert all(s.parent_id == root.span_id for s in node_spans)
        # Row counts flow through the span attributes.
        assert node_spans[0].attrs["rows_out"] == frame.num_rows
        assert node_spans[1].attrs["rows_in"] == frame.num_rows
        assert node_spans[-1].attrs["rows_out"] == result.n_rows

    def test_span_skeleton_is_deterministic(self):
        skeletons = []
        for __ in range(2):
            frame, sink = build_pipeline()
            monkey = ChaosMonkey(seed=7, error_rate=0.08)
            with tracing() as report:
                execute_robust(monkey.wrap(sink), {"t": frame})
            skeletons.append(_skeleton(report))
        assert skeletons[0] == skeletons[1]

    def test_quarantine_counters_match_quarantine_object(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=7, error_rate=0.08)
        with tracing() as report:
            result = execute_robust(monkey.wrap(sink), {"t": frame})
        assert len(result.quarantine) >= 1
        total = report.metrics["pipeline.quarantine.total"]["value"]
        assert total == len(result.quarantine)
        # Per-reason counters partition the total and match the records.
        by_reason: dict[str, int] = {}
        for record in result.quarantine:
            by_reason[record.reason] = by_reason.get(record.reason, 0) + 1
        for reason, count in by_reason.items():
            assert report.metrics[f"pipeline.quarantine.{reason}"]["value"] == count
        # And the ground truth agrees with the error report the Identify
        # tooling consumes.
        error_report = result.quarantine.to_error_report("t")
        assert len(error_report.row_ids) == len(
            set(result.quarantine.row_ids("t").tolist())
        )
        assert (
            report.metrics["pipeline.rows_out"]["value"] == result.n_rows
        )

    def test_quarantined_root_attr_counts_rows(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=7, error_rate=0.08)
        with tracing() as report:
            result = execute_robust(monkey.wrap(sink), {"t": frame})
        (root,) = report.roots()
        assert root.attrs["quarantined"] == len(result.quarantine)


class TestEngineTracing:
    def test_run_permutations_records_waves_and_cache_metrics(self):
        engine = _additive_engine([1.0, 2.0, 3.0, 4.0])
        with tracing() as report:
            engine.run_permutations(6, seed=0)
        (run_span,) = report.find("engine.run_permutations")
        assert run_span.attrs["n_permutations"] == 6
        assert run_span.attrs["n_permutations_run"] == 6
        waves = report.find("engine.wave")
        assert [w.parent_id for w in waves] == [run_span.span_id] * len(waves)
        assert report.metrics["engine.permutations"]["value"] == 6
        # All cache traffic happened inside the run, so the window's deltas
        # equal the engine's lifetime stats.
        stats = engine.cache.stats()
        assert report.metrics["engine.cache.hits"]["value"] == stats["hits"]
        assert report.metrics["engine.cache.misses"]["value"] == stats["misses"]
        assert report.metrics["engine.evaluations"]["value"] == (
            engine.utility.n_evaluations
        )
        assert run_span.attrs["cache_misses"] == stats["misses"]

    def test_shapley_mc_reports_engine_activity(self):
        engine = _additive_engine([1.0, 2.0, 3.0, 4.0])
        with tracing() as report:
            result = shapley_mc(None, n_permutations=6, engine=engine)
        assert report.find("engine.run_permutations")
        assert report.metrics["engine.permutations"]["value"] == 6
        assert result.extras["cache"]["hits"] >= (
            report.metrics["engine.cache.hits"]["value"]
        )

    def test_convergence_run_emits_stderr_trajectory(self):
        engine = _additive_engine(np.linspace(0.0, 1.0, 6))
        with tracing() as report:
            engine.run_permutations(
                40, seed=0, convergence_tolerance=1e-9, check_every=5
            )
        trajectory = report.metrics["engine.wave_max_stderr"]
        # One observation per completed wave, recorded in order.
        waves = [s for s in report.find("engine.wave") if "max_stderr" in s.attrs]
        assert trajectory["count"] == len(waves)
        assert trajectory["recent"] == [w.attrs["max_stderr"] for w in waves]
        (run_span,) = report.find("engine.run_permutations")
        # Additive game: stderr is ~0 after the first check → early stop.
        assert run_span.attrs["stopped_early"] is True
        assert run_span.attrs["n_permutations_run"] < 40

    def test_parallel_run_has_same_span_skeleton_as_serial(self):
        skeletons = []
        reports = []
        for n_workers in (1, 3):
            engine = _additive_engine([1.0, -2.0, 0.5, 3.0, 1.5], n_workers)
            with tracing() as report:
                engine.run_permutations(6, seed=3)
            reports.append(report)
            # Worker spans are backhauled into the parallel trace (grouped
            # under worker[i]); the *driver's* skeleton must still not
            # depend on the worker count, so compare with them filtered.
            driver_spans = [
                s
                for s in report.spans
                if not s.name.startswith(("worker[", "worker."))
            ]
            position = {s.span_id: i for i, s in enumerate(driver_spans)}
            skeletons.append(
                [(s.name, position.get(s.parent_id)) for s in driver_spans]
            )
        assert skeletons[0] == skeletons[1]
        # The serial run has no worker spans; the parallel run's adopted
        # chunk spans are each parented under a worker[i] group, which in
        # turn hangs off a driver span (the wave).
        serial, parallel = reports
        assert not [s for s in serial.spans if s.name.startswith("worker")]
        groups = [s for s in parallel.spans if s.name.startswith("worker[")]
        chunks = [s for s in parallel.spans if s.name == "worker.chunk"]
        assert groups and chunks
        by_id = {s.span_id: s for s in parallel.spans}
        group_ids = {g.span_id for g in groups}
        assert all(c.parent_id in group_ids for c in chunks)
        assert all(
            by_id[g.parent_id].name == "engine.wave" for g in groups
        )

    def test_evaluate_many_span_reports_pending(self):
        engine = _additive_engine([1.0, 2.0, 3.0])
        engine.evaluate([0, 1])  # warm one subset before the window
        with tracing() as report:
            engine.evaluate_many([(0, 1), (0, 2), (0, 1)])
        (span,) = report.find("engine.evaluate_many")
        assert span.attrs["n_subsets"] == 3
        assert report.metrics["engine.cache.hits"]["value"] >= 1


class TestTracingWindow:
    def test_disabled_outside_window_and_no_spans_recorded(self):
        frame, sink = build_pipeline(20)
        execute_robust(sink, {"t": frame})  # outside any window
        assert not obs_trace.enabled()
        assert len(obs_trace.get_recorder()) == 0
        assert obs_metrics.snapshot() == {}

    def test_report_empty_until_exit_then_closed(self):
        with tracing() as report:
            assert report.closed is False
            assert report.spans == []
            with obs_trace.span("window.work"):
                pass
        assert report.closed is True
        assert report.span_names() == ["window.work"]
        assert not obs_trace.enabled()

    def test_windows_nest_and_only_outer_disables(self):
        with tracing() as outer:
            with obs_trace.span("before"):
                pass
            with tracing() as inner:
                with obs_trace.span("inside"):
                    pass
            assert obs_trace.enabled()  # inner exit must not switch off
            with obs_trace.span("after"):
                pass
        assert not obs_trace.enabled()
        assert inner.span_names() == ["inside"]
        assert outer.span_names() == ["before", "inside", "after"]

    def test_metrics_are_window_deltas(self):
        obs_trace.enable()
        obs_metrics.counter("test.pre").inc(10)
        with tracing() as report:
            obs_metrics.counter("test.pre").inc(2)
            obs_metrics.counter("test.fresh").inc(1)
        obs_trace.disable()
        assert report.metrics["test.pre"]["value"] == 2.0
        assert report.metrics["test.fresh"]["value"] == 1.0

    def test_root_option_wraps_window_in_one_tree(self):
        with tracing(root="session") as report:
            with obs_trace.span("a"):
                pass
            with obs_trace.span("b"):
                pass
        (root,) = report.roots()
        assert root.name == "session"
        assert [s.name for s in report.children(root)] == ["a", "b"]
        assert root.finished

    def test_report_render_and_jsonl_export(self, tmp_path):
        frame, sink = build_pipeline(20)
        with tracing() as report:
            execute_robust(sink, {"t": frame})
        text = report.render()
        assert "pipeline.execute" in text
        assert "node.encode" in text
        assert "pipeline.runs" in text
        path = tmp_path / "trace.jsonl"
        count = report.save_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        # header + spans + trailing metrics line
        assert len(lines) == count + 2
        assert lines[0]["kind"] == "trace_report"
        assert lines[1]["name"] == "pipeline.execute"
        assert lines[-1]["metrics"]["pipeline.runs"]["value"] == 1
        loaded = type(report).from_jsonl(path)
        assert loaded.span_names() == report.span_names()
        assert loaded.metrics.keys() == report.metrics.keys()

    def test_from_jsonl_ignores_unknown_fields_and_kinds(self, tmp_path):
        """Forward compat: a file written by a *newer* schema still loads."""
        from repro.obs import TraceReport

        path = tmp_path / "future.jsonl"
        lines = [
            # future header with extra fields
            {"schema_version": 99, "kind": "trace_report", "host": "somewhere"},
            # span with unknown extra keys
            {
                "span_id": 0, "parent_id": None, "name": "root", "start": 0.0,
                "duration": 0.5, "attrs": {"n": 1}, "future_field": [1, 2],
            },
            # span missing optional keys entirely
            {"span_id": 1, "name": "leaf", "duration": 0.1},
            # an unknown record kind
            {"kind": "annotations", "payload": {"x": 1}},
            # a non-dict line
            [1, 2, 3],
            # trailing metrics with extras
            {"metrics": {"pipeline.runs": {"type": "counter", "value": 2}},
             "extra": True},
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        report = TraceReport.from_jsonl(path)
        assert report.closed
        assert report.span_names() == ["root", "leaf"]
        assert report.spans[0].attrs == {"n": 1}
        assert report.spans[1].parent_id is None  # defaulted
        assert report.metrics["pipeline.runs"]["value"] == 2

    def test_summary_self_time_never_exceeds_total(self):
        frame, sink = build_pipeline(20)
        with tracing() as report:
            execute_robust(sink, {"t": frame})
        for row in report.summary():
            assert 0.0 <= row["self_s"] <= row["total_s"] + 1e-9
            assert row["mean_s"] * row["calls"] == pytest.approx(row["total_s"])


class TestFacadeExports:
    def test_nde_exposes_tracing_and_report(self):
        assert nde.tracing is tracing
        with nde.tracing() as report:
            pass
        assert isinstance(report, nde.TraceReport)
