"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    DEGREES,
    SECTORS,
    generate_hiring_data,
    load_recommendation_letters,
    load_sidedata,
    make_biased_hiring,
    make_blobs,
    make_classification,
    make_moons,
    make_regression,
)


class TestHiringScenario:
    def test_schema(self):
        data = generate_hiring_data(n=50, seed=1)
        assert data["letters"].columns == [
            "person_id", "name", "job_id", "letter_text", "degree", "sex",
            "age", "race", "employer_rating", "sentiment",
        ]
        assert data["jobdetail"].columns == ["job_id", "sector", "salary_band", "team_size"]
        assert data["social"].columns == ["person_id", "twitter", "followers"]

    def test_deterministic_by_seed(self):
        a = generate_hiring_data(n=40, seed=5)["letters"]
        b = generate_hiring_data(n=40, seed=5)["letters"]
        assert a.equals(b)

    def test_seeds_change_data(self):
        a = generate_hiring_data(n=40, seed=5)["letters"]
        b = generate_hiring_data(n=40, seed=6)["letters"]
        assert not a.equals(b)

    def test_join_keys_resolve(self):
        data = generate_hiring_data(n=60, seed=2)
        joined = data["letters"].join(data["jobdetail"], on="job_id", how="left")
        assert joined.column("sector").null_count() == 0
        joined2 = data["letters"].join(data["social"], on="person_id", how="left")
        assert joined2.column("followers").null_count() == 0

    def test_sectors_and_degrees_valid(self):
        data = generate_hiring_data(n=80, seed=3)
        assert set(data["jobdetail"].column("sector").unique()) <= set(SECTORS)
        assert set(data["letters"].column("degree").unique()) <= set(DEGREES)

    def test_letter_text_mentions_polarity_words(self):
        data = generate_hiring_data(n=30, seed=4)
        texts = data["letters"].column("letter_text").to_list()
        assert all(len(t) > 50 for t in texts)

    def test_twitter_partially_missing(self):
        data = generate_hiring_data(n=100, seed=5)
        missing = data["social"].column("twitter").null_count()
        assert 0 < missing < 100

    def test_labels_both_classes(self):
        data = generate_hiring_data(n=60, seed=6)
        assert set(data["letters"].column("sentiment").unique()) == {"negative", "positive"}

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            generate_hiring_data(n=2)

    def test_loader_split_sizes(self):
        train, valid, test = load_recommendation_letters(n=100, seed=0)
        assert train.num_rows + valid.num_rows + test.num_rows == 100
        ids = set(train.row_ids) | set(valid.row_ids) | set(test.row_ids)
        assert len(ids) == 100

    def test_sidedata_consistent_with_loader(self):
        __, __, test = load_recommendation_letters(n=80, seed=1)
        jobdetail, social = load_sidedata(n=80, seed=1)
        joined = test.join(jobdetail, on="job_id", how="left")
        assert joined.column("sector").null_count() == 0


class TestTabularGenerators:
    def test_blobs_shapes(self):
        X, y = make_blobs(n=50, centers=3, n_features=4, seed=0)
        assert X.shape == (50, 4)
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_classification_learnable(self):
        from repro.learn import LogisticRegression

        X, y = make_classification(n=200, seed=1)
        assert LogisticRegression().fit(X[:150], y[:150]).score(X[150:], y[150:]) > 0.8

    def test_classification_informative_bound(self):
        with pytest.raises(ValueError):
            make_classification(n_features=2, n_informative=3)

    def test_moons_two_balanced_classes(self):
        __, y = make_moons(n=100, seed=2)
        assert np.abs(np.mean(y) - 0.5) < 0.01

    def test_regression_returns_true_weights(self):
        X, y, w = make_regression(n=100, n_features=3, noise=0.0, seed=3)
        assert np.allclose(X @ w, y)

    def test_biased_hiring_flips_only_group_b(self):
        df = make_biased_hiring(n=300, bias_strength=0.5, seed=4)
        flipped = df[df["bias_flipped"] == True]  # noqa: E712
        assert flipped.num_rows > 0
        assert set(flipped.column("group").unique()) == {"B"}
        # Every flip goes qualified -> not hired.
        assert set(flipped.column("hired").unique()) == {"no"}
        assert set(flipped.column("true_hired").unique()) == {"yes"}

    def test_biased_hiring_zero_strength_clean(self):
        df = make_biased_hiring(n=100, bias_strength=0.0, seed=5)
        assert df.column("bias_flipped").sum() == 0
