"""Distribution-level errors: selection bias, OOD shift, duplicates."""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .report import ErrorReport

__all__ = ["inject_selection_bias", "inject_distribution_shift", "inject_duplicates"]


def inject_selection_bias(
    frame: DataFrame,
    column: str,
    value,
    keep_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Under-sample rows where ``column == value`` (coverage bias).

    Only ``keep_fraction`` of the matching rows survive. The report's
    ``row_ids`` are the *dropped* rows, so benchmarks can verify that
    bias-aware methods notice the shrunken slice.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    matching = np.flatnonzero(frame.column(column) == value)
    n_keep = int(round(keep_fraction * len(matching)))
    kept = (
        rng.choice(matching, size=n_keep, replace=False)
        if n_keep
        else np.empty(0, np.int64)
    )
    dropped = np.setdiff1d(matching, kept)
    keep_mask = np.ones(frame.num_rows, dtype=bool)
    keep_mask[dropped] = False
    out = frame.filter(keep_mask)
    report = ErrorReport(
        kind="selection_bias",
        column=column,
        row_ids=frame.row_ids[dropped],
        original_values=[value] * len(dropped),
        params={"value": value, "keep_fraction": keep_fraction, "seed": seed},
    )
    return out, report


def inject_distribution_shift(
    frame: DataFrame,
    column: str,
    fraction: float = 0.2,
    shift: float = 3.0,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Shift a fraction of a numeric column by ``shift·σ`` (OOD values)."""
    rng = np.random.default_rng(seed)
    target = frame.column(column)
    if not target.is_numeric:
        raise TypeError(f"column {column!r} is not numeric")
    count = int(round(fraction * frame.num_rows))
    positions = (
        rng.choice(frame.num_rows, size=count, replace=False)
        if count
        else np.empty(0, np.int64)
    )
    values = target.to_numpy(fill=np.nan).astype(float)
    sigma = np.nanstd(values) or 1.0
    originals = [values[p] for p in positions]
    out = frame.copy()
    if len(positions):
        out[column] = target.set_values(positions, values[positions] + shift * sigma)
    report = ErrorReport(
        kind="distribution_shift",
        column=column,
        row_ids=frame.row_ids[positions],
        original_values=originals,
        params={"fraction": fraction, "shift": shift, "seed": seed},
    )
    return out, report


def inject_duplicates(
    frame: DataFrame, fraction: float = 0.1, seed: int = 0
) -> tuple[DataFrame, ErrorReport]:
    """Append near-duplicate copies of randomly chosen rows.

    Duplicates keep the source row's cell values but receive fresh row ids
    (max existing id + 1, ...), as a real ingestion bug would produce new
    tuples. The report lists the *new* duplicate row ids.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    count = int(round(fraction * frame.num_rows))
    if count == 0:
        return frame.copy(), ErrorReport(
            kind="duplicate", column="", row_ids=np.empty(0, np.int64),
            params={"fraction": fraction, "seed": seed},
        )
    chosen = rng.choice(frame.num_rows, size=count, replace=True)
    copies = frame.take(chosen)
    next_id = int(frame.row_ids.max()) + 1 if frame.num_rows else 0
    new_ids = np.arange(next_id, next_id + count, dtype=np.int64)
    copies.row_ids = new_ids
    out = DataFrame.concat_rows([frame, copies])
    report = ErrorReport(
        kind="duplicate",
        column="",
        row_ids=new_ids,
        original_values=frame.row_ids[chosen].tolist(),
        params={"fraction": fraction, "seed": seed},
    )
    return out, report
