"""Atomic artifact writes: no torn lines, no corrupt files after a crash."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import RunLedger, atomic_append_line, atomic_write_text, atomic_writer


class TestAtomicWriter:
    def test_replaces_target_on_clean_exit(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_writer(path) as handle:
            handle.write("new contents")
        assert path.read_text() == "new contents"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_crashed_write_is_invisible(self, tmp_path):
        """A writer that dies mid-write leaves the previous contents intact
        and no staging litter behind — the simulated partial write is
        unobservable after (the absence of) the rename."""
        path = tmp_path / "out.txt"
        path.write_text("previous")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_writer(path) as handle:
                handle.write("half of the new cont")  # partial write...
                raise RuntimeError("boom")  # ...then the crash
        assert path.read_text() == "previous"
        assert os.listdir(tmp_path) == ["out.txt"]  # no .tmp orphans

    def test_crashed_first_write_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert not path.exists()
        assert os.listdir(tmp_path) == []


class TestAtomicAppendLine:
    def test_appends_complete_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        atomic_append_line(path, '{"a": 1}')
        atomic_append_line(path, '{"b": 2}\n')  # trailing newline tolerated
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_quarantines_torn_tail_from_foreign_writer(self, tmp_path):
        """A non-atomic writer killed mid-line leaves a torn suffix; the
        next atomic append isolates it on its own line so a lenient
        line-skipping loader loses exactly one record, not the file."""
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2')  # torn: no trailing newline
        atomic_append_line(path, '{"c": 3}')
        lines = path.read_text().splitlines()
        assert lines == ['{"a": 1}', '{"b": 2', '{"c": 3}']
        parsed = []
        for line in lines:  # the lenient-loader idiom
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        assert parsed == [{"a": 1}, {"c": 3}]


class TestLedgerUsesAtomicAppend:
    def test_ledger_survives_torn_tail(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record_event("valuation", config={"seed": 1}, stats={"n": 2})
        # Simulate a foreign writer crashing mid-append.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        ledger.record_event("valuation", config={"seed": 2}, stats={"n": 3})
        records = RunLedger(path).load()
        assert len(records) == 2
        assert [r.config["seed"] for r in records] == [1, 2]
