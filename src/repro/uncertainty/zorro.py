"""Zorro: learning from uncertain data via possible-world abstraction [93].

Zhu et al. train a model not on one imputation but on the *set of all
possible worlds* of an uncertain dataset, computing a sound enclosure of
every model any world could produce. From the enclosure one reads off
prediction ranges and worst-case losses — the quantities plotted in the
paper's Figure 4.

This implementation covers ridge regression (with classification handled as
±1 least squares, as in Zorro's linear-model analysis). Writing the
uncertain matrix as ``X(ε) = X_c + Σ_j ε_j r_j U_j`` with one noise symbol
per uncertain cell, the possible models are the solutions of

    (A(ε) + λI) θ = b(ε),   A = XᵀX/n,  b = Xᵀy/n,

one per world ε ∈ [−1, 1]^m. The enclosure is computed Krawczyk-style
around the center-world solution θ_c:

    θ(ε) − θ_c = H⁻¹ [ r(ε) + (A_c − A(ε)) (θ(ε) − θ_c) ],  H = A_c + λI.

The residual ``r(ε) = b(ε) − A(ε)θ_c − λθ_c`` is affine in ε up to a small
quadratic remainder, so its linear part is tracked *exactly* through one
zonotope generator per uncertain cell; the second-order terms are folded
into a box via a fixed-point iteration that converges whenever the
uncertainty is small enough for the enclosure to be finite.

Soundness invariant (covered by tests): for any concrete completion of the
data, the exact ridge solution lies inside the returned enclosure, hence
every concrete prediction and loss lies inside the reported ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .intervals import Interval
from .symbolic import UncertainDataset
from .zonotope import Zonotope

__all__ = [
    "ZorroTrainer",
    "RobustLinearModel",
    "ridge_solve",
    "gradient_descent_train",
    "estimate_with_zorro",
]


def ridge_solve(
    X: np.ndarray, y: np.ndarray, l2: float, fit_intercept: bool = True
) -> np.ndarray:
    """Exact ridge optimum ``(XᵀX/n + λI)⁻¹ Xᵀy/n`` — the concrete
    counterpart of the abstract trainer, used for soundness checks and the
    impute-then-train baseline. The intercept is regularised too, matching
    the abstract system exactly."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if fit_intercept:
        X = np.column_stack([X, np.ones(len(X))])
    n, d = X.shape
    A = X.T @ X / n
    b = X.T @ y / n
    return np.linalg.solve(A + l2 * np.eye(d), b)


def gradient_descent_train(
    X: np.ndarray,
    y: np.ndarray,
    l2: float,
    learning_rate: float,
    n_iters: int,
    fit_intercept: bool = True,
) -> np.ndarray:
    """Plain GD on the ridge objective; converges to :func:`ridge_solve`."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if fit_intercept:
        X = np.column_stack([X, np.ones(len(X))])
    n, d = X.shape
    A = X.T @ X / n
    b = X.T @ y / n
    theta = np.zeros(d)
    for __ in range(n_iters):
        theta = theta - learning_rate * ((A + l2 * np.eye(d)) @ theta - b)
    return theta


@dataclass
class RobustLinearModel:
    """Sound enclosure of the ridge optima of all possible worlds.

    ``diverged`` is True when the uncertainty was too large for the
    fixed-point refinement to contract; the enclosure is then infinite and
    every range query reports unbounded uncertainty (the honest answer).
    """

    theta: Zonotope
    mean: np.ndarray
    scale: np.ndarray
    l2: float
    diverged: bool
    fit_intercept: bool

    def _design(self, X: Any) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        X = (X - self.mean) / self.scale
        if self.fit_intercept:
            X = np.column_stack([X, np.ones(len(X))])
        return X

    def theta_bounds(self) -> Interval:
        return self.theta.bounds()

    def predict_range(self, X: Any) -> Interval:
        """Interval of possible predictions for each test row."""
        D = self._design(X)
        if self.diverged:
            inf = np.full(len(D), np.inf)
            return Interval(-inf, inf)
        centers = D @ self.theta.center
        half = np.abs(D @ self.theta.generators.T).sum(axis=1) if len(
            self.theta.generators
        ) else np.zeros(len(D))
        half = half + np.abs(D) @ self.theta.box
        return Interval(centers - half, centers + half)

    def predict_center(self, X: Any) -> np.ndarray:
        return self._design(X) @ self.theta.center

    def squared_loss_range(self, X: Any, y: Any) -> Interval:
        """Per-test-point interval of the squared loss over all worlds."""
        y = np.asarray(y, dtype=float)
        residual = self.predict_range(X) - y
        return residual.square()

    def worst_case_loss(self, X: Any, y: Any) -> dict[str, float]:
        """Figure-4 quantities: worst-case squared loss over possible models."""
        losses = self.squared_loss_range(X, y)
        return {
            "max_worst_case_loss": float(losses.hi.max()),
            "mean_worst_case_loss": float(losses.hi.mean()),
            "mean_best_case_loss": float(losses.lo.mean()),
            "mean_center_loss": float(
                np.mean((self.predict_center(X) - np.asarray(y, float)) ** 2)
            ),
        }

    def certified_predictions(self, X: Any) -> tuple[np.ndarray, np.ndarray]:
        """Sign-certification for ±1 classification.

        Returns ``(certain, labels)``: ``certain[i]`` is True when every
        possible model assigns test point i the same sign; ``labels[i]`` is
        the center-model sign.
        """
        ranges = self.predict_range(X)
        certain = (ranges.lo > 0) | (ranges.hi < 0)
        labels = np.where(self.predict_center(X) >= 0, 1.0, -1.0)
        return certain, labels


class ZorroTrainer:
    """Possible-worlds trainer for uncertain ridge regression.

    Parameters
    ----------
    l2:
        Ridge coefficient (must be > 0: strong convexity is what makes the
        set of possible models bounded).
    max_refinements:
        Fixed-point iterations for the second-order box term.
    standardize:
        Standardise features on center-world statistics (affine, hence
        exact on intervals) before training.
    """

    def __init__(
        self,
        l2: float = 0.1,
        max_refinements: int = 100,
        fit_intercept: bool = True,
        standardize: bool = True,
        divergence_cap: float = 1e9,
    ) -> None:
        if l2 <= 0:
            raise ValueError("l2 must be positive")
        self.l2 = float(l2)
        self.max_refinements = int(max_refinements)
        self.fit_intercept = bool(fit_intercept)
        self.standardize = bool(standardize)
        self.divergence_cap = float(divergence_cap)

    def fit(self, dataset: UncertainDataset) -> RobustLinearModel:
        if self.standardize:
            dataset, mean, scale = dataset.standardized()
        else:
            mean = np.zeros(dataset.n_features)
            scale = np.ones(dataset.n_features)
        Xc = dataset.X.center
        radius = dataset.X.radius
        y = dataset.y
        n = Xc.shape[0]
        if self.fit_intercept:
            Xc = np.column_stack([Xc, np.ones(n)])
            radius = np.column_stack([radius, np.zeros(n)])
        d = Xc.shape[1]

        # One noise symbol per uncertain cell: cell (rows[j], cols[j]),
        # radius r[j]; plus one symbol per uncertain label.
        rows, cols = np.nonzero(radius > 0)
        r = radius[rows, cols]
        m = len(rows)
        label_rows = np.flatnonzero(dataset.y_radius > 0)
        label_r = dataset.y_radius[label_rows]
        m_labels = len(label_rows)

        A_c = Xc.T @ Xc / n
        b_c = Xc.T @ y / n
        H = A_c + self.l2 * np.eye(d)
        theta_c = np.linalg.solve(H, b_c)
        H_inv = np.linalg.inv(H)
        H_inv_abs = np.abs(H_inv)

        if m == 0 and m_labels == 0:
            return RobustLinearModel(
                theta=Zonotope(theta_c),
                mean=mean,
                scale=scale,
                l2=self.l2,
                diverged=False,
                fit_intercept=self.fit_intercept,
            )

        # Affine residual part, exactly per symbol.
        # Feature symbols: r_j = b_j − A_jθ_c with b_j = (r_j y_i / n) e_p
        # and A_j = (r_j/n)(e_p x̄_iᵀ + x̄_i e_pᵀ), so
        # r_j = (r_j/n) [ (y_i − x̄_i·θ_c) e_p − θ_c[p] x̄_i ].
        # Label symbols only enter b: r^y_i = (ry_i / n) x̄_i.
        t = Xc @ theta_c
        R = -((r / n) * theta_c[cols])[:, None] * Xc[rows] if m else np.zeros((0, d))
        if m:
            R[np.arange(m), cols] += r / n * (y[rows] - t[rows])
        R_labels = (
            (label_r / n)[:, None] * Xc[label_rows]
            if m_labels
            else np.zeros((0, d))
        )
        R = np.vstack([R, R_labels])
        G = R @ H_inv.T  # generator per symbol = H⁻¹ r_symbol

        # Elementwise bound D on |A_c − A(ε)|: linear part S plus quadratic
        # part Q (per-row outer products of cell radii).
        S = np.zeros((d, d))
        abs_rows = np.abs(Xc)
        for j in range(m):
            contrib = r[j] / n
            S[cols[j], :] += contrib * abs_rows[rows[j]]
            S[:, cols[j]] += contrib * abs_rows[rows[j]]
        Q = np.zeros((d, d))
        for i in np.unique(rows):
            v = np.zeros(d)
            members = rows == i
            v[cols[members]] = r[members]
            Q += np.outer(v, v)
        Q /= n
        D = S + Q

        # Quadratic remainders of the residual: the A-quadratic part
        # |r_quad| ≤ Q |θ_c| plus the feature×label bilinear part of b
        # (ε_j δ_i r_j ry_i / n at coordinate p_j when cell j sits in a
        # label-uncertain row i).
        q_r = Q @ np.abs(theta_c)
        if m and m_labels:
            label_radius_of_row = np.zeros(n)
            label_radius_of_row[label_rows] = label_r
            np.add.at(q_r, cols, r * label_radius_of_row[rows] / n)
        # Per-coordinate bound on |r(ε)| (affine part + quadratic remainder).
        r_abs = np.abs(R).sum(axis=0) + q_r

        # Guaranteed finite initial enclosure: in every world the optimum
        # satisfies ‖θ(ε)‖₂ ≤ ‖b(ε)‖₂ / λ because A(ε) is PSD (it is a Gram
        # matrix in every world). Hence ‖θ(ε) − θ_c‖₂ ≤ ‖θ_c‖₂ + B/λ.
        # Elementwise radius of b over all worlds: feature symbols put
        # (r_j y_i / n) on e_p, label symbols put (ry_i / n) x̄_i, and the
        # bilinear cross terms put (r_j ry_i / n) on e_p.
        B_abs = np.zeros(d)
        if m:
            np.add.at(B_abs, cols, np.abs(r * y[rows]) / n)
        if m_labels:
            B_abs += (label_r[:, None] * np.abs(Xc[label_rows])).sum(axis=0) / n
        if m and m_labels:
            label_radius_of_row = np.zeros(n)
            label_radius_of_row[label_rows] = label_r
            np.add.at(B_abs, cols, r * label_radius_of_row[rows] / n)
        b_sup = float(np.linalg.norm(np.abs(b_c) + B_abs))
        rho = float(np.linalg.norm(theta_c)) + b_sup / self.l2

        # Krawczyk refinement, shrinking from the ball:
        # |u| ≤ |H⁻¹| (|r(ε)| + D · |u|), taking elementwise minima so the
        # bound is monotone non-increasing (always sound, always finite).
        u_bound = np.full(d, rho)
        for __ in range(self.max_refinements):
            refined = np.minimum(u_bound, H_inv_abs @ (r_abs + D @ u_bound))
            if np.allclose(refined, u_bound, rtol=1e-9, atol=1e-12):
                u_bound = refined
                break
            u_bound = refined

        # Two sound enclosures of u = θ(ε) − θ_c:
        # (a) exact affine part (generators G) plus a box for everything
        #     second-order, |w| ≤ |H⁻¹| (q_r + D · |u|);
        # (b) the refined pure box u_bound (no correlation structure).
        # Pick whichever is tighter overall — mixing them per-coordinate
        # would not describe a valid set.
        box = H_inv_abs @ (q_r + D @ u_bound)
        g_abs = np.abs(G).sum(axis=0)
        if float((g_abs + box).sum()) <= float(u_bound.sum()):
            theta = Zonotope(theta_c, G, box)
        else:
            theta = Zonotope(theta_c, None, u_bound)
        return RobustLinearModel(
            theta=theta,
            mean=mean,
            scale=scale,
            l2=self.l2,
            diverged=False,
            fit_intercept=self.fit_intercept,
        )


def estimate_with_zorro(
    dataset: UncertainDataset,
    x_test: Any,
    y_test: Any,
    l2: float = 0.1,
    positive_label: Any = None,
) -> dict[str, float]:
    """Paper-style one-call estimate (Figure 4's ``nde.estimate_with_zorro``).

    Trains the robust model on the symbolic dataset and reports worst-case
    loss statistics on the test set. ``y_test`` may be raw labels when
    ``positive_label`` is given (they are ±1-encoded like the training side).
    """
    y_test = np.asarray(y_test)
    if positive_label is not None:
        y_test = np.asarray([1.0 if v == positive_label else -1.0 for v in y_test])
    model = ZorroTrainer(l2=l2).fit(dataset)
    report = model.worst_case_loss(np.asarray(x_test, float), y_test.astype(float))
    certain, __ = model.certified_predictions(np.asarray(x_test, float))
    report["certified_fraction"] = float(np.mean(certain))
    report["diverged"] = float(model.diverged)
    return report
