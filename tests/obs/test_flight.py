"""Flight recorder: bounded ring, atomic dumps, fork hygiene."""

from __future__ import annotations

import json
import os

from repro.obs import flight as obs_flight
from repro.obs.flight import FLIGHT_SCHEMA_VERSION, FlightRecorder


def read_dump(path):
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    return lines[0], lines[1:]


class TestRing:
    def test_record_and_snapshot(self):
        rec = FlightRecorder()
        rec.record("supervision.crash", slot=1, chunk=4)
        events = rec.snapshot()
        assert len(rec) == 1
        assert events[0]["kind"] == "supervision.crash"
        assert events[0]["slot"] == 1 and events[0]["chunk"] == 4
        assert events[0]["seq"] == 0 and "ts" in events[0]

    def test_ring_is_bounded_and_keeps_newest(self):
        rec = FlightRecorder(capacity=8)
        for i in range(50):
            rec.record("e", i=i)
        events = rec.snapshot()
        assert len(events) == 8
        assert [e["i"] for e in events] == list(range(42, 50))
        assert events[-1]["seq"] == 49  # seq keeps counting past evictions

    def test_configure_resize_preserves_tail(self):
        rec = FlightRecorder(capacity=4)
        for i in range(4):
            rec.record("e", i=i)
        rec.configure(capacity=2)
        assert [e["i"] for e in rec.snapshot()] == [2, 3]

    def test_clear_empties_ring(self):
        rec = FlightRecorder()
        rec.record("e")
        rec.clear()
        assert len(rec) == 0

    def test_record_span_extracts_name_and_attrs(self):
        rec = FlightRecorder()
        rec.record_span(
            "worker[2]",
            {"name": "worker.chunk", "attrs": {"chunk": 3}, "duration": 0.1},
        )
        event = rec.snapshot()[0]
        assert event["kind"] == "span"
        assert event["origin"] == "worker[2]"
        assert event["name"] == "worker.chunk"
        assert event["attrs"] == {"chunk": 3}


class TestDump:
    def test_dump_writes_header_then_events(self, tmp_path):
        rec = FlightRecorder()
        rec.record("a", x=1)
        rec.record("b", y=2)
        path = tmp_path / "flight.jsonl"
        assert rec.dump(path, reason="test") == 2
        header, events = read_dump(path)
        assert header["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert header["kind"] == "flight_dump"
        assert header["reason"] == "test"
        assert header["n_events"] == 2
        assert [e["kind"] for e in events] == ["a", "b"]

    def test_dump_serializes_unjsonable_payloads_via_repr(self, tmp_path):
        rec = FlightRecorder()
        rec.record("weird", obj=object())
        path = tmp_path / "flight.jsonl"
        rec.dump(path)
        _, events = read_dump(path)
        assert "object object" in events[0]["obj"]

    def test_auto_dump_noop_when_unconfigured(self):
        rec = FlightRecorder()
        rec.record("e")
        assert rec.auto_dump("crash") is None

    def test_auto_dump_noop_when_ring_empty(self, tmp_path):
        rec = FlightRecorder()
        rec.configure(dump_dir=tmp_path)
        assert rec.auto_dump("crash") is None

    def test_auto_dump_writes_into_configured_dir(self, tmp_path):
        rec = FlightRecorder()
        rec.configure(dump_dir=tmp_path / "dumps")
        rec.record("supervision.crash", chunk=7)
        path = rec.auto_dump("worker-crash")
        assert path is not None and os.path.exists(path)
        assert os.path.dirname(path) == str(tmp_path / "dumps")
        header, events = read_dump(path)
        assert header["reason"] == "worker-crash"
        assert events[0]["chunk"] == 7

    def test_auto_dump_sanitizes_reason_and_numbers_files(self, tmp_path):
        rec = FlightRecorder()
        rec.configure(dump_dir=tmp_path)
        rec.record("e")
        first = rec.auto_dump("bad/reason with spaces")
        rec.record("e")
        second = rec.auto_dump("bad/reason with spaces")
        assert "/" not in os.path.basename(first).replace("flight-", "", 1)
        assert "bad-reason-with-spaces" in first
        assert first != second  # counter keeps dumps distinct


class TestForkHygiene:
    def test_inherited_ring_starts_fresh_in_child(self):
        rec = FlightRecorder()
        rec.record("parent-event")
        # Simulate a fork: the recorded pid no longer matches the process.
        rec._pid = rec._pid - 1
        assert len(rec) == 0  # guard fired, parent history gone
        rec.record("child-event")
        events = rec.snapshot()
        assert [e["kind"] for e in events] == ["child-event"]
        assert events[0]["seq"] == 0


class TestModuleFacade:
    def test_module_functions_hit_the_singleton(self, tmp_path):
        obs_flight.configure(dump_dir=tmp_path)
        obs_flight.record("facade", n=1)
        assert any(
            e["kind"] == "facade" for e in obs_flight.flight_recorder().snapshot()
        )
        path = obs_flight.auto_dump("facade-test")
        assert path is not None and os.path.exists(path)
