"""ASCII rendering of a cross-run comparison (:class:`repro.obs.diff.RunDiff`).

Two tables: the per-node overview (rows, latency, worst column drift) and
the alert table — the thing an operator reads first when a nightly run
regresses. Consumed by ``RunDiff.render()`` and the monitoring example.
"""

from __future__ import annotations

from typing import Any

from .table import format_records

__all__ = ["format_run_diff"]


def _fmt_latency(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def format_run_diff(diff: Any) -> str:
    """Render a ``RunDiff`` as node-overview + alert tables."""
    lines = [f"run diff: {diff.run_a} → {diff.run_b}"]
    if diff.wall_time_a_s is not None and diff.wall_time_b_s is not None:
        lines[0] += (
            f"  (wall {_fmt_latency(diff.wall_time_a_s)}"
            f" → {_fmt_latency(diff.wall_time_b_s)})"
        )
    if diff.nodes:
        node_rows = []
        for key in sorted(diff.nodes, key=lambda k: diff.nodes[k].score, reverse=True):
            node = diff.nodes[key]
            worst = node.worst_column()
            node_rows.append(
                {
                    "node": key,
                    "rows": f"{node.rows_a}→{node.rows_b}"
                    if node.rows_a != node.rows_b
                    else str(node.rows_a),
                    "latency": f"{_fmt_latency(node.latency_a_s)}→"
                    f"{_fmt_latency(node.latency_b_s)}",
                    "drift": f"{node.score:.2f}",
                    "worst column": (
                        f"{worst.column} ({worst.score:.2f})" if worst else "-"
                    ),
                }
            )
        lines += ["", format_records(node_rows)]
    if diff.alerts:
        alert_rows = [
            {
                "severity": alert.severity,
                "kind": alert.kind,
                "node": alert.node,
                "column": alert.column or "-",
                "metric": alert.metric,
                "value": f"{alert.value:.3f}",
                "threshold": f"{alert.threshold:.3f}",
            }
            for alert in diff.alerts
        ]
        lines += [
            "",
            f"{len(diff.alerts)} alert(s):",
            format_records(alert_rows),
        ]
        lines += [""] + [f"  ! {alert.message}" for alert in diff.alerts]
    else:
        lines += ["", "no drift alerts"]
    return "\n".join(lines)
