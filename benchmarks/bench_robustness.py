"""Ablation — certified robustness vs clean accuracy (partition ensembles).

The survey's Learn part cites intrinsic certified robustness of ensembles
(Jia et al. [32]): more partitions certify larger poisoning budgets but each
base model sees less data. This bench sweeps the partition count and
reports clean accuracy alongside certified accuracy at several budgets.
Shapes to reproduce: certified accuracy is monotone non-increasing in the
budget for every ensemble, and the maximum certifiable budget grows with
the partition count.
"""

from repro.datasets import make_classification
from repro.learn import LogisticRegression
from repro.robust import PartitionEnsemble, SmoothedClassifier
from repro.viz import format_records

PARTITIONS = [3, 7, 15, 31]
BUDGETS = [0, 1, 3, 6]


def run_sweep() -> dict:
    X, y = make_classification(n=700, n_features=4, seed=4)
    Xtr, ytr = X[:550], y[:550]
    Xv, yv = X[550:], y[550:]
    rows = []
    for k in PARTITIONS:
        ensemble = PartitionEnsemble(
            LogisticRegression(max_iter=40), n_partitions=k, seed=0
        ).fit(Xtr, ytr)
        row = {"partitions": k, "clean_accuracy": round(ensemble.score(Xv, yv), 4)}
        for budget in BUDGETS:
            row[f"certified@{budget}"] = round(
                ensemble.certified_accuracy(Xv, yv, budget), 4
            )
        rows.append(row)

    smoothed = SmoothedClassifier(
        LogisticRegression(max_iter=40), noise=0.3, n_samples=15, seed=0
    ).fit(Xtr, ytr)
    certs = smoothed.certified_predict(Xv)
    smoothing_row = {
        "accuracy": round(smoothed.score(Xv, yv), 4),
        "mean_certified_flips": round(
            sum(c.certified_flips for c in certs) / len(certs), 3
        ),
    }
    return {"rows": rows, "smoothing": smoothing_row}


def test_robustness_tradeoff(benchmark, write_report):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report = format_records(result["rows"])
    report += (
        "\n\nrandomized smoothing (noise=0.3): "
        f"accuracy {result['smoothing']['accuracy']}, mean certified flips "
        f"{result['smoothing']['mean_certified_flips']}"
    )
    write_report("robustness_certification", report)

    for row in result["rows"]:
        certified = [row[f"certified@{b}"] for b in BUDGETS]
        assert all(b <= a + 1e-12 for a, b in zip(certified, certified[1:]))
        assert certified[0] <= row["clean_accuracy"] + 1e-12
    # Larger ensembles certify non-trivial budgets that small ones cannot.
    assert result["rows"][-1][f"certified@{BUDGETS[-1]}"] > 0.0
    assert result["rows"][0][f"certified@{BUDGETS[-1]}"] == 0.0
    assert result["smoothing"]["mean_certified_flips"] > 0.0
