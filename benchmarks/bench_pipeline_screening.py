"""Experiment T-screen — ArgusEyes-style screening catches injected issues.

Section 2.2 presents ArgusEyes: a CI system screening pipelines for data
leakage, label errors, and distribution problems. This bench injects each
issue class into the letters pipeline and reports the screening verdicts.
Shape to reproduce: the clean pipeline passes; each corrupted variant is
flagged by the matching check.
"""

from repro.datasets import generate_hiring_data
from repro.errors import inject_label_errors, inject_typos
from repro.frame import DataFrame
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import PipelinePlan, PipelineScreener, execute
from repro.text import SentenceBertTransformer
from repro.viz import format_records


def build_sink(join_on_name: bool = False):
    plan = PipelinePlan()
    train = plan.source("train_df")
    jobs = plan.source("jobdetail_df")
    social = plan.source("social_df")
    encoder = ColumnTransformer(
        [
            (SentenceBertTransformer(n_features=16), "letter_text"),
            (Pipeline([CellImputer(), OneHotEncoder()]), "degree"),
            (StandardScaler(), ["age", "employer_rating"]),
        ]
    )
    joined = train.join(jobs, on="job_id")
    joined = joined.join(social, on="name" if join_on_name else "person_id")
    return joined.encode(encoder, label_column="sentiment")


def run_screening() -> list[dict]:
    data = generate_hiring_data(n=500, seed=3)
    train, test = split_frame(data["letters"], fractions=(0.8, 0.2), seed=0)
    social_with_name = data["social"].copy()
    social_with_name["name"] = data["letters"]["name"]

    screener = PipelineScreener(
        protected_columns=["race"],
        side_sources=["social_df"],
        fail_at="warning",
    )

    scenarios = []

    def screen(name: str, sources: dict, test_frame=None) -> None:
        sink = build_sink(join_on_name=("name" in sources["social_df"].columns))
        result = execute(sink, sources)
        report = screener.screen(
            result,
            source_frames={"train_df": sources["train_df"]},
            test_frame=test_frame,
            test_source="train_df" if test_frame is not None else None,
        )
        scenarios.append(
            {
                "scenario": name,
                "passed": report.passed,
                "issues": "; ".join(i.check for i in report.issues) or "none",
            }
        )

    base_sources = {
        "train_df": train,
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }
    screen("clean pipeline", base_sources)

    dirty_labels, __ = inject_label_errors(train, "sentiment", fraction=0.3, seed=1)
    screen("30% label errors", dict(base_sources, train_df=dirty_labels))

    leaky = DataFrame.concat_rows([train, test.head(30)])
    screen("test rows leaked into training", dict(base_sources, train_df=leaky),
           test_frame=test)

    broken_social, __ = inject_typos(social_with_name, "name", fraction=0.6, seed=2)
    screen(
        "typo-broken join keys",
        dict(base_sources, social_df=broken_social),
    )
    return scenarios


def test_pipeline_screening(benchmark, write_report):
    scenarios = benchmark.pedantic(run_screening, rounds=1, iterations=1)
    report = format_records(scenarios)
    write_report("pipeline_screening", report)

    verdicts = {row["scenario"]: row for row in scenarios}
    assert verdicts["clean pipeline"]["passed"] is not False or (
        "missing_values" in verdicts["clean pipeline"]["issues"]
    )
    assert not verdicts["30% label errors"]["passed"]
    assert "label_errors" in verdicts["30% label errors"]["issues"]
    assert not verdicts["test rows leaked into training"]["passed"]
    assert "train_test_overlap" in verdicts["test rows leaked into training"]["issues"]
    assert not verdicts["typo-broken join keys"]["passed"]
    assert "join_match_rate" in verdicts["typo-broken join keys"]["issues"]
