"""Ablation — stochastic amortization of Shapley values (Covert et al. [14]).

The "model-based estimation" speed-up: train a regressor on noisy MC
Shapley labels for a subset, predict importance everywhere. This bench
compares, at a fixed retraining budget, (a) raw MC values, (b) amortized
values trained on half the points' labels, and (c) the exact-KNN-Shapley
reference ranking, on label-error detection quality. Shape to reproduce:
amortization matches or beats the raw noisy MC values it was trained on
(the regression smooths the noise) and covers unlabelled points.
"""

import numpy as np
from scipy.stats import spearmanr

from repro.datasets import make_classification
from repro.importance import (
    ImportanceResult,
    Utility,
    amortized_shapley,
    knn_shapley,
)
from repro.learn import LogisticRegression
from repro.viz import format_records

N_TRAIN, N_VALID, N_ERRORS = 120, 60, 18


def run_comparison() -> dict:
    rng = np.random.default_rng(5)
    X, y = make_classification(n=N_TRAIN + N_VALID, n_features=4, seed=5)
    Xtr, ytr = X[:N_TRAIN], y[:N_TRAIN].copy()
    Xv, yv = X[N_TRAIN:], y[N_TRAIN:]
    flipped = rng.choice(N_TRAIN, size=N_ERRORS, replace=False)
    ytr[flipped] = 1 - ytr[flipped]
    mask = np.zeros(N_TRAIN, dtype=bool)
    mask[flipped] = True

    utility = Utility(LogisticRegression(max_iter=50), Xtr, ytr, Xv, yv)
    amortized = amortized_shapley(
        utility, n_labelled=N_TRAIN // 2, n_permutations=8, seed=0
    )
    raw_mc = ImportanceResult("raw_mc", amortized.extras["mc_values"])
    reference = knn_shapley(Xtr, ytr, Xv, yv, k=5)

    rows = []
    for name, result in (
        ("raw MC (8 perms)", raw_mc),
        ("amortized (labels on 50%)", amortized),
        ("exact KNN-Shapley (reference)", reference),
    ):
        rho, __ = spearmanr(result.values, reference.values)
        rows.append(
            {
                "estimator": name,
                "precision@18": result.detection_precision_at_k(mask, N_ERRORS),
                "rank_corr_vs_reference": round(float(rho), 3),
            }
        )
    return {"rows": rows, "retrainings": utility.n_evaluations}


def test_amortization(benchmark, write_report):
    result = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report = format_records(result["rows"])
    report += f"\n\nretraining budget consumed: {result['retrainings']}"
    write_report("amortization", report)

    by_name = {r["estimator"]: r for r in result["rows"]}
    amortized = by_name["amortized (labels on 50%)"]
    raw = by_name["raw MC (8 perms)"]
    # The amortizer must not be drastically worse than its own training
    # labels, and must clearly beat the 15% random base rate.
    assert amortized["precision@18"] >= raw["precision@18"] - 0.15
    assert amortized["precision@18"] > 0.3
