"""Gaussian naive Bayes classifier."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..base import Estimator, check_matrix, check_xy

__all__ = ["GaussianNB"]


class GaussianNB(Estimator):
    """Gaussian naive Bayes with variance smoothing.

    Cheap to retrain, which makes it a convenient utility model inside
    Monte-Carlo Shapley loops when KNN's inductive bias is a poor fit.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = float(var_smoothing)

    def fit(self, X: Any, y: Any) -> "GaussianNB":
        X, y = check_xy(X, y)
        self.classes_ = np.unique(y)
        n_classes, n_features = len(self.classes_), X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        global_var = X.var(axis=0).max() if len(X) > 1 else 1.0
        eps = self.var_smoothing * max(global_var, 1e-12)
        for j, cls in enumerate(self.classes_):
            members = X[y == cls]
            self.theta_[j] = members.mean(axis=0)
            self.var_[j] = members.var(axis=0) + eps
            self.class_prior_[j] = len(members) / len(X)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((len(X), len(self.classes_)))
        for j in range(len(self.classes_)):
            log_prob = -0.5 * (
                np.log(2.0 * np.pi * self.var_[j])
                + (X - self.theta_[j]) ** 2 / self.var_[j]
            ).sum(axis=1)
            jll[:, j] = log_prob + np.log(max(self.class_prior_[j], 1e-12))
        return jll

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        jll = self._joint_log_likelihood(check_matrix(X))
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        jll = self._joint_log_likelihood(check_matrix(X))
        return self.classes_[np.argmax(jll, axis=1)]
