"""Tests for certain predictions, certain models, and dataset multiplicity."""

import numpy as np
import pytest

from repro.datasets import make_blobs, make_classification, make_regression
from repro.learn import KNeighborsClassifier, LogisticRegression
from repro.uncertainty import (
    approximately_certain_model,
    certain_model_regression,
    certain_model_svm,
    certain_prediction,
    certain_prediction_report,
    cpclean_order,
    distance_intervals,
    from_matrix_with_nans,
    knn_flip_robustness,
    sampled_multiplicity,
)


@pytest.fixture(scope="module")
def incomplete_task():
    X, y = make_classification(n=80, n_features=3, seed=5)
    rng = np.random.default_rng(2)
    Xm = X.copy()
    Xm[rng.random(X.shape) < 0.06] = np.nan
    return from_matrix_with_nans(Xm, y.astype(float)), X, y


class TestCertainPredictions:
    def test_no_missing_everything_certain(self):
        X, y = make_classification(n=40, seed=6)
        ds = from_matrix_with_nans(X, y.astype(float))
        report = certain_prediction_report(ds, X[:10], k=3)
        assert report.certain_fraction == 1.0
        model = KNeighborsClassifier(3).fit(X, y)
        assert np.array_equal(report.labels.astype(int), model.predict(X[:10]))

    def test_certainty_sound_against_sampled_worlds(self, incomplete_task):
        """No sampled world may contradict a 'certain' verdict."""
        ds, X, y = incomplete_task
        report = certain_prediction_report(ds, X[:25], k=3)
        for seed in range(25):
            world = ds.sample_world(seed)
            predictions = KNeighborsClassifier(3).fit(world, y).predict(X[:25])
            disagree = (predictions != report.labels.astype(int)) & report.certain
            assert not disagree.any()

    def test_corner_worlds_respect_certainty(self, incomplete_task):
        ds, X, y = incomplete_task
        report = certain_prediction_report(ds, X[:25], k=3)
        for world in (ds.X.lo, ds.X.hi):
            predictions = KNeighborsClassifier(3).fit(world, y).predict(X[:25])
            disagree = (predictions != report.labels.astype(int)) & report.certain
            assert not disagree.any()

    def test_heavy_missingness_reduces_certainty(self):
        X, y = make_classification(n=60, n_features=3, seed=7)
        rng = np.random.default_rng(0)
        light = X.copy()
        light[rng.random(X.shape) < 0.02] = np.nan
        heavy = X.copy()
        heavy[rng.random(X.shape) < 0.4] = np.nan
        frac_light = certain_prediction_report(
            from_matrix_with_nans(light, y.astype(float)), X[:20], k=3
        ).certain_fraction
        frac_heavy = certain_prediction_report(
            from_matrix_with_nans(heavy, y.astype(float)), X[:20], k=3
        ).certain_fraction
        assert frac_heavy <= frac_light

    def test_accuracy_bounds_bracket_truth(self, incomplete_task):
        ds, X, y = incomplete_task
        report = certain_prediction_report(ds, X[:25], k=3)
        worst, best = report.accuracy_bounds(y[:25])
        assert 0.0 <= worst <= best <= 1.0
        world_acc = float(
            np.mean(
                KNeighborsClassifier(3).fit(ds.sample_world(0), y).predict(X[:25])
                == y[:25]
            )
        )
        assert worst - 1e-9 <= world_acc <= best + 1e-9

    def test_distance_intervals_contain_true_distance(self, incomplete_task):
        ds, X, __ = incomplete_task
        query = X[0]
        intervals = distance_intervals(ds, query)
        world = ds.sample_world(1)
        true_sq = ((world - query) ** 2).sum(axis=1)
        assert np.all(true_sq >= intervals.lo - 1e-9)
        assert np.all(true_sq <= intervals.hi + 1e-9)

    def test_cpclean_order_prioritises_incomplete_rows(self, incomplete_task):
        ds, X, __ = incomplete_task
        order = cpclean_order(ds, X[:20], k=3)
        incomplete = ds.uncertain_cells.any(axis=1)
        n_incomplete = int(incomplete.sum())
        assert incomplete[order[:n_incomplete]].all()


class TestCertainModels:
    def test_regression_no_missing_certain(self):
        X, y, __ = make_regression(n=30, seed=1)
        verdict = certain_model_regression(X, y)
        assert verdict.certain

    def test_regression_irrelevant_missing_feature_certain(self):
        X = np.asarray([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 0.0]])
        y = 2.0 * X[:, 0]  # feature 1 irrelevant
        X_nan = X.copy()
        X_nan[3, 1] = np.nan
        verdict = certain_model_regression(X_nan, y)
        assert verdict.certain
        assert verdict.theta is not None

    def test_regression_relevant_missing_feature_uncertain(self):
        X = np.asarray([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 0.0]])
        y = 2.0 * X[:, 0]
        X_nan = X.copy()
        X_nan[3, 0] = np.nan  # missing feature has weight 2
        assert not certain_model_regression(X_nan, y).certain

    def test_regression_noisy_complete_rows_uncertain(self):
        X, y, __ = make_regression(n=40, noise=0.5, seed=2)
        X_nan = X.copy()
        X_nan[0, 0] = np.nan
        assert not certain_model_regression(X_nan, y).certain

    def test_regression_all_rows_missing_uncertain(self):
        X = np.full((3, 2), np.nan)
        assert not certain_model_regression(X, np.zeros(3)).certain

    def test_certain_verdict_never_contradicted_by_worlds(self):
        """When the checker says certain, sampled completions must agree on
        the optimum."""
        X = np.asarray([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 0.0], [0.5, 2.0]])
        y = 3.0 * X[:, 0]
        X_nan = X.copy()
        X_nan[4, 1] = np.nan
        verdict = certain_model_regression(X_nan, y)
        if verdict.certain:
            rng = np.random.default_rng(0)
            for __ in range(10):
                world = X_nan.copy()
                world[4, 1] = rng.uniform(-3, 3)
                theta, *rest = np.linalg.lstsq(world, y, rcond=None)
                assert np.allclose(theta, verdict.theta, atol=1e-6)

    def test_svm_separated_incomplete_rows_certain(self):
        X, y = make_blobs(n=60, centers=2, spread=0.3, seed=3)
        X_nan = X.copy()
        # Blank a cell in a row deep inside its cluster: the margin interval
        # stays above 1 only if the column range keeps it non-support; use a
        # tight synthetic case instead.
        X_tight = np.vstack([X, [[100.0, 100.0]]])
        y_tight = np.append(y, 1)
        X_tight_nan = X_tight.copy()
        X_tight_nan[-1, 0] = np.nan
        verdict = certain_model_svm(X_tight_nan, np.where(y_tight == 1, 1.0, -1.0))
        assert verdict.certain in (True, False)  # structural smoke check

    def test_svm_no_missing_certain(self):
        X, y = make_blobs(n=40, centers=2, spread=0.4, seed=4)
        verdict = certain_model_svm(X, np.where(y == 1, 1.0, -1.0))
        assert verdict.certain

    def test_svm_single_class_complete_rows_uncertain(self):
        X = np.asarray([[0.0, 0.0], [1.0, 1.0], [2.0, np.nan]])
        y = np.asarray([1.0, 1.0, -1.0])
        assert not certain_model_svm(X, y).certain

    def test_approximate_certainty_gap_bound_sound(self):
        """The gap bound must dominate the true gap in sampled worlds."""
        X, y, __ = make_regression(n=60, n_features=3, noise=0.2, seed=5)
        X_nan = X.copy()
        X_nan[:3, 0] = np.nan
        ds = from_matrix_with_nans(X_nan, y)
        verdict = approximately_certain_model(ds, l2=0.5, epsilon=1e9)
        theta = verdict.theta
        n = len(y)
        for seed in range(10):
            world = ds.sample_world(seed)

            # Ridge objective used by the checker: ½‖Xθ−y‖²/n + ½λ‖θ‖².
            def objective(t):
                return float(0.5 * np.mean((world @ t - y) ** 2) + 0.25 * (t @ t))

            A = world.T @ world / n + 0.5 * np.eye(3)
            best = np.linalg.solve(A, world.T @ y / n)
            gap = objective(theta) - objective(best)
            assert gap <= verdict.gap_bound + 1e-6

    def test_approximate_certainty_tight_when_no_missing(self):
        X, y, __ = make_regression(n=40, seed=6)
        ds = from_matrix_with_nans(X, y)
        verdict = approximately_certain_model(ds, l2=0.5, epsilon=1e-6)
        assert verdict.certain
        assert verdict.gap_bound == pytest.approx(0.0, abs=1e-9)

    def test_invalid_l2_raises(self):
        X, y, __ = make_regression(n=20, seed=7)
        with pytest.raises(ValueError):
            approximately_certain_model(from_matrix_with_nans(X, y), l2=0.0)


class TestMultiplicity:
    def test_zero_budget_all_robust(self, binary_data):
        Xtr, ytr, Xv, __ = binary_data
        robust, labels = knn_flip_robustness(Xtr, ytr, Xv, k=5, flip_budget=0)
        assert robust.all()
        model = KNeighborsClassifier(5).fit(Xtr, ytr)
        assert np.array_equal(labels, model.predict(Xv))

    def test_robustness_decreases_with_budget(self, binary_data):
        Xtr, ytr, Xv, __ = binary_data
        fractions = []
        for budget in (0, 1, 2, 5):
            robust, __ = knn_flip_robustness(Xtr, ytr, Xv, k=5, flip_budget=budget)
            fractions.append(robust.mean())
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_unanimous_vote_margin_rule(self):
        """5-0 vote: two flips leave 3-2 (still robust); three leave 2-3."""
        Xtr = np.asarray([[0.0]] * 5 + [[10.0]] * 5)
        ytr = np.asarray([0] * 5 + [1] * 5)
        robust, __ = knn_flip_robustness(Xtr, ytr, np.asarray([[0.0]]), k=5, flip_budget=2)
        assert robust[0]
        robust3, __ = knn_flip_robustness(Xtr, ytr, np.asarray([[0.0]]), k=5, flip_budget=3)
        assert not robust3[0]

    def test_flip_certificate_sound_against_adversarial_flip(self, binary_data):
        """For robust points, flipping any single top-k neighbour's label
        must not change the prediction."""
        Xtr, ytr, Xv, __ = binary_data
        robust, labels = knn_flip_robustness(Xtr, ytr, Xv[:10], k=3, flip_budget=1)
        model = KNeighborsClassifier(3).fit(Xtr, ytr)
        __, neighbors = model.kneighbors(Xv[:10])
        for t in range(10):
            if not robust[t]:
                continue
            for neighbor in neighbors[t]:
                y_flip = ytr.copy()
                y_flip[neighbor] = 1 - y_flip[neighbor]
                flipped_prediction = (
                    KNeighborsClassifier(3).fit(Xtr, y_flip).predict(Xv[t : t + 1])[0]
                )
                assert flipped_prediction == labels[t]

    def test_negative_budget_raises(self, binary_data):
        Xtr, ytr, Xv, __ = binary_data
        with pytest.raises(ValueError):
            knn_flip_robustness(Xtr, ytr, Xv, flip_budget=-1)

    def test_sampled_multiplicity_profile(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        profile = sampled_multiplicity(
            LogisticRegression(max_iter=40), Xtr, ytr, Xv, yv,
            flip_budget=8, n_worlds=8, seed=0,
        )
        assert profile.predictions.shape == (8, len(Xv))
        assert 0.0 <= profile.robust_fraction <= 1.0
        low, high = profile.accuracy_range
        assert low <= high

    def test_sampled_multiplicity_zero_flips_unanimous(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        profile = sampled_multiplicity(
            LogisticRegression(max_iter=40), Xtr, ytr, Xv, yv,
            flip_budget=0, n_worlds=4, seed=0,
        )
        assert profile.robust_fraction == 1.0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            sampled_multiplicity(
                LogisticRegression(), np.zeros((4, 2)), np.zeros(4), np.zeros((2, 2))
            )
