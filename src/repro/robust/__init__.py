"""Certified robust learning against adversarial data errors.

The "Learn" pillar's defences when errors are adversarial rather than
random: partition-aggregation certificates against poisoning (Jia et al.
[32]) and randomized-smoothing certificates against label flips (Rosenfeld
et al. [70]).
"""

from .partition import CertifiedPrediction, PartitionEnsemble
from .smoothing import SmoothedClassifier

__all__ = ["CertifiedPrediction", "PartitionEnsemble", "SmoothedClassifier"]
