"""Worker supervision for the valuation engine's chunk fan-out.

The engine's original fan-out was a bare ``multiprocessing.Pool.map``: one
crashed worker (a segfault in a native kernel, an OOM kill, an injected
``os._exit``) tears down the whole valuation run, and one hung worker (a
stuck I/O call, a pathological retraining) blocks it forever. Both failure
modes are routine at the scale the Identify track runs at — thousands of
model retrainings across long-lived processes — and both are *recoverable*,
because the engine's chunks are deterministic: every chunk is a slice of
pre-drawn permutation orderings (or subset keys), so re-executing it on a
fresh worker reproduces the same floats.

:class:`ChunkDispatcher` is the supervised replacement. Each worker is a
forked process joined to the driver by a dedicated pipe; the driver assigns
one chunk at a time and watches for three signals:

- a **result** on the pipe — the chunk is done; its latency feeds the
  deadline estimator;
- a **crash** — the pipe hits EOF or the process stops being alive; the
  worker is restarted (a fresh fork inherits the driver's current state)
  and the in-flight chunk is re-queued;
- a **hang** — the chunk exceeds its deadline, derived from observed
  chunk-latency quantiles (:class:`DeadlinePolicy`); the worker is killed,
  restarted, and the chunk re-queued.

A chunk that fails more than ``max_chunk_retries`` times raises
:class:`ChunkFailure` (supervision cannot save a deterministically crashing
chunk), and total restarts are capped by ``max_worker_restarts`` so a
crash-looping fleet fails loudly instead of forking forever. Results are
returned in chunk order, so the engine's merge — and therefore the returned
values — stays bit-identical to serial execution whatever crashed, hung, or
was retried along the way.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from typing import Any, Callable, Sequence

import numpy as np

from ..obs import flight as _obs_flight
from ..obs import trace as _obs_trace

__all__ = [
    "ChunkFailure",
    "DeadlinePolicy",
    "SupervisionStats",
    "ChunkDispatcher",
]

#: Message sent to a worker to make it exit its task loop cleanly.
_SHUTDOWN = None

#: How long the driver sleeps in :func:`multiprocessing.connection.wait`
#: between liveness/deadline sweeps. Small enough that hang detection is
#: prompt, large enough that a healthy fleet burns no measurable CPU.
_POLL_INTERVAL_S = 0.02


class ChunkFailure(RuntimeError):
    """A chunk kept failing after exhausting its retry budget."""


@dataclass
class SupervisionStats:
    """Counters accumulated by a dispatcher (and, across runs, an engine)."""

    chunks_completed: int = 0
    worker_restarts: int = 0
    chunk_retries: int = 0
    crashes: int = 0
    hangs: int = 0
    events: list[dict] = field(default_factory=list)

    def merge(self, other: "SupervisionStats") -> None:
        self.chunks_completed += other.chunks_completed
        self.worker_restarts += other.worker_restarts
        self.chunk_retries += other.chunk_retries
        self.crashes += other.crashes
        self.hangs += other.hangs
        self.events.extend(other.events)

    def to_dict(self) -> dict:
        return {
            "chunks_completed": self.chunks_completed,
            "worker_restarts": self.worker_restarts,
            "chunk_retries": self.chunk_retries,
            "crashes": self.crashes,
            "hangs": self.hangs,
        }


class DeadlinePolicy:
    """Per-chunk deadline from observed chunk-latency quantiles.

    With no samples there is no basis for declaring a hang, so the policy
    abstains (``deadline() is None``) until ``min_samples`` chunk latencies
    have been observed; after that a chunk is declared hung once it runs
    longer than ``factor`` times the ``quantile`` of the recent latency
    window, floored at ``floor_s`` to keep micro-chunks from tripping on
    scheduler jitter. An explicit ``hard_timeout_s`` overrides the adaptive
    estimate entirely — the knob tests and impatient callers use.
    """

    def __init__(
        self,
        hard_timeout_s: float | None = None,
        factor: float = 8.0,
        quantile: float = 0.95,
        min_samples: int = 3,
        floor_s: float = 0.25,
        window: int = 256,
    ) -> None:
        if hard_timeout_s is not None and hard_timeout_s <= 0:
            raise ValueError("hard_timeout_s must be positive (or None)")
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        self.hard_timeout_s = hard_timeout_s
        self.factor = float(factor)
        self.quantile = float(quantile)
        self.min_samples = int(min_samples)
        self.floor_s = float(floor_s)
        self.samples: deque[float] = deque(maxlen=int(window))

    def observe(self, latency_s: float) -> None:
        self.samples.append(float(latency_s))

    def deadline(self) -> float | None:
        """Seconds a chunk may run before being declared hung (None = never)."""
        if self.hard_timeout_s is not None:
            return self.hard_timeout_s
        if len(self.samples) < self.min_samples:
            return None
        estimate = float(np.quantile(np.asarray(self.samples), self.quantile))
        return max(self.floor_s, self.factor * estimate)


def _worker_main(conn, state: dict, task_fn: Callable[[dict, Any], Any]) -> None:
    """Task loop run inside each forked worker.

    ``state`` and ``task_fn`` arrive by fork inheritance (no pickling), so
    utilities may hold arbitrary closures. Messages are
    ``(chunk_id, chunk_ord, attempt, payload)``; replies are
    ``(chunk_id, result)`` — or ``(chunk_id, result, telemetry_delta)``
    when telemetry is on, piggybacking the worker's spans and metric
    deltas on the result pipe for the driver to merge. Telemetry engages
    when tracing was enabled at fork time or the payload carries a
    ``"telemetry"`` flag (how spawn-mode pool workers, which share no
    globals with the driver, learn tracing is on). Any exception inside a
    task is deliberately *not* caught: an exception here is a bug in
    deterministic engine code, and the resulting abnormal exit is exactly
    what the driver supervises.
    """
    chaos = state.get("chaos")
    capture: _obs_trace.WorkerTelemetry | None = None
    while True:
        message = conn.recv()
        if message is _SHUTDOWN:
            conn.close()
            return
        chunk_id, chunk_ord, attempt, payload = message
        if chaos is not None:
            # Injected worker-level faults (crash via os._exit, hang via
            # sleep) for end-to-end supervision testing.
            chaos.apply_worker_fault(chunk_ord, attempt)
        want_telemetry = (
            capture is not None
            or _obs_trace.enabled()
            or (isinstance(payload, dict) and bool(payload.get("telemetry")))
        )
        if not want_telemetry:
            conn.send((chunk_id, task_fn(state, payload)))
            continue
        if capture is None:
            capture = _obs_trace.WorkerTelemetry(enable_tracing=True)
        attrs: dict[str, Any] = {"chunk": chunk_ord, "attempt": attempt}
        if isinstance(payload, dict) and "kind" in payload:
            attrs["kind"] = payload["kind"]
        with _obs_trace.span("worker.chunk", **attrs):
            result = task_fn(state, payload)
        conn.send((chunk_id, result, capture.collect()))


@dataclass
class _Worker:
    proc: Any
    conn: Any
    slot: int = 0  # stable fleet position, preserved across restarts
    task: tuple[int, int, int, Any] | None = None  # (chunk_id, ord, attempt, payload)
    started_at: float = 0.0


class ChunkDispatcher:
    """Supervised fan-out of deterministic chunks over forked workers.

    Parameters
    ----------
    ctx:
        A fork-capable :mod:`multiprocessing` context.
    n_workers:
        Size of the worker fleet.
    state:
        Shared read-only state inherited by every worker at fork time (the
        engine's utility, cache snapshot, orderings, ...). A *restarted*
        worker forks from the driver's current state, which may include a
        warmer cache — harmless, because chunk results are deterministic.
    task_fn:
        ``task_fn(state, payload) -> result``; must be safe to re-execute.
    deadline:
        A :class:`DeadlinePolicy`; chunk latencies feed it, and its
        ``deadline()`` bounds every in-flight chunk.
    stats:
        A :class:`SupervisionStats` to accumulate into (the engine passes
        its own so counters survive the dispatcher).
    on_event:
        Optional callback ``on_event(kind, chunk_ord, attempt)`` invoked for
        every ``"crash"``/``"hang"``/``"retry"``/``"restart"`` the
        supervisor handles — the engine bridges this into
        :mod:`repro.obs.metrics` and the run ledger.
    payload_hook:
        Optional ``payload_hook(slot, payload) -> payload`` applied at
        *send* time, per assignment. The queued payload stays pristine (a
        re-queued chunk is re-hooked for whichever worker picks it up);
        only the wire copy is transformed. The worker pool uses this to
        piggyback per-worker subset-cache deltas onto chunk descriptors.
    on_worker_start:
        Optional ``on_worker_start(slot)`` invoked after a worker process
        (re)starts in fleet position ``slot`` — restarts included, so
        pool-side per-worker state (cache watermarks, liveness gauges) can
        reset exactly when the process forgets everything.
    worker_main:
        Replacement for the default worker task loop; must accept
        ``(conn, state, task_fn)``. With a spawn-based context this — and
        ``state``/``task_fn`` — must be picklable.
    telemetry_sink:
        Optional ``telemetry_sink(items)`` receiving every telemetry delta
        workers piggybacked on their replies during one :meth:`dispatch`
        call, as ``[(slot, chunk_id, delta), ...]`` sorted by chunk id (a
        deterministic merge order). The pool and engine bridge this into
        :func:`repro.obs.trace.merge_worker_telemetry`. A sink failure is
        recorded on the flight recorder but never fails the dispatch.
    """

    def __init__(
        self,
        ctx,
        n_workers: int,
        state: dict,
        task_fn: Callable[[dict, Any], Any],
        deadline: DeadlinePolicy | None = None,
        max_chunk_retries: int = 3,
        max_worker_restarts: int = 32,
        stats: SupervisionStats | None = None,
        on_event: Callable[[str, int, int], None] | None = None,
        payload_hook: Callable[[int, Any], Any] | None = None,
        on_worker_start: Callable[[int], None] | None = None,
        worker_main: Callable[..., None] | None = None,
        telemetry_sink: Callable[[list[tuple[int, int, Any]]], None] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._ctx = ctx
        self.n_workers = int(n_workers)
        self._state = state
        self._task_fn = task_fn
        self.deadline = deadline or DeadlinePolicy()
        self.max_chunk_retries = int(max_chunk_retries)
        self.max_worker_restarts = int(max_worker_restarts)
        self.stats = stats if stats is not None else SupervisionStats()
        self._on_event = on_event
        self._payload_hook = payload_hook
        self._on_worker_start = on_worker_start
        self._worker_main = worker_main if worker_main is not None else _worker_main
        self._telemetry_sink = telemetry_sink
        self._telemetry_pending: dict[int, tuple[int, Any]] = {}
        self._workers: list[_Worker] = []
        self._next_ord = 0  # lifetime chunk sequence number (chaos identity)
        self._closed = False

    # ------------------------------------------------------------------ #
    # worker lifecycle                                                   #
    # ------------------------------------------------------------------ #

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=self._worker_main,
            args=(child_conn, self._state, self._task_fn),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds its own copy
        if self._on_worker_start is not None:
            self._on_worker_start(slot)
        return _Worker(proc=proc, conn=parent_conn, slot=slot)

    def _ensure_fleet(self, n_needed: int) -> None:
        while len(self._workers) < min(self.n_workers, max(1, n_needed)):
            self._workers.append(self._spawn(len(self._workers)))

    def _restart(self, worker: _Worker, reason: str, chunk_ord: int, attempt: int) -> None:
        """Tear down one worker and fork its replacement."""
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - last-resort kill
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self.stats.worker_restarts += 1
        self._emit("restart", chunk_ord, attempt)
        if self.stats.worker_restarts > self.max_worker_restarts:
            raise ChunkFailure(
                f"worker restart budget exhausted "
                f"({self.max_worker_restarts}) after repeated {reason}s"
            )
        replacement = self._spawn(worker.slot)
        self._workers[self._workers.index(worker)] = replacement

    def _emit(self, kind: str, chunk_ord: int, attempt: int) -> None:
        self.stats.events.append(
            {"kind": kind, "chunk": chunk_ord, "attempt": attempt}
        )
        if self._on_event is not None:
            self._on_event(kind, chunk_ord, attempt)

    # ------------------------------------------------------------------ #
    # dispatch                                                           #
    # ------------------------------------------------------------------ #

    def dispatch(self, payloads: Sequence[Any]) -> list[Any]:
        """Run every payload through ``task_fn`` on the fleet; results in
        payload order. Crashed or hung chunks are re-queued transparently."""
        if self._closed:
            raise RuntimeError("dispatcher already closed")
        if not payloads:
            return []
        pending: deque[tuple[int, int, int, Any]] = deque()
        for chunk_id, payload in enumerate(payloads):
            pending.append((chunk_id, self._next_ord, 0, payload))
            self._next_ord += 1
        results: dict[int, Any] = {}
        telemetry: dict[int, tuple[int, Any]] = {}
        self._telemetry_pending = telemetry
        self._ensure_fleet(len(pending))
        while len(results) < len(payloads):
            self._assign(pending)
            busy = [w for w in self._workers if w.task is not None]
            if not busy:
                if pending:  # pragma: no cover - defensive
                    continue
                raise ChunkFailure(
                    "dispatcher stalled with missing results"
                )  # pragma: no cover - defensive
            ready = _mp_connection.wait(
                [w.conn for w in busy], timeout=_POLL_INTERVAL_S
            )
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                if worker.task is None:  # pragma: no cover - defensive
                    continue
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    self._handle_failure(worker, "crash", pending)
                    continue
                chunk_id, result = reply[0], reply[1]
                # Telemetry (if any) rides the reply as a third element and
                # is stripped here, so task results keep their exact shape.
                if len(reply) > 2 and reply[2] is not None:
                    telemetry[chunk_id] = (worker.slot, reply[2])
                results[chunk_id] = result
                self.deadline.observe(time.monotonic() - worker.started_at)
                self.stats.chunks_completed += 1
                worker.task = None
            self._sweep(pending)
        self._drain_telemetry(telemetry)
        return [results[chunk_id] for chunk_id in range(len(payloads))]

    def _drain_telemetry(self, telemetry: dict[int, tuple[int, Any]]) -> None:
        if not telemetry or self._telemetry_sink is None:
            return
        items = [
            (slot, chunk_id, delta)
            for chunk_id, (slot, delta) in sorted(telemetry.items())
        ]
        telemetry.clear()  # drained exactly once (flushes may precede the end)
        try:
            self._telemetry_sink(items)
        except Exception as exc:  # telemetry must never fail a dispatch
            _obs_flight.record(
                "supervision.telemetry_sink_error", error=repr(exc)
            )

    def _assign(self, pending: deque) -> None:
        for index, worker in enumerate(self._workers):
            if not pending:
                break
            if worker.task is not None:
                continue
            if not worker.proc.is_alive():
                # Died while idle (e.g. killed between waves): replace it
                # quietly before handing it work.
                head = pending[0]
                self._restart(worker, "idle crash", head[1], head[2])
                worker = self._workers[index]
            task = pending.popleft()
            message = task
            if self._payload_hook is not None:
                chunk_id, chunk_ord, attempt, payload = task
                message = (
                    chunk_id,
                    chunk_ord,
                    attempt,
                    self._payload_hook(worker.slot, payload),
                )
            try:
                worker.conn.send(message)
            except (OSError, BrokenPipeError):
                # Lost the liveness race: requeue and let the next pass
                # restart the worker via the sweep. ``task`` (not the
                # hooked wire copy) goes back so the next assignment hooks
                # it afresh for its new worker.
                pending.appendleft(task)
                continue
            worker.task = task
            worker.started_at = time.monotonic()

    def _sweep(self, pending: deque) -> None:
        """Liveness + deadline checks over every in-flight chunk."""
        deadline = self.deadline.deadline()
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.task is None:
                continue
            if not worker.proc.is_alive():
                self._handle_failure(worker, "crash", pending)
            elif deadline is not None and now - worker.started_at > deadline:
                self._handle_failure(worker, "hang", pending)

    def _handle_failure(self, worker: _Worker, kind: str, pending: deque) -> None:
        chunk_id, chunk_ord, attempt, payload = worker.task
        worker.task = None
        if kind == "crash":
            self.stats.crashes += 1
        else:
            self.stats.hangs += 1
        self._emit(kind, chunk_ord, attempt)
        # Flush telemetry received so far this dispatch, then flight-record
        # the failure — naming the in-flight chunk — and dump the ring
        # (no-op unless a dump_dir is configured) so post-mortems see the
        # workers' last shipped spans next to the failure event.
        self._drain_telemetry(self._telemetry_pending)
        _obs_flight.record(
            f"supervision.{kind}",
            slot=worker.slot,
            pid=worker.proc.pid,
            chunk=chunk_ord,
            chunk_id=chunk_id,
            attempt=attempt,
        )
        _obs_flight.auto_dump(f"worker-{kind}")
        if attempt + 1 > self.max_chunk_retries:
            self._restart(worker, kind, chunk_ord, attempt)
            raise ChunkFailure(
                f"chunk {chunk_ord} failed {attempt + 1} times "
                f"(last failure: {kind}); giving up"
            )
        self.stats.chunk_retries += 1
        self._emit("retry", chunk_ord, attempt + 1)
        pending.appendleft((chunk_id, chunk_ord, attempt + 1, payload))
        self._restart(worker, kind, chunk_ord, attempt)

    # ------------------------------------------------------------------ #
    # teardown                                                           #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the fleet down; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                if worker.proc.is_alive():
                    worker.conn.send(_SHUTDOWN)
            except (OSError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._workers = []

    def __enter__(self) -> "ChunkDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
