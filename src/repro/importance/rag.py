"""Data importance for retrieval-augmented generation (Lyu et al. [47]).

In a RAG system the "training data" is the retrieval corpus: answers are
produced by retrieving the nearest documents to a query and aggregating
their content. Corpus quality therefore determines answer quality, and the
importance question becomes *which corpus entries help or hurt the
downstream answers*.

Because retrieval-then-vote **is** a K-nearest-neighbour model over the
embedding space, the exact KNN-Shapley machinery applies verbatim — the
observation that makes corpus debugging tractable. This module provides the
minimal RAG substrate (embedded corpus, retrieve, answer) plus the
importance computation and a prune-and-remeasure helper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..learn.models.knn import pairwise_distances
from ..text import TextEmbedder
from .base import ImportanceResult
from .knn_shapley import knn_shapley

__all__ = ["RetrievalCorpus", "rag_importance"]


@dataclass
class RetrievalCorpus:
    """An embedded document corpus with per-document answers.

    Parameters
    ----------
    documents:
        The raw corpus texts.
    answers:
        The answer each document supports (the "generation" a retrieval hit
        contributes; a categorical stand-in for free-form generation).
    embedder:
        Text embedder shared between documents and queries.
    """

    documents: list[str]
    answers: np.ndarray
    embedder: TextEmbedder = field(default_factory=lambda: TextEmbedder(n_features=48))

    def __post_init__(self) -> None:
        self.answers = np.asarray(self.answers)
        if len(self.documents) != len(self.answers):
            raise ValueError("documents and answers must have equal length")
        if len(self.documents) == 0:
            raise ValueError("empty corpus")
        self.embeddings_ = self.embedder.transform(list(self.documents))

    def __len__(self) -> int:
        return len(self.documents)

    def retrieve(self, queries: Sequence[str], k: int = 3) -> np.ndarray:
        """Indices of the k nearest documents per query."""
        q = self.embedder.transform(list(queries))
        distances = pairwise_distances(q, self.embeddings_)
        return np.argsort(distances, axis=1, kind="stable")[:, : min(k, len(self))]

    def answer(self, queries: Sequence[str], k: int = 3) -> np.ndarray:
        """Majority answer among the retrieved documents.

        Vote ties are broken toward the answer whose best supporting
        document ranks nearest — the natural retrieval semantics (and the
        vote *counts* stay those of the plain KNN game that
        :func:`rag_importance` scores exactly).
        """
        hits = self.retrieve(queries, k=k)
        out = []
        for row in hits:
            votes: dict[Any, int] = {}
            best_rank: dict[Any, int] = {}
            for rank, doc in enumerate(row.tolist()):
                answer = self.answers[doc].item() if hasattr(
                    self.answers[doc], "item"
                ) else self.answers[doc]
                votes[answer] = votes.get(answer, 0) + 1
                best_rank.setdefault(answer, rank)
            winner = min(votes, key=lambda a: (-votes[a], best_rank[a]))
            out.append(winner)
        return np.asarray(out)

    def accuracy(self, queries: Sequence[str], truth: Any, k: int = 3) -> float:
        truth = np.asarray(truth)
        return float(np.mean(self.answer(queries, k=k) == truth))

    def without(self, positions: Sequence[int]) -> "RetrievalCorpus":
        """A copy of the corpus with the given documents removed."""
        drop = set(int(p) for p in positions)
        keep = [i for i in range(len(self)) if i not in drop]
        if not keep:
            raise ValueError("cannot remove the entire corpus")
        return RetrievalCorpus(
            documents=[self.documents[i] for i in keep],
            answers=self.answers[keep],
            embedder=self.embedder,
        )


def rag_importance(
    corpus: RetrievalCorpus,
    queries: Sequence[str],
    truth: Any,
    k: int = 3,
) -> ImportanceResult:
    """Exact KNN-Shapley importance of each corpus document.

    The validation set is the query workload with its reference answers;
    the utility is the retrieval-vote correctness — precisely the KNN game,
    so the closed-form recursion gives exact values in O(|corpus| log
    |corpus|) per query.
    """
    truth = np.asarray(truth)
    q_embed = corpus.embedder.transform(list(queries))
    result = knn_shapley(
        corpus.embeddings_, corpus.answers, q_embed, truth, k=k
    )
    result.method = f"rag_knn_shapley(k={k})"
    result.extras["n_queries"] = len(truth)
    return result
