"""Linear models: least-squares/ridge regression and a linear SVM.

These are the model classes for which the tutorial's "Learn" part provides
guarantees: certain and approximately-certain models (Zhen et al. [92]) are
defined for linear regression and SVMs, and
:mod:`repro.uncertainty.certain_models` reuses the loss functions here.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.optimize import minimize

from ..base import Estimator, check_matrix, check_xy

__all__ = ["LinearRegression", "RidgeRegression", "LinearSVC", "squared_hinge_loss"]


class LinearRegression(Estimator):
    """Ordinary least squares via the normal equations (pinv for stability)."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = bool(fit_intercept)

    def _design(self, X: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.column_stack([X, np.ones(len(X))])
        return X

    def fit(self, X: Any, y: Any) -> "LinearRegression":
        X, y = check_xy(X, np.asarray(y, dtype=float))
        theta = np.linalg.pinv(self._design(X)) @ y
        if self.fit_intercept:
            self.coef_, self.intercept_ = theta[:-1], float(theta[-1])
        else:
            self.coef_, self.intercept_ = theta, 0.0
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        return check_matrix(X) @ self.coef_ + self.intercept_

    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination R²."""
        y = np.asarray(y, dtype=float)
        residual = np.sum((y - self.predict(X)) ** 2)
        total = np.sum((y - y.mean()) ** 2)
        if total == 0:
            return 1.0 if residual == 0 else 0.0
        return float(1.0 - residual / total)

    def mse(self, X: Any, y: Any) -> float:
        y = np.asarray(y, dtype=float)
        return float(np.mean((self.predict(X) - y) ** 2))


class RidgeRegression(LinearRegression):
    """L2-regularised least squares (closed form)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        super().__init__(fit_intercept=fit_intercept)
        self.alpha = float(alpha)

    def fit(self, X: Any, y: Any) -> "RidgeRegression":
        X, y = check_xy(X, np.asarray(y, dtype=float))
        D = self._design(X)
        penalty = self.alpha * np.eye(D.shape[1])
        if self.fit_intercept:
            penalty[-1, -1] = 0.0  # do not shrink the intercept
        theta = np.linalg.solve(D.T @ D + penalty, D.T @ y)
        if self.fit_intercept:
            self.coef_, self.intercept_ = theta[:-1], float(theta[-1])
        else:
            self.coef_, self.intercept_ = theta, 0.0
        return self


def squared_hinge_loss(
    theta: np.ndarray, X: np.ndarray, y_signed: np.ndarray, C: float
) -> tuple[float, np.ndarray]:
    """L2-regularised squared-hinge objective and gradient.

    ``theta`` is ``(w, b)`` concatenated; ``y_signed`` is in {-1, +1}.
    """
    w, b = theta[:-1], theta[-1]
    margins = y_signed * (X @ w + b)
    slack = np.clip(1.0 - margins, 0.0, None)
    loss = 0.5 * float(w @ w) + C * float(np.sum(slack**2))
    active = slack > 0
    grad_w = w - 2.0 * C * ((slack[active] * y_signed[active]) @ X[active])
    grad_b = -2.0 * C * float(np.sum(slack[active] * y_signed[active]))
    return loss, np.append(grad_w, grad_b)


class LinearSVC(Estimator):
    """Binary linear SVM with squared hinge loss, trained with L-BFGS."""

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        self.C = float(C)
        self.max_iter = int(max_iter)

    def fit(self, X: Any, y: Any) -> "LinearSVC":
        X, y = check_xy(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) > 2:
            raise ValueError("LinearSVC is binary; got more than two classes")
        if len(self.classes_) < 2:
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = 0.0
            return self
        y_signed = np.where(y == self.classes_[1], 1.0, -1.0)
        result = minimize(
            squared_hinge_loss,
            np.zeros(X.shape[1] + 1),
            args=(X, y_signed, self.C),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:-1]
        self.intercept_ = float(result.x[-1])
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        self._require_fitted()
        return check_matrix(X) @ self.coef_ + self.intercept_

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        if len(self.classes_) < 2:
            return np.repeat(self.classes_[:1], len(check_matrix(X)))
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])
