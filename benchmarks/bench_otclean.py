"""Experiment — OTClean: repairing conditional-independence violations [62].

Sweep the strength of an injected X–Y dependence inside Z-strata, repair
with the OTClean reweighting, and report conditional mutual information
before/after plus the downstream fairness effect of training on the
resampled data. Shapes to reproduce: CMI grows with injected strength and
drops to ~0 after repair at every strength; the repair transfers to the
resampled (materialised) dataset.
"""

import numpy as np

from repro.cleaning import conditional_mutual_information, otclean
from repro.frame import DataFrame
from repro.viz import format_records

STRENGTHS = [0.0, 0.2, 0.4, 0.6, 0.8]


def make_frame(strength: float, n: int = 2000, seed: int = 0) -> DataFrame:
    rng = np.random.default_rng(seed)
    z = rng.choice(["urban", "rural"], size=n)
    y = rng.choice(["approved", "denied"], size=n)
    x = np.where(
        (y == "approved") & (rng.random(n) < strength),
        "groupA",
        rng.choice(["groupA", "groupB"], size=n),
    )
    return DataFrame({"x": x.astype(str), "y": y.astype(str), "z": z.astype(str)})


def run_sweep() -> list[dict]:
    rows = []
    for strength in STRENGTHS:
        frame = make_frame(strength)
        repair = otclean(frame, "x", "y", "z")
        resampled = repair.resample(frame, seed=1)
        rows.append(
            {
                "injected_strength": strength,
                "cmi_before": repair.cmi_before,
                "cmi_weighted_after": repair.cmi_after,
                "cmi_resampled_after": conditional_mutual_information(
                    resampled, "x", "y", "z"
                ),
            }
        )
    return rows


def test_otclean_repair(benchmark, write_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_report("otclean", format_records(rows))

    before = [r["cmi_before"] for r in rows]
    assert all(b >= a - 5e-4 for a, b in zip(before, before[1:])), (
        "CMI must grow with injected dependence"
    )
    for row in rows:
        assert row["cmi_weighted_after"] < 1e-9
        assert row["cmi_resampled_after"] < max(0.25 * row["cmi_before"], 0.01)
