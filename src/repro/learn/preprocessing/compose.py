"""Composite transformers: chains and per-column feature encoding.

``ColumnTransformer`` is the bridge between the relational world
(:class:`repro.frame.DataFrame`) and the vector world (NumPy matrices) — the
"Encode/Concat" stage of the pipeline sketched in the paper's Figure 3.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ...frame import DataFrame
from ..base import Transformer, check_matrix

__all__ = ["FunctionTransformer", "Pipeline", "ColumnTransformer"]


class FunctionTransformer(Transformer):
    """Wrap a stateless function as a transformer."""

    def __init__(self, func: Callable[[Any], Any]) -> None:
        self.func = func

    def fit(self, X: Any, y: Any = None) -> "FunctionTransformer":
        self.fitted_ = True
        return self

    def transform(self, X: Any) -> Any:
        return self.func(X)


class Pipeline(Transformer):
    """A chain of transformers applied in sequence.

    Unlike scikit-learn's ``Pipeline`` this one is a pure feature chain (no
    terminal estimator); model training is an explicit pipeline *operator* in
    :mod:`repro.pipeline` so that provenance can flow past it.
    """

    def __init__(self, steps: Sequence[Transformer]) -> None:
        self.steps = list(steps)

    def fit(self, X: Any, y: Any = None) -> "Pipeline":
        data = X
        for step in self.steps:
            data = step.fit_transform(data, y)
        self.fitted_ = True
        return self

    def transform(self, X: Any) -> Any:
        data = X
        for step in self.steps:
            data = step.transform(data)
        return data

    def fit_transform(self, X: Any, y: Any = None) -> Any:
        data = X
        for step in self.steps:
            data = step.fit_transform(data, y)
        self.fitted_ = True
        return data


class ColumnTransformer(Transformer):
    """Apply per-column transformers to a DataFrame and concatenate outputs.

    Parameters
    ----------
    transformers:
        Sequence of ``(transformer, columns)`` pairs. ``columns`` is a single
        column name (the transformer receives the raw cell list) or a list of
        names (the transformer receives a dense float matrix).
    remainder:
        ``"drop"`` (default) or ``"passthrough"`` — whether unreferenced
        *numeric* columns are appended unchanged.
    """

    def __init__(
        self,
        transformers: Sequence[tuple[Transformer, str | Sequence[str]]],
        remainder: str = "drop",
    ) -> None:
        if remainder not in ("drop", "passthrough"):
            raise ValueError(f"unknown remainder policy: {remainder!r}")
        self.transformers = list(transformers)
        self.remainder = remainder

    def _referenced(self) -> set[str]:
        names: set[str] = set()
        for __, columns in self.transformers:
            if isinstance(columns, str):
                names.add(columns)
            else:
                names.update(columns)
        return names

    def _extract(self, frame: DataFrame, columns: str | Sequence[str]) -> Any:
        if isinstance(columns, str):
            return frame.column(columns)
        return frame.to_numpy(list(columns))

    def _passthrough_columns(self, frame: DataFrame) -> list[str]:
        used = self._referenced()
        return [
            name
            for name in frame.columns
            if name not in used and frame.column(name).is_numeric
        ]

    def fit(self, X: DataFrame, y: Any = None) -> "ColumnTransformer":
        self.fit_transform(X, y)
        return self

    def _as_block(self, output: Any, n_rows: int) -> np.ndarray:
        block = np.asarray(output, dtype=float)
        if block.ndim == 1:
            block = block.reshape(-1, 1)
        if block.shape[0] != n_rows:
            raise ValueError(
                f"transformer produced {block.shape[0]} rows, expected {n_rows}"
            )
        return block

    def fit_transform(self, X: DataFrame, y: Any = None) -> np.ndarray:
        if not isinstance(X, DataFrame):
            raise TypeError("ColumnTransformer operates on DataFrame inputs")
        blocks = []
        for transformer, columns in self.transformers:
            output = transformer.fit_transform(self._extract(X, columns), y)
            blocks.append(self._as_block(output, X.num_rows))
        if self.remainder == "passthrough":
            self.passthrough_ = self._passthrough_columns(X)
            if self.passthrough_:
                blocks.append(X.to_numpy(self.passthrough_))
        else:
            self.passthrough_ = []
        self.n_features_out_ = int(sum(b.shape[1] for b in blocks))
        self.fitted_ = True
        return np.hstack(blocks) if blocks else np.empty((X.num_rows, 0))

    def transform(self, X: DataFrame) -> np.ndarray:
        self._require_fitted()
        blocks = []
        for transformer, columns in self.transformers:
            output = transformer.transform(self._extract(X, columns))
            blocks.append(self._as_block(output, X.num_rows))
        if self.passthrough_:
            blocks.append(X.to_numpy(self.passthrough_))
        return np.hstack(blocks) if blocks else np.empty((X.num_rows, 0))

    def _require_fitted(self) -> None:
        if not getattr(self, "fitted_", False):
            raise RuntimeError("ColumnTransformer is not fitted")
