"""Worker supervision: crash/hang detection, restarts, and bit-identity.

The contract under test is the tentpole invariant of the fault-tolerant
runtime: whatever crashes, hangs, or is retried during a parallel valuation
run, the returned values are bit-identical to a clean serial run — because
every chunk is a deterministic slice of pre-drawn orderings and results are
merged in chunk order.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

import repro.importance.engine as engine_mod
from repro.errors import ChaosMonkey
from repro.importance import SubsetUtility, ValuationEngine, parallel_map
from repro.importance.supervision import (
    ChunkDispatcher,
    ChunkFailure,
    DeadlinePolicy,
    SupervisionStats,
)

needs_fork = pytest.mark.skipif(
    engine_mod._FORK_CTX is None, reason="requires a fork-capable platform"
)


def saturating_game(n: int = 10, seed: int = 3) -> SubsetUtility:
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, n)


def slow_game(n: int = 8, seed: int = 3, delay_s: float = 0.004) -> SubsetUtility:
    base = saturating_game(n, seed)

    def func(indices):
        time.sleep(delay_s)
        return base.func(indices)

    return SubsetUtility(func, n)


# ---------------------------------------------------------------------- #
# DeadlinePolicy                                                         #
# ---------------------------------------------------------------------- #


class TestDeadlinePolicy:
    def test_hard_timeout_overrides_everything(self):
        policy = DeadlinePolicy(hard_timeout_s=1.5)
        assert policy.deadline() == 1.5
        for latency in (0.001, 0.002, 0.003, 0.004):
            policy.observe(latency)
        assert policy.deadline() == 1.5

    def test_abstains_until_enough_samples(self):
        policy = DeadlinePolicy(min_samples=3)
        assert policy.deadline() is None
        policy.observe(0.1)
        policy.observe(0.1)
        assert policy.deadline() is None
        policy.observe(0.1)
        assert policy.deadline() is not None

    def test_adaptive_deadline_tracks_quantile_with_floor(self):
        policy = DeadlinePolicy(factor=4.0, quantile=1.0, min_samples=3, floor_s=0.25)
        for latency in (1.0, 2.0, 3.0):
            policy.observe(latency)
        assert policy.deadline() == pytest.approx(12.0)
        fast = DeadlinePolicy(factor=4.0, quantile=1.0, min_samples=3, floor_s=0.25)
        for latency in (0.001, 0.001, 0.001):
            fast.observe(latency)
        assert fast.deadline() == 0.25  # floored: micro-chunks don't trip

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(hard_timeout_s=0.0)
        with pytest.raises(ValueError):
            DeadlinePolicy(factor=1.0)
        with pytest.raises(ValueError):
            DeadlinePolicy(quantile=0.0)


def test_supervision_stats_merge():
    a = SupervisionStats(chunks_completed=3, crashes=1, events=[{"kind": "crash"}])
    b = SupervisionStats(chunks_completed=2, hangs=1, worker_restarts=1)
    a.merge(b)
    assert a.chunks_completed == 5
    assert a.crashes == 1 and a.hangs == 1 and a.worker_restarts == 1
    assert a.to_dict()["chunks_completed"] == 5


# ---------------------------------------------------------------------- #
# ChunkDispatcher                                                        #
# ---------------------------------------------------------------------- #


def _square_task(state, payload):
    return payload * payload


class _CrashAlways:
    """Chaos stand-in whose targeted chunks die on *every* attempt."""

    def __init__(self, chunks):
        self.chunks = set(chunks)

    def apply_worker_fault(self, chunk_ord, attempt):
        if chunk_ord in self.chunks:
            os._exit(1)


@needs_fork
class TestChunkDispatcher:
    def test_results_in_payload_order(self):
        with ChunkDispatcher(engine_mod._FORK_CTX, 3, {}, _square_task) as d:
            assert d.dispatch(list(range(10))) == [i * i for i in range(10)]
            # Fleet survives across dispatch calls; ords keep increasing.
            assert d.dispatch([20, 30]) == [400, 900]
        assert d.stats.chunks_completed == 12
        assert d.stats.crashes == 0

    def test_crash_is_detected_retried_and_recovered(self):
        chaos = ChaosMonkey(worker_crash_chunks=[2])
        stats = SupervisionStats()
        events = []
        with ChunkDispatcher(
            engine_mod._FORK_CTX,
            2,
            {"chaos": chaos},
            _square_task,
            stats=stats,
            on_event=lambda kind, ord_, attempt: events.append(kind),
        ) as d:
            assert d.dispatch([1, 2, 3, 4]) == [1, 4, 9, 16]
        assert stats.crashes == 1
        assert stats.chunk_retries == 1
        assert stats.worker_restarts == 1
        assert events.count("crash") == 1
        assert events.count("retry") == 1
        assert events.count("restart") == 1

    def test_hang_is_detected_and_chunk_requeued(self):
        chaos = ChaosMonkey(worker_hang_chunks=[1], hang_duration=60.0)
        stats = SupervisionStats()
        with ChunkDispatcher(
            engine_mod._FORK_CTX,
            2,
            {"chaos": chaos},
            _square_task,
            deadline=DeadlinePolicy(hard_timeout_s=0.3),
            stats=stats,
        ) as d:
            assert d.dispatch([5, 6, 7]) == [25, 36, 49]
        assert stats.hangs == 1
        assert stats.worker_restarts == 1

    def test_persistent_crash_exhausts_retry_budget(self):
        with ChunkDispatcher(
            engine_mod._FORK_CTX,
            2,
            {"chaos": _CrashAlways([1])},
            _square_task,
            max_chunk_retries=2,
        ) as d:
            with pytest.raises(ChunkFailure, match="failed 3 times"):
                d.dispatch([1, 2, 3])

    def test_restart_budget_bounds_crash_loops(self):
        with ChunkDispatcher(
            engine_mod._FORK_CTX,
            2,
            {"chaos": _CrashAlways([0, 1, 2, 3])},
            _square_task,
            max_chunk_retries=100,
            max_worker_restarts=3,
        ) as d:
            with pytest.raises(ChunkFailure, match="restart budget"):
                d.dispatch([1, 2, 3, 4])

    def test_dispatch_after_close_raises(self):
        d = ChunkDispatcher(engine_mod._FORK_CTX, 1, {}, _square_task)
        d.close()
        d.close()  # idempotent
        with pytest.raises(RuntimeError):
            d.dispatch([1])


# ---------------------------------------------------------------------- #
# engine integration                                                     #
# ---------------------------------------------------------------------- #


@needs_fork
class TestEngineSupervision:
    def test_injected_crash_and_hang_keep_values_bit_identical(self):
        serial = ValuationEngine(saturating_game()).run_permutations(20, seed=5)
        chaos = ChaosMonkey(
            worker_crash_chunks=[1], worker_hang_chunks=[3], hang_duration=60.0
        )
        engine = ValuationEngine(
            saturating_game(), n_workers=3, chaos=chaos, chunk_timeout_s=1.0
        )
        run = engine.run_permutations(20, seed=5)
        assert np.array_equal(run.values(), serial.values())
        assert engine.worker_restarts == 2
        assert engine.supervision.crashes == 1
        assert engine.supervision.hangs == 1
        # Ground truth: the monkey recorded exactly the chunks it faulted.
        kinds = sorted(f.kind for f in chaos.triggered)
        assert kinds == ["worker_crash", "worker_hang"]
        assert {f.node_kind for f in chaos.triggered} == {"worker"}

    def test_seeded_crash_rate_recovers(self):
        serial = ValuationEngine(saturating_game()).run_permutations(30, seed=7)
        chaos = ChaosMonkey(seed=11, worker_crash_rate=0.4)
        engine = ValuationEngine(saturating_game(), n_workers=2, chaos=chaos)
        run = engine.run_permutations(30, seed=7)
        assert np.array_equal(run.values(), serial.values())
        planned = chaos.planned_worker_faults(engine.supervision.chunks_completed)
        if planned.get("worker_crash"):
            assert engine.supervision.crashes >= 1
            assert engine.worker_restarts >= 1

    def test_sigkill_of_worker_mid_wave_is_recovered(self):
        """An external ``kill -9`` of a worker process mid-run: the
        dispatcher restarts it, re-queues the chunk, and the final values
        are still bit-identical to serial."""
        serial = ValuationEngine(slow_game()).run_permutations(40, seed=9)
        engine = ValuationEngine(slow_game(), n_workers=2)
        before = {child.pid for child in mp.active_children()}
        result: dict = {}

        def run():
            result["run"] = engine.run_permutations(40, seed=9)

        thread = threading.Thread(target=run)
        thread.start()
        victim = None
        deadline = time.monotonic() + 5.0
        while victim is None and time.monotonic() < deadline:
            fresh = [c for c in mp.active_children() if c.pid not in before]
            if fresh:
                victim = fresh[0]
            else:
                time.sleep(0.001)
        assert victim is not None, "engine never spawned a worker"
        os.kill(victim.pid, signal.SIGKILL)
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert np.array_equal(result["run"].values(), serial.values())
        assert engine.worker_restarts >= 1

    def test_supervision_counters_flow_into_obs_metrics(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        chaos = ChaosMonkey(worker_crash_chunks=[0])
        engine = ValuationEngine(saturating_game(), n_workers=2, chaos=chaos)
        obs_trace.enable()
        try:
            engine.run_permutations(12, seed=1)
            snapshot = obs_metrics.snapshot()
        finally:
            obs_trace.disable()
            obs_metrics.registry().clear()
            obs_trace.get_recorder().reset()
        assert snapshot["engine.supervision.crash"]["value"] == 1
        assert snapshot["engine.supervision.restart"]["value"] >= 1


# ---------------------------------------------------------------------- #
# non-fork platforms: loud serial fallback                               #
# ---------------------------------------------------------------------- #


class TestNoForkFallback:
    def test_engine_falls_back_to_serial_with_one_warning(self, monkeypatch):
        serial = ValuationEngine(saturating_game()).run_permutations(10, seed=2)
        monkeypatch.setattr(engine_mod, "_FORK_CTX", None)
        monkeypatch.setattr(engine_mod, "_WARNED_NO_FORK", set())
        engine = ValuationEngine(saturating_game(), n_workers=4)
        with pytest.warns(RuntimeWarning, match="fell back to serial"):
            run = engine.run_permutations(10, seed=2)
        assert np.array_equal(run.values(), serial.values())
        # The warning fires once per process, not once per call.
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            engine.run_permutations(10, seed=2)

    def test_parallel_map_falls_back_to_serial_with_warning(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_FORK_CTX", None)
        monkeypatch.setattr(engine_mod, "_WARNED_NO_FORK", set())
        with pytest.warns(RuntimeWarning, match="parallel_map fell back"):
            out = parallel_map(lambda x: x + 1, [1, 2, 3], n_workers=4)
        assert out == [2, 3, 4]

    def test_each_degradation_mode_warns_separately(self, monkeypatch):
        # The engine-serial and map-serial degradations are different
        # surprises; each gets its own (single) RuntimeWarning.
        monkeypatch.setattr(engine_mod, "_FORK_CTX", None)
        monkeypatch.setattr(engine_mod, "_WARNED_NO_FORK", set())
        with pytest.warns(RuntimeWarning, match="engine fan-out"):
            ValuationEngine(saturating_game(), n_workers=2).run_permutations(
                4, seed=0
            )
        with pytest.warns(RuntimeWarning, match="parallel_map"):
            parallel_map(lambda x: x, [1, 2], n_workers=2)
        assert engine_mod._WARNED_NO_FORK == {"engine", "map"}

    def test_evaluate_many_serial_fallback_matches(self, monkeypatch):
        subsets = [[0, 1], [2], [], [0, 1], [1, 2, 3]]
        expected = ValuationEngine(saturating_game()).evaluate_many(subsets)
        monkeypatch.setattr(engine_mod, "_FORK_CTX", None)
        monkeypatch.setattr(
            engine_mod, "_WARNED_NO_FORK", {"engine", "map", "pool"}
        )
        got = ValuationEngine(saturating_game(), n_workers=3).evaluate_many(subsets)
        assert np.array_equal(expected, got)
