"""Certified robustness to label flips via randomized smoothing.

Implements the label-flipping defence of Rosenfeld et al. [70] in its
sampling form: the smoothed classifier predicts the majority output of the
base learner trained on *randomly relabelled* copies of the data (each label
independently resampled with probability ``noise``). If the smoothed vote
for the top class clears a margin, the prediction is certified against a
bounded number of adversarial training-label flips.

The certificate is a total-variation argument: flipping one training label
from a to b changes that label's noise distribution by exactly
``TV = max(0, 1 − noise − noise/(c − 1))`` (the clean distribution puts
``1 − noise`` on a, the attacked one puts ``noise/(c−1)`` there), so an
adversary flipping ``r`` labels shifts any smoothed vote share by at most
``r · TV``, and a prediction with empirical margin ``p̂₁ − p̂₂ > 2·r·TV`` is
certified against ``r`` flips. Meaningful certificates require substantial
noise (binary: TV = 1 − 2·noise, so noise ≳ 0.25 to certify even one flip
from a perfect margin) — the same noise/robustness trade-off as in the
original randomized-smoothing literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..learn.base import Estimator, clone

__all__ = ["SmoothedClassifier"]


@dataclass
class _SmoothedPrediction:
    label: Any
    top_share: float
    runner_share: float
    certified_flips: int


class SmoothedClassifier(Estimator):
    """Majority vote over models trained on randomly relabelled data.

    Parameters
    ----------
    base_model:
        Unfitted prototype, cloned per noise sample.
    noise:
        Per-label resampling probability (labels are replaced by a uniform
        draw from the other classes with this probability).
    n_samples:
        Ensemble size; more samples = tighter empirical vote shares.
    """

    def __init__(
        self,
        base_model: Estimator,
        noise: float = 0.2,
        n_samples: int = 20,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= noise < 0.5:
            raise ValueError("noise must be in [0, 0.5)")
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        self.base_model = base_model
        self.noise = float(noise)
        self.n_samples = int(n_samples)
        self.seed = int(seed)

    def fit(self, X: Any, y: Any) -> "SmoothedClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y must have equal length")
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self.models_ = []
        for __ in range(self.n_samples):
            noisy = y.copy()
            flip = rng.random(len(y)) < self.noise
            for i in np.flatnonzero(flip):
                alternatives = self.classes_[self.classes_ != noisy[i]]
                noisy[i] = alternatives[int(rng.integers(len(alternatives)))]
            self.models_.append(clone(self.base_model).fit(X, noisy))
        return self

    def _shares(self, X: np.ndarray) -> np.ndarray:
        index = {cls: j for j, cls in enumerate(self.classes_.tolist())}
        votes = np.zeros((len(X), len(self.classes_)))
        for model in self.models_:
            for i, label in enumerate(model.predict(X).tolist()):
                votes[i, index[label]] += 1
        return votes / self.n_samples

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        shares = self._shares(np.asarray(X, dtype=float))
        return self.classes_[np.argmax(shares, axis=1)]

    def certified_predict(self, X: Any) -> list[_SmoothedPrediction]:
        """Smoothed predictions with certified label-flip budgets.

        The per-flip smoothing-distribution shift is
        ``TV = max(0, 1 − noise − noise/(c−1))``; the empirical margin must
        exceed ``2·r·TV`` to certify ``r`` flips (sampling error is not
        deducted — treat the counts as the lower bounds of a larger run).
        """
        self._require_fitted()
        shares = self._shares(np.asarray(X, dtype=float))
        c = len(self.classes_)
        delta = max(0.0, 1.0 - self.noise - self.noise / (c - 1))
        out = []
        for row in shares:
            order = np.argsort(row, kind="stable")[::-1]
            top, runner = float(row[order[0]]), float(row[order[1]])
            margin = top - runner
            certified = int(margin / (2.0 * delta)) if delta > 0 else 0
            out.append(
                _SmoothedPrediction(
                    label=self.classes_[order[0]],
                    top_share=top,
                    runner_share=runner,
                    certified_flips=max(certified, 0),
                )
            )
        return out
