"""Interval arithmetic over NumPy arrays.

The sound over-approximation substrate for the "Learn from uncertain data"
methods: a value known only to lie in ``[lo, hi]`` is represented exactly,
and every operation returns an interval guaranteed to contain all concrete
outcomes (soundness — the property the hypothesis tests in
``tests/uncertainty`` hammer on).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["Interval"]


def _as_array(value: Any) -> np.ndarray:
    return np.asarray(value, dtype=float)


class Interval:
    """Element-wise interval ``[lo, hi]`` over arrays of matching shape."""

    __slots__ = ("lo", "hi")

    # Make NumPy defer binary operators to this class (so ndarray @ Interval
    # reaches __rmatmul__ instead of failing inside ndarray.__matmul__).
    __array_priority__ = 1000

    def __init__(self, lo: Any, hi: Any) -> None:
        self.lo = _as_array(lo)
        self.hi = _as_array(hi)
        if self.lo.shape != self.hi.shape:
            raise ValueError(f"shape mismatch: {self.lo.shape} vs {self.hi.shape}")
        if np.any(self.lo > self.hi + 1e-12):
            raise ValueError("interval lower bound exceeds upper bound")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def exact(cls, value: Any) -> "Interval":
        arr = _as_array(value)
        return cls(arr.copy(), arr.copy())

    @classmethod
    def from_center_radius(cls, center: Any, radius: Any) -> "Interval":
        center = _as_array(center)
        radius = np.broadcast_to(_as_array(radius), center.shape)
        if np.any(radius < 0):
            raise ValueError("radius must be non-negative")
        return cls(center - radius, center + radius)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.lo.shape

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def radius(self) -> np.ndarray:
        return 0.5 * (self.hi - self.lo)

    @property
    def width(self) -> np.ndarray:
        return self.hi - self.lo

    def contains(self, value: Any, atol: float = 1e-9) -> bool:
        value = _as_array(value)
        return bool(
            np.all(value >= self.lo - atol) and np.all(value <= self.hi + atol)
        )

    def is_degenerate(self, atol: float = 0.0) -> bool:
        return bool(np.all(self.width <= atol))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval(shape={self.shape}, max_width={float(self.width.max()) if self.lo.size else 0:.4g})"

    # ------------------------------------------------------------------
    # Arithmetic (all sound over-approximations)
    # ------------------------------------------------------------------
    def _coerce(self, other: Any) -> "Interval":
        return other if isinstance(other, Interval) else Interval.exact(other)

    def __add__(self, other: Any) -> "Interval":
        other = self._coerce(other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: Any) -> "Interval":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Any) -> "Interval":
        return self._coerce(other) - self

    def __mul__(self, other: Any) -> "Interval":
        other = self._coerce(other)
        candidates = np.stack(
            [
                self.lo * other.lo,
                self.lo * other.hi,
                self.hi * other.lo,
                self.hi * other.hi,
            ]
        )
        return Interval(candidates.min(axis=0), candidates.max(axis=0))

    __rmul__ = __mul__

    def square(self) -> "Interval":
        """Tight square: [0, max²] when the interval straddles zero."""
        lo_sq = self.lo**2
        hi_sq = self.hi**2
        straddles = (self.lo <= 0) & (self.hi >= 0)
        lower = np.where(straddles, 0.0, np.minimum(lo_sq, hi_sq))
        upper = np.maximum(lo_sq, hi_sq)
        return Interval(lower, upper)

    def abs(self) -> "Interval":
        straddles = (self.lo <= 0) & (self.hi >= 0)
        lower = np.where(straddles, 0.0, np.minimum(np.abs(self.lo), np.abs(self.hi)))
        upper = np.maximum(np.abs(self.lo), np.abs(self.hi))
        return Interval(lower, upper)

    def clip(self, lo: float, hi: float) -> "Interval":
        return Interval(np.clip(self.lo, lo, hi), np.clip(self.hi, lo, hi))

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: Any) -> "Interval":
        """Interval matrix product ``self @ other`` (either side interval).

        Uses the midpoint-radius formulation: with A = Ac ± Ar and
        B = Bc ± Br, the product lies in
        ``Ac·Bc ± (|Ac|·Br + Ar·|Bc| + Ar·Br)``.
        """
        other = self._coerce(other)
        ac, ar = self.center, self.radius
        bc, br = other.center, other.radius
        center = ac @ bc
        radius = np.abs(ac) @ br + ar @ np.abs(bc) + ar @ br
        return Interval(center - radius, center + radius)

    def __matmul__(self, other: Any) -> "Interval":
        return self.matmul(other)

    def __rmatmul__(self, other: Any) -> "Interval":
        return Interval.exact(other).matmul(self)

    def transpose(self) -> "Interval":
        return Interval(self.lo.T, self.hi.T)

    @property
    def T(self) -> "Interval":
        return self.transpose()

    def sum(self, axis: int | None = None) -> "Interval":
        return Interval(self.lo.sum(axis=axis), self.hi.sum(axis=axis))

    def mean(self, axis: int | None = None) -> "Interval":
        return Interval(self.lo.mean(axis=axis), self.hi.mean(axis=axis))

    def max_upper(self) -> float:
        """Largest possible value anywhere in the array."""
        return float(self.hi.max())

    def min_lower(self) -> float:
        return float(self.lo.min())

    def take(self, indices: Any) -> "Interval":
        idx = np.asarray(indices, dtype=np.int64)
        return Interval(self.lo[idx], self.hi[idx])

    def __getitem__(self, key: Any) -> "Interval":
        return Interval(self.lo[key], self.hi[key])
