"""Exact KNN-Shapley over compiled canonical pipelines (Datascope).

The players of this game are *source* rows of a pipeline, not encoded
rows: each player controls the candidate group its additive provenance
polynomial covers (see :mod:`repro.pipeline.canonical`), and the utility
of a coalition is the KNN utility of the union of its groups. Karlaš et
al. (arXiv 2204.11131) show this game is valuable exactly in polynomial
time; this module implements the two canonical forms:

- **map form** (every group has at most one candidate): the grouped game
  *is* the per-row KNN game on the surviving candidates, so the Jia et
  al. closed form (:func:`repro.importance.knn_shapley.knn_shapley`)
  applies unchanged for any ``k``; players whose group is empty are null
  players and receive exactly zero.
- **fork form** (some group holds several candidates): for ``k = 1``,
  only a player's *nearest* candidate to each test point can ever be the
  nearest present neighbour, so per test point each player reduces to
  one representative and the game collapses to a per-row 1-NN game over
  representatives — solved by the same recursion. For ``k > 1`` the
  reduction is unsound (two candidates of one player can both sit in the
  top-k), so fork pipelines with ``k > 1`` are rejected with a
  diagnostic instead of silently mis-valued; this matches the 1-NN proxy
  Datascope itself ships for fork pipelines.

Results come back as a standard
:class:`~repro.importance.engine.ValuationResult` with ``stderr = 0``,
``converged = True`` and ``stop_reason = "exact"`` — exact values are a
degenerate, fully-converged valuation, so everything downstream of the
Monte-Carlo engine (reports, ledgers, services) consumes them unchanged.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..learn.models.knn import pairwise_distances
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from .engine import ValuationResult
from .knn_shapley import knn_shapley

__all__ = ["exact_knn_shapley", "grouped_knn_utility"]


def _check_groups(groups: Sequence[np.ndarray], n_train: int) -> list[np.ndarray]:
    """Normalise and validate candidate groups: disjoint, in range."""
    cleaned: list[np.ndarray] = []
    seen = np.zeros(n_train, dtype=bool)
    for g in groups:
        g = np.asarray(g, dtype=np.int64)
        if g.size and (g.min() < 0 or g.max() >= n_train):
            raise ValueError(
                f"candidate group indexes rows outside the training set "
                f"(n_train={n_train})"
            )
        if seen[g].any():
            raise ValueError(
                "candidate groups overlap; provenance polynomials must be "
                "single variables (one owner per encoded row)"
            )
        seen[g] = True
        cleaned.append(np.sort(g))
    return cleaned


def grouped_knn_utility(
    player_subset: Sequence[int],
    groups: Sequence[np.ndarray],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_valid: np.ndarray,
    y_valid: np.ndarray,
    k: int,
    metric: str = "euclidean",
) -> float:
    """``v(S)`` of the grouped game: KNN utility of the union of groups.

    The ground truth the exact path is differential-tested against: tests
    wrap this in a :class:`~repro.importance.utility.SubsetUtility` and
    enumerate all subsets (or run high-budget Monte-Carlo) over it.
    """
    from .knn_shapley import knn_utility

    rows = [np.asarray(groups[int(p)], dtype=np.int64) for p in player_subset]
    union = (
        np.sort(np.concatenate(rows)) if rows else np.empty(0, dtype=np.int64)
    )
    return knn_utility(union, x_train, y_train, x_valid, y_valid, k, metric)


def _map_form_values(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_valid: np.ndarray,
    y_valid: np.ndarray,
    groups: list[np.ndarray],
    k: int,
    metric: str,
    block_size: int,
) -> np.ndarray:
    """Any-``k`` fast path when every player owns at most one candidate."""
    players = [p for p, g in enumerate(groups) if len(g)]
    values = np.zeros(len(groups))
    if not players:
        return values
    candidates = np.asarray([int(groups[p][0]) for p in players], dtype=np.int64)
    encoded = knn_shapley(
        x_train[candidates],
        y_train[candidates],
        x_valid,
        y_valid,
        k=k,
        metric=metric,
        block_size=block_size,
    )
    values[players] = encoded.values
    return values


def _fork_form_values(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_valid: np.ndarray,
    y_valid: np.ndarray,
    groups: list[np.ndarray],
    metric: str,
    block_size: int,
) -> np.ndarray:
    """Exact 1-NN values when players own several candidates each.

    Per test point: each player's representative is its nearest
    candidate; sorting representatives by distance yields an ordinary
    1-NN game over the players, valued by the Jia recursion with
    ``coeff_i = 1/rank_i``. Ties are broken by candidate position in the
    concatenated group order — the same stable order
    :func:`~repro.importance.knn_shapley.knn_utility` uses, so the
    brute-force differential tests see the identical game.
    """
    m = len(groups)
    players = [p for p in range(m) if len(groups[p])]
    values = np.zeros(m)
    if not players:
        return values
    positions = np.concatenate([groups[p] for p in players])
    owner = np.repeat(
        np.asarray(players, dtype=np.int64),
        [len(groups[p]) for p in players],
    )
    Xc = x_train[positions]
    yc = y_train[positions]
    for start in range(0, len(y_valid), block_size):
        block = slice(start, start + block_size)
        distances = pairwise_distances(x_valid[block], Xc, metric=metric)
        labels = y_valid[block]
        for t in range(distances.shape[0]):
            order = np.argsort(distances[t], kind="stable")
            # First occurrence of each player in distance order = its
            # representative; np.unique returns first indices for free.
            present, first = np.unique(owner[order], return_index=True)
            rep_rank = np.argsort(first, kind="stable")
            players_sorted = present[rep_rank]
            match = (
                yc[order[first[rep_rank]]] == labels[t]
            ).astype(float)
            n_present = len(players_sorted)
            s = np.empty(n_present)
            s[-1] = match[-1] / n_present
            if n_present > 1:
                ranks = np.arange(1, n_present, dtype=float)
                diffs = (match[:-1] - match[1:]) / ranks
                s[:-1] = s[-1] + np.cumsum(diffs[::-1])[::-1]
            values[players_sorted] += s
    values /= len(y_valid)
    return values


def exact_knn_shapley(
    x_train: Any,
    y_train: Any,
    x_valid: Any,
    y_valid: Any,
    groups: Sequence[np.ndarray],
    k: int = 1,
    metric: str = "euclidean",
    block_size: int = 1024,
) -> ValuationResult:
    """Exact Shapley values of the grouped KNN game, one per player.

    Parameters
    ----------
    x_train, y_train:
        The *encoded* training matrix and labels the candidate groups
        index into.
    x_valid, y_valid:
        Validation data in encoded space; values are averaged over it.
    groups:
        One candidate-index array per player (a player with an empty
        group — a source row the pipeline filtered out — is a null
        player and gets exactly zero). Groups must be disjoint.
    k:
        KNN neighbourhood size. Any ``k`` in map form; fork form requires
        ``k = 1`` (see module docstring) and raises ``ValueError``
        otherwise.

    Returns
    -------
    ValuationResult
        ``values[p]`` per player, ``stderr`` identically zero,
        ``converged=True``, ``stop_reason="exact"``, and a census with
        the compiled form and game dimensions.
    """
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_valid = np.asarray(x_valid, dtype=float)
    y_valid = np.asarray(y_valid)
    if len(x_train) != len(y_train):
        raise ValueError("x_train and y_train must have equal length")
    if len(x_valid) != len(y_valid):
        raise ValueError("x_valid and y_valid must have equal length")
    if len(y_valid) == 0:
        raise ValueError("validation set is empty")
    if k < 1:
        raise ValueError("k must be >= 1")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    groups = _check_groups(groups, len(y_train))
    m = len(groups)
    sizes = np.asarray([len(g) for g in groups], dtype=np.int64)
    form = "fork" if sizes.size and sizes.max() > 1 else "map"
    if form == "fork" and k != 1:
        raise ValueError(
            "exact grouped KNN-Shapley requires k=1 when a source row "
            "feeds multiple encoded rows (fork canonical form, max group "
            f"size {int(sizes.max())}); got k={k}. Use k=1, or fall back "
            "to method='shapley_mc' for k-NN utilities over forks."
        )
    with _obs.span(
        "importance.exact_knn",
        n_players=m,
        n_candidates=int(sizes.sum()),
        n_valid=len(y_valid),
        k=k,
        form=form,
    ):
        if form == "map":
            values = _map_form_values(
                x_train, y_train, x_valid, y_valid, groups, k, metric, block_size
            )
        else:
            values = _fork_form_values(
                x_train, y_train, x_valid, y_valid, groups, metric, block_size
            )
        if _obs.enabled():
            _obs_metrics.counter("exact_knn.runs").inc()
    return ValuationResult(
        values=values,
        stderr=np.zeros(m),
        converged=True,
        stop_reason="exact",
        census={
            "form": form,
            "n_players": m,
            "n_candidates": int(sizes.sum()),
            "n_null_players": int((sizes == 0).sum()),
            "n_valid": len(y_valid),
            "k": k,
            "n_evaluations": 0,
        },
    )
