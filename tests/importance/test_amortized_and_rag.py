"""Tests for amortized Shapley estimation and RAG corpus importance."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.datasets import make_classification
from repro.importance import (
    RetrievalCorpus,
    SubsetUtility,
    Utility,
    amortized_shapley,
    rag_importance,
)
from repro.learn import LogisticRegression


class TestAmortized:
    def test_tracks_exact_values_on_additive_game(self):
        """For an additive game whose values are a linear function of the
        features, the amortized regressor recovers them almost exactly."""
        rng = np.random.default_rng(0)
        n, d = 80, 3
        X = rng.normal(size=(n, d))
        y = rng.integers(0, 2, size=n)
        w = np.asarray([1.0, -2.0, 0.5])
        point_values = X @ w

        game = SubsetUtility(lambda S: float(sum(point_values[i] for i in S)), n)
        game.x_train = X  # amortized_shapley reads features from the utility
        game.y_train = y
        result = amortized_shapley(game, n_labelled=40, n_permutations=3, seed=0)
        rho, __ = spearmanr(result.values, point_values)
        assert rho > 0.95

    def test_detects_label_errors_cheaply(self):
        rng = np.random.default_rng(1)
        X, y = make_classification(n=140, n_features=3, seed=1)
        Xtr, ytr = X[:100], y[:100].copy()
        Xv, yv = X[100:], y[100:]
        flipped = rng.choice(100, size=15, replace=False)
        ytr[flipped] = 1 - ytr[flipped]
        mask = np.zeros(100, bool)
        mask[flipped] = True
        utility = Utility(LogisticRegression(max_iter=40), Xtr, ytr, Xv, yv)
        result = amortized_shapley(utility, n_labelled=50, n_permutations=5, seed=0)
        assert result.detection_precision_at_k(mask, 15) > 0.3  # ≫ 15% base

    def test_covers_all_points(self):
        X, y = make_classification(n=60, seed=2)
        utility = Utility(LogisticRegression(max_iter=30), X[:40], y[:40], X[40:], y[40:])
        result = amortized_shapley(utility, n_labelled=20, n_permutations=2, seed=0)
        assert len(result) == 40
        assert result.extras["n_labelled"] == 20


@pytest.fixture(scope="module")
def corpus():
    countries = [
        ("france", "paris"), ("japan", "tokyo"), ("kenya", "nairobi"),
        ("brazil", "brasilia"), ("canada", "ottawa"), ("norway", "oslo"),
        ("egypt", "cairo"), ("india", "delhi"), ("chile", "santiago"),
        ("ghana", "accra"),
    ]
    documents = [
        f"the capital city of {country} is {capital}" for country, capital in countries
    ]
    answers = [capital for __, capital in countries]
    # One poisoned document: wrong capital for france, phrased competitively.
    documents.append("the capital city of france is lyon")
    answers.append("lyon")
    from repro.text import TextEmbedder

    # A wider embedding keeps hash collisions from dominating the single
    # distinguishing token per document.
    store = RetrievalCorpus(
        documents, np.asarray(answers), embedder=TextEmbedder(n_features=256)
    )
    return store, countries


class TestRAG:
    def test_retrieval_answers_queries(self, corpus):
        store, countries = corpus
        queries = [f"what is the capital city of {c}" for c, __ in countries[1:]]
        truth = [capital for __, capital in countries[1:]]
        assert store.accuracy(queries, truth, k=1) >= 0.8

    def test_importance_flags_poisoned_document(self, corpus):
        store, countries = corpus
        queries = [f"what is the capital city of {c}" for c, __ in countries]
        truth = [capital for __, capital in countries]
        result = rag_importance(store, queries, truth, k=3)
        # The poisoned doc (last) must rank at the very bottom: it never
        # helps any query and competes with the correct france document.
        assert int(result.lowest(1)[0]) == len(store) - 1
        assert result.values[-1] <= 0
        assert result.values[-1] < result.values[:-1].min()

    def test_pruning_improves_accuracy(self, corpus):
        store, countries = corpus
        queries = [f"what is the capital city of {c}" for c, __ in countries]
        truth = [capital for __, capital in countries]
        result = rag_importance(store, queries, truth, k=3)
        pruned = store.without(result.lowest(1).tolist())
        assert pruned.accuracy(queries, truth, k=3) >= store.accuracy(
            queries, truth, k=3
        )

    def test_without_validates(self, corpus):
        store, __ = corpus
        with pytest.raises(ValueError):
            store.without(range(len(store)))

    def test_corpus_validates_lengths(self):
        with pytest.raises(ValueError):
            RetrievalCorpus(["doc"], np.asarray(["a", "b"]))
        with pytest.raises(ValueError):
            RetrievalCorpus([], np.asarray([]))
