"""Aggregate complaint resolution over predictive queries (Rain [83, 20]).

Rain's signature capability is debugging *aggregate* query complaints:
"the average predicted approval rate for sector X looks too high — which
training tuples caused that?" The resolver ranks training points by their
influence-function effect on the complained-about aggregate, removes the
most responsible ones, retrains, and verifies against the user's target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np
from scipy.special import softmax

from ..frame import DataFrame
from ..importance.influence import _hessian, per_sample_gradients
from ..learn.base import clone
from ..learn.models.logistic import LogisticRegression
from .predictive import PredictiveQuery

__all__ = ["AggregateComplaint", "AggregateResolution", "resolve_aggregate_complaint"]


@dataclass
class AggregateComplaint:
    """The aggregate for ``group`` should be on the stated side of ``target``."""

    group: Any
    target: float
    direction: str  # "at_most" | "at_least"

    def __post_init__(self) -> None:
        if self.direction not in ("at_most", "at_least"):
            raise ValueError("direction must be 'at_most' or 'at_least'")

    def is_satisfied(self, value: float) -> bool:
        if self.direction == "at_most":
            return value <= self.target + 1e-12
        return value >= self.target - 1e-12


@dataclass
class AggregateResolution:
    resolved: bool
    removed_positions: np.ndarray
    value_before: float
    value_after: float
    trace: list[dict] = field(default_factory=list)


def _aggregate_gradient(
    model: LogisticRegression, X_group: np.ndarray, positive: Any
) -> np.ndarray:
    """∇_θ of mean P(positive | x) over the group, flattened like the
    per-sample loss gradients (class-major over [features, bias])."""
    classes = list(model.classes_)
    j = classes.index(positive)
    design = np.column_stack([X_group, np.ones(len(X_group))])
    logits = X_group @ model.coef_.T + model.intercept_
    probs = softmax(logits, axis=1)
    k = len(classes)
    grad = np.zeros((k, design.shape[1]))
    for c in range(k):
        # d p_j / d z_c = p_j (δ_{jc} − p_c); d z_c / d W_c = design row.
        factor = probs[:, j] * ((1.0 if c == j else 0.0) - probs[:, c])
        grad[c] = factor @ design / len(X_group)
    return grad.reshape(-1)


def resolve_aggregate_complaint(
    query: PredictiveQuery,
    x_train: Any,
    y_train: Any,
    frame: DataFrame,
    complaint: AggregateComplaint,
    max_removals: int = 30,
    batch_size: int = 5,
    damping: float = 1e-3,
) -> AggregateResolution:
    """Remove the training points most responsible for the complaint.

    Requires the query's model to be a fitted
    :class:`~repro.learn.LogisticRegression` (the influence machinery needs
    its loss surface). Candidates are ranked by the first-order estimate of
    how much *removing* them moves the group aggregate in the complainant's
    desired direction; batches are removed with full retraining and the
    actual query re-run as the verifier.
    """
    model = query.model
    if not isinstance(model, LogisticRegression):
        raise TypeError("aggregate complaint resolution requires LogisticRegression")
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)

    result = query.run(frame)
    value_before = result.value_for(complaint.group)
    if complaint.is_satisfied(value_before):
        return AggregateResolution(
            resolved=True,
            removed_positions=np.empty(0, dtype=np.int64),
            value_before=value_before,
            value_after=value_before,
        )

    groups = np.asarray(frame.column(query.group_column).to_list())
    X_group = query.featurize(frame)[groups == complaint.group]

    # Removal effect of training point i on the aggregate a(θ):
    # Δθ ≈ H⁻¹ g_i / n  ⇒  Δa ≈ ∇aᵀ H⁻¹ g_i / n.
    H = _hessian(model, x_train, y_train, damping)
    grads = per_sample_gradients(model, x_train, y_train)
    agg_grad = _aggregate_gradient(model, X_group, query.positive)
    s = np.linalg.solve(H, agg_grad)
    removal_effect = (grads @ s) / len(y_train)
    # Positive effect = removal increases the aggregate. Order by how much
    # removal moves the value the way the complaint wants.
    desired_sign = -1.0 if complaint.direction == "at_most" else 1.0
    order = np.argsort(-desired_sign * removal_effect, kind="stable")

    removed: list[int] = []
    keep = np.ones(len(y_train), dtype=bool)
    trace: list[dict] = []
    value_after = value_before
    for start in range(0, min(max_removals, len(order)), batch_size):
        batch = order[start : start + batch_size]
        batch = batch[desired_sign * removal_effect[batch] > 0]
        if len(batch) == 0:
            break
        removed.extend(int(b) for b in batch)
        keep[batch] = False
        if len(np.unique(y_train[keep])) < 2:
            keep[batch] = True
            break
        retrained = clone(model).fit(x_train[keep], y_train[keep])
        patched_query = PredictiveQuery(
            model=retrained,
            featurize=query.featurize,
            group_column=query.group_column,
            aggregate=query.aggregate,
            positive=query.positive,
            calibrator=query.calibrator,
            decision_map=query.decision_map,
        )
        value_after = patched_query.run(frame).value_for(complaint.group)
        trace.append({"n_removed": len(removed), "value": value_after})
        if complaint.is_satisfied(value_after):
            return AggregateResolution(
                resolved=True,
                removed_positions=np.asarray(removed, dtype=np.int64),
                value_before=value_before,
                value_after=value_after,
                trace=trace,
            )
    return AggregateResolution(
        resolved=False,
        removed_positions=np.asarray(removed, dtype=np.int64),
        value_before=value_before,
        value_after=value_after,
        trace=trace,
    )
