"""Data Banzhaf importance (Wang & Jia [80]).

The Banzhaf value replaces the Shapley value's permutation weighting with a
uniform distribution over subsets, which provably maximises robustness of the
induced *ranking* to noise in the utility evaluations — the property that
matters for data debugging, where only the ranking is consumed.
"""

from __future__ import annotations

import numpy as np

from .base import ImportanceResult
from .utility import Utility

__all__ = ["banzhaf_mc"]


def banzhaf_mc(
    utility: Utility, n_samples: int = 200, seed: int = 0
) -> ImportanceResult:
    """Maximum-sample-reuse Monte-Carlo Banzhaf estimator.

    Draws ``n_samples`` subsets by independent fair coin flips per point and
    reuses *every* sample for *every* point: φ_i is estimated as the mean
    utility of sampled subsets containing i minus the mean utility of those
    not containing i (the MSR estimator of Wang & Jia).
    """
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    rng = np.random.default_rng(seed)
    n = utility.n_train
    membership = rng.random((n_samples, n)) < 0.5
    scores = np.empty(n_samples)
    for s in range(n_samples):
        scores[s] = utility.evaluate(np.flatnonzero(membership[s]))
    values = np.zeros(n)
    for i in range(n):
        with_i = membership[:, i]
        n_with = int(with_i.sum())
        if n_with == 0 or n_with == n_samples:
            values[i] = 0.0  # no contrast observed for this point
            continue
        values[i] = scores[with_i].mean() - scores[~with_i].mean()
    return ImportanceResult(
        method="banzhaf_mc",
        values=values,
        extras={"n_samples": n_samples},
    )
