"""Flight recorder: bounded ring, atomic dumps, retention, fork hygiene."""

from __future__ import annotations

import os

from repro.obs import flight as obs_flight
from repro.obs.flight import FLIGHT_SCHEMA_VERSION, FlightRecorder, load_dump


def read_dump(path):
    return load_dump(path)


class TestRing:
    def test_record_and_snapshot(self):
        rec = FlightRecorder()
        rec.record("supervision.crash", slot=1, chunk=4)
        events = rec.snapshot()
        assert len(rec) == 1
        assert events[0]["kind"] == "supervision.crash"
        assert events[0]["slot"] == 1 and events[0]["chunk"] == 4
        assert events[0]["seq"] == 0 and "ts" in events[0]

    def test_ring_is_bounded_and_keeps_newest(self):
        rec = FlightRecorder(capacity=8)
        for i in range(50):
            rec.record("e", i=i)
        events = rec.snapshot()
        assert len(events) == 8
        assert [e["i"] for e in events] == list(range(42, 50))
        assert events[-1]["seq"] == 49  # seq keeps counting past evictions

    def test_configure_resize_preserves_tail(self):
        rec = FlightRecorder(capacity=4)
        for i in range(4):
            rec.record("e", i=i)
        rec.configure(capacity=2)
        assert [e["i"] for e in rec.snapshot()] == [2, 3]

    def test_clear_empties_ring(self):
        rec = FlightRecorder()
        rec.record("e")
        rec.clear()
        assert len(rec) == 0

    def test_record_span_extracts_name_and_attrs(self):
        rec = FlightRecorder()
        rec.record_span(
            "worker[2]",
            {"name": "worker.chunk", "attrs": {"chunk": 3}, "duration": 0.1},
        )
        event = rec.snapshot()[0]
        assert event["kind"] == "span"
        assert event["origin"] == "worker[2]"
        assert event["name"] == "worker.chunk"
        assert event["attrs"] == {"chunk": 3}


class TestDump:
    def test_dump_writes_header_then_events(self, tmp_path):
        rec = FlightRecorder()
        rec.record("a", x=1)
        rec.record("b", y=2)
        path = tmp_path / "flight.jsonl"
        assert rec.dump(path, reason="test") == 2
        header, events = read_dump(path)
        assert header["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert header["kind"] == "flight_dump"
        assert header["reason"] == "test"
        assert header["n_events"] == 2
        assert [e["kind"] for e in events] == ["a", "b"]

    def test_dump_serializes_unjsonable_payloads_via_repr(self, tmp_path):
        rec = FlightRecorder()
        rec.record("weird", obj=object())
        path = tmp_path / "flight.jsonl"
        rec.dump(path)
        _, events = read_dump(path)
        assert "object object" in events[0]["obj"]

    def test_auto_dump_noop_when_unconfigured(self):
        rec = FlightRecorder()
        rec.record("e")
        assert rec.auto_dump("crash") is None

    def test_auto_dump_noop_when_ring_empty(self, tmp_path):
        rec = FlightRecorder()
        rec.configure(dump_dir=tmp_path)
        assert rec.auto_dump("crash") is None

    def test_auto_dump_writes_into_configured_dir(self, tmp_path):
        rec = FlightRecorder()
        rec.configure(dump_dir=tmp_path / "dumps")
        rec.record("supervision.crash", chunk=7)
        path = rec.auto_dump("worker-crash")
        assert path is not None and os.path.exists(path)
        assert os.path.dirname(path) == str(tmp_path / "dumps")
        header, events = read_dump(path)
        assert header["reason"] == "worker-crash"
        assert events[0]["chunk"] == 7

    def test_auto_dump_sanitizes_reason_and_numbers_files(self, tmp_path):
        rec = FlightRecorder()
        rec.configure(dump_dir=tmp_path)
        rec.record("e")
        first = rec.auto_dump("bad/reason with spaces")
        rec.record("e")
        second = rec.auto_dump("bad/reason with spaces")
        assert "/" not in os.path.basename(first).replace("flight-", "", 1)
        assert "bad-reason-with-spaces" in first
        assert first != second  # counter keeps dumps distinct


class TestForkHygiene:
    def test_inherited_ring_starts_fresh_in_child(self):
        rec = FlightRecorder()
        rec.record("parent-event")
        # Simulate a fork: the recorded pid no longer matches the process.
        rec._pid = rec._pid - 1
        assert len(rec) == 0  # guard fired, parent history gone
        rec.record("child-event")
        events = rec.snapshot()
        assert [e["kind"] for e in events] == ["child-event"]
        assert events[0]["seq"] == 0


class TestModuleFacade:
    def test_module_functions_hit_the_singleton(self, tmp_path):
        obs_flight.configure(dump_dir=tmp_path)
        obs_flight.record("facade", n=1)
        assert any(
            e["kind"] == "facade" for e in obs_flight.flight_recorder().snapshot()
        )
        path = obs_flight.auto_dump("facade-test")
        assert path is not None and os.path.exists(path)


class TestRetention:
    def _fill(self, rec, dump_dir, n):
        rec.configure(dump_dir=dump_dir)
        paths = []
        for _ in range(n):
            rec.record("e")
            paths.append(rec.auto_dump("loop"))
        return paths

    def test_keep_last_prunes_oldest_dumps(self, tmp_path):
        rec = FlightRecorder(keep_last=3)
        paths = self._fill(rec, tmp_path, 6)
        survivors = sorted(p.name for p in tmp_path.glob("flight-*.jsonl"))
        assert len(survivors) == 3
        assert survivors == sorted(os.path.basename(p) for p in paths[-3:])

    def test_keep_last_none_is_unbounded(self, tmp_path):
        rec = FlightRecorder(keep_last=None)
        self._fill(rec, tmp_path, 5)
        assert len(list(tmp_path.glob("flight-*.jsonl"))) == 5

    def test_configure_keep_last_zero_means_unbounded(self, tmp_path):
        rec = FlightRecorder(keep_last=2)
        rec.configure(keep_last=0)
        self._fill(rec, tmp_path, 4)
        assert len(list(tmp_path.glob("flight-*.jsonl"))) == 4

    def test_keep_last_validation(self):
        import pytest

        with pytest.raises(ValueError, match="keep_last"):
            FlightRecorder(keep_last=0)

    def test_prune_spares_quarantine_sidecars(self, tmp_path):
        rec = FlightRecorder(keep_last=1)
        (tmp_path / "flight-1-001-x.jsonl.corrupt").write_text("evidence\n")
        self._fill(rec, tmp_path, 3)
        assert (tmp_path / "flight-1-001-x.jsonl.corrupt").exists()
        assert len(list(tmp_path.glob("flight-*.jsonl"))) == 1

    def test_loaded_dump_round_trips_through_validation(self, tmp_path):
        rec = FlightRecorder()
        rec.record("a", x=1)
        path = tmp_path / "f.jsonl"
        rec.dump(path, reason="rt")
        header, events = load_dump(path)
        assert header["reason"] == "rt" and events[0]["x"] == 1

    def test_corrupt_dump_line_is_quarantined_not_fatal(self, tmp_path):
        rec = FlightRecorder()
        rec.record("a", x=1)
        rec.record("b", y=2)
        path = tmp_path / "f.jsonl"
        rec.dump(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear the first event
        path.write_text("\n".join(lines) + "\n")
        header, events = load_dump(path)
        assert header["kind"] == "flight_dump"
        assert [e["kind"] for e in events] == ["b"]
        assert (tmp_path / "f.jsonl.corrupt").exists()
