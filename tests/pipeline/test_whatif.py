"""Tests for data-centric what-if analysis with shared execution."""

import numpy as np
import pytest

from repro.frame import DataFrame
from repro.learn import ColumnTransformer, KNeighborsClassifier, StandardScaler
from repro.pipeline import PipelinePlan, WhatIfVariant, execute, run_what_if


@pytest.fixture()
def simple_setup():
    rng = np.random.default_rng(0)
    n = 200
    frame = DataFrame(
        {
            "x1": rng.normal(size=n),
            "x2": rng.normal(size=n),
            "segment": rng.choice(["a", "b"], size=n).astype(str),
            "label": rng.choice(["p", "n"], size=n).astype(str),
        }
    )
    plan = PipelinePlan()
    source = plan.source("t")
    return frame, plan, source


def encoder():
    return ColumnTransformer([(StandardScaler(), ["x1", "x2"])])


class TestRunWhatIf:
    def test_scores_all_variants(self, simple_setup):
        frame, plan, source = simple_setup
        variants = [
            WhatIfVariant("all", source.encode(encoder(), label_column="label")),
            WhatIfVariant(
                "only a",
                source.filter(lambda df: df["segment"] == "a", "a")
                .encode(encoder(), label_column="label"),
            ),
        ]
        report = run_what_if(
            variants, {"t": frame}, evaluate=lambda r: float(len(r.y))
        )
        assert set(report.scores) == {"all", "only a"}
        assert report.scores["all"] == frame.num_rows
        assert report.scores["only a"] < frame.num_rows

    def test_shared_prefix_executed_once(self, simple_setup):
        frame, plan, source = simple_setup
        shared = source.filter(lambda df: df["x1"] > -10, "keep all")
        variants = [
            WhatIfVariant(
                f"v{i}",
                shared.filter(lambda df, t=t: df["x2"] > t, f"x2 > {t}")
                .encode(encoder(), label_column="label"),
            )
            for i, t in enumerate((-1.0, 0.0, 1.0))
        ]
        report = run_what_if(
            variants, {"t": frame}, evaluate=lambda r: float(len(r.y))
        )
        # Executed: source + shared filter + 3 leaf filters = 5;
        # naive: 3 variants × 3 relational ops = 9.
        assert report.executed_operators == 5
        assert report.naive_operators == 9
        assert report.sharing_ratio == pytest.approx(1 - 5 / 9)

    def test_variant_results_match_independent_execution(self, simple_setup):
        """Sharing must not change results: each variant equals a fresh run."""
        frame, plan, source = simple_setup
        shared = source.filter(lambda df: df["segment"] == "a", "a")
        sink = shared.encode(encoder(), label_column="label")
        other = shared.filter(lambda df: df["x1"] > 0, "x1 > 0").encode(
            encoder(), label_column="label"
        )
        report = run_what_if(
            [WhatIfVariant("base", sink), WhatIfVariant("narrow", other)],
            {"t": frame},
            evaluate=lambda r: float(len(r.y)),
        )
        fresh = execute(sink, {"t": frame})
        assert np.allclose(report.results["base"].X, fresh.X)
        assert np.array_equal(report.results["base"].y, fresh.y)

    def test_best_and_render(self, simple_setup):
        frame, plan, source = simple_setup
        variants = [
            WhatIfVariant("all", source.encode(encoder(), label_column="label")),
            WhatIfVariant(
                "half",
                source.filter(lambda df: df["x1"] > 0, "x1>0").encode(
                    encoder(), label_column="label"
                ),
            ),
        ]
        report = run_what_if(variants, {"t": frame}, evaluate=lambda r: float(len(r.y)))
        name, score = report.best()
        assert name == "all"
        rendered = report.render()
        assert "what-if" in rendered and "saved" in rendered

    def test_duplicate_names_raise(self, simple_setup):
        frame, plan, source = simple_setup
        sink = source.encode(encoder(), label_column="label")
        with pytest.raises(ValueError):
            run_what_if(
                [WhatIfVariant("x", sink), WhatIfVariant("x", sink)],
                {"t": frame},
                evaluate=lambda r: 0.0,
            )

    def test_empty_variants_raise(self, simple_setup):
        frame, *__ = simple_setup
        with pytest.raises(ValueError):
            run_what_if([], {"t": frame}, evaluate=lambda r: 0.0)

    def test_mixed_plans_raise(self, simple_setup):
        frame, plan, source = simple_setup
        other_plan = PipelinePlan()
        foreign = other_plan.source("t").encode(encoder(), label_column="label")
        local = source.encode(encoder(), label_column="label")
        with pytest.raises(ValueError):
            run_what_if(
                [WhatIfVariant("a", local), WhatIfVariant("b", foreign)],
                {"t": frame},
                evaluate=lambda r: 0.0,
            )
