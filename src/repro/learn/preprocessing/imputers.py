"""Missing-value imputation.

Imputation is the *baseline* repair strategy the tutorial contrasts with
uncertainty-aware learning (Figure 4): Zorro propagates missing values
symbolically, while ``SimpleImputer`` commits to a single best-guess world.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from ..base import Transformer, check_matrix
from .encoders import as_cells

__all__ = ["SimpleImputer", "CellImputer"]


class SimpleImputer(Transformer):
    """Column-wise imputation on numeric matrices.

    Parameters
    ----------
    strategy:
        ``"mean"``, ``"median"``, ``"most_frequent"``, or ``"constant"``.
    fill_value:
        Used when ``strategy="constant"``.
    """

    _STRATEGIES = ("mean", "median", "most_frequent", "constant")

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0) -> None:
        if strategy not in self._STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; have {self._STRATEGIES}")
        self.strategy = strategy
        self.fill_value = float(fill_value)

    def fit(self, X: Any, y: Any = None) -> "SimpleImputer":
        X = check_matrix(X)
        fills = np.empty(X.shape[1])
        for j in range(X.shape[1]):
            present = X[~np.isnan(X[:, j]), j]
            if self.strategy == "constant" or present.size == 0:
                fills[j] = self.fill_value
            elif self.strategy == "mean":
                fills[j] = present.mean()
            elif self.strategy == "median":
                fills[j] = np.median(present)
            else:  # most_frequent
                values, counts = np.unique(present, return_counts=True)
                fills[j] = values[np.argmax(counts)]
        self.statistics_ = fills
        return self

    def transform(self, X: Any) -> np.ndarray:
        X = check_matrix(X).copy()
        for j in range(X.shape[1]):
            missing = np.isnan(X[:, j])
            X[missing, j] = self.statistics_[j]
        return X


class CellImputer(Transformer):
    """Imputation over raw cells (numeric *or* categorical).

    The paper's Figure 3 pipeline applies ``Imputer()`` to the string-typed
    ``degree`` column before one-hot encoding; this transformer covers that
    case by imputing the most frequent cell for non-numeric data.
    """

    def __init__(self, strategy: str = "most_frequent", fill_value: Any = None) -> None:
        if strategy not in ("most_frequent", "constant", "mean", "median"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X: Any, y: Any = None) -> "CellImputer":
        cells = [c for c in as_cells(X) if c is not None]
        if self.strategy == "constant":
            self.fill_ = self.fill_value
        elif not cells:
            self.fill_ = self.fill_value
        elif self.strategy == "most_frequent":
            self.fill_ = Counter(cells).most_common(1)[0][0]
        elif self.strategy == "mean":
            self.fill_ = float(np.mean([float(c) for c in cells]))
        else:  # median
            self.fill_ = float(np.median([float(c) for c in cells]))
        return self

    def transform(self, X: Any) -> list:
        return [self.fill_ if c is None else c for c in as_cells(X)]
