"""A small sentiment lexicon for the recommendation-letter scenario.

The hands-on session trains a classifier to predict the *sentiment* of a
recommendation letter. With no pretrained language model available offline,
sentiment signal enters the feature space through this lexicon: the letter
generator in :mod:`repro.datasets.letters` composes letters from phrases
whose polarity words appear here, and :class:`repro.text.TextEmbedder` emits
lexicon-hit counts as dense features.
"""

from __future__ import annotations

__all__ = ["POSITIVE_WORDS", "NEGATIVE_WORDS", "HEDGE_WORDS", "SentimentLexicon"]

POSITIVE_WORDS = frozenset(
    """
    outstanding exceptional excellent remarkable meticulous diligent
    dependable dedicated innovative resourceful insightful thorough
    conscientious proactive collaborative inspiring exemplary talented
    reliable trustworthy brilliant crucial impressive commendable
    admirable superb stellar motivated versatile rigorous thoughtful
    """.split()
)

NEGATIVE_WORDS = frozenset(
    """
    undermined concerning troubling unreliable careless negligent
    dismissive combative disorganized inconsistent uncooperative
    problematic disappointing inadequate sloppy abrasive hostile
    evasive unprofessional erratic indifferent mediocre struggled
    failed missed lacked resisted ignored slowed jeopardized
    """.split()
)

HEDGE_WORDS = frozenset(
    """
    sometimes occasionally somewhat perhaps arguably partly however
    although though yet nonetheless willingness develop improve
    """.split()
)


class SentimentLexicon:
    """Counts polarity-bearing tokens in a text."""

    def __init__(
        self,
        positive: frozenset[str] = POSITIVE_WORDS,
        negative: frozenset[str] = NEGATIVE_WORDS,
        hedges: frozenset[str] = HEDGE_WORDS,
    ) -> None:
        self.positive = positive
        self.negative = negative
        self.hedges = hedges

    @staticmethod
    def tokenize(text: str) -> list[str]:
        """Lower-cased alphabetic tokens."""
        out: list[str] = []
        word: list[str] = []
        for ch in text.lower():
            if ch.isalpha():
                word.append(ch)
            elif word:
                out.append("".join(word))
                word = []
        if word:
            out.append("".join(word))
        return out

    def counts(self, text: str) -> tuple[int, int, int]:
        """(positive, negative, hedge) token counts."""
        tokens = self.tokenize(text)
        pos = sum(1 for t in tokens if t in self.positive)
        neg = sum(1 for t in tokens if t in self.negative)
        hedge = sum(1 for t in tokens if t in self.hedges)
        return pos, neg, hedge

    def polarity(self, text: str) -> float:
        """Normalised polarity in [-1, 1]."""
        pos, neg, __ = self.counts(text)
        total = pos + neg
        return (pos - neg) / total if total else 0.0
