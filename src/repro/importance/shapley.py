"""Shapley-value data importance: exact enumeration and Monte-Carlo estimators.

Implements the Data Shapley framework of Ghorbani & Zou [21]: the value of a
training point is its average marginal contribution over all orderings.
The permutation sampler includes the *truncated* variant (TMC-Shapley),
which stops scanning a permutation once the running utility is within a
tolerance of the full-data utility — the marginal contributions beyond that
point are statistically indistinguishable from zero.
"""

from __future__ import annotations

from itertools import permutations
from math import factorial

import numpy as np

from .base import ImportanceResult
from .engine import DEFAULT_CACHE_SIZE, ValuationEngine
from .utility import Utility

__all__ = ["shapley_mc", "shapley_brute_force", "banzhaf_brute_force"]


def shapley_brute_force(utility: Utility) -> ImportanceResult:
    """Exact Shapley values by enumerating all ``n!`` permutations.

    Only feasible for tiny games (n ≤ 8); exists to validate the estimators.
    """
    n = utility.n_train
    if n > 9:
        raise ValueError(f"brute force is infeasible for n={n}")
    cache: dict[frozenset, float] = {}

    def value(subset: frozenset) -> float:
        if subset not in cache:
            cache[subset] = utility.evaluate(sorted(subset))
        return cache[subset]

    totals = np.zeros(n)
    for order in permutations(range(n)):
        seen: frozenset = frozenset()
        prev = value(seen)
        for i in order:
            seen = seen | {i}
            current = value(seen)
            totals[i] += current - prev
            prev = current
    values = totals / factorial(n)
    return ImportanceResult(method="shapley_exact", values=values)


def banzhaf_brute_force(utility: Utility) -> ImportanceResult:
    """Exact Banzhaf values by enumerating all subsets (n ≤ 16)."""
    n = utility.n_train
    if n > 16:
        raise ValueError(f"brute force is infeasible for n={n}")
    cache: dict[int, float] = {}

    def value(bits: int) -> float:
        if bits not in cache:
            subset = [i for i in range(n) if bits >> i & 1]
            cache[bits] = utility.evaluate(subset)
        return cache[bits]

    values = np.zeros(n)
    denom = 2 ** (n - 1)
    for i in range(n):
        total = 0.0
        for bits in range(2**n):
            if bits >> i & 1:
                continue
            total += value(bits | (1 << i)) - value(bits)
        values[i] = total / denom
    return ImportanceResult(method="banzhaf_exact", values=values)


def shapley_mc(
    utility: Utility | None,
    n_permutations: int = 100,
    truncation_tolerance: float = 0.0,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    convergence_tolerance: float | None = None,
    check_every: int = 10,
    antithetic: bool = False,
    deadline_s: float | None = None,
    max_evals: int | None = None,
    checkpoint=None,
    resume: bool = False,
    engine: ValuationEngine | None = None,
) -> ImportanceResult:
    """Permutation-sampling Monte-Carlo Shapley (TMC-Shapley).

    A thin wrapper over :class:`repro.importance.engine.ValuationEngine`:
    with the default ``n_workers=1`` and no convergence tolerance, values
    are identical to the historical serial implementation for the same
    seed (regression-tested), with repeated subsets answered from the
    engine's memo instead of retrained.

    Parameters
    ----------
    n_permutations:
        Number of random orderings to average over. The estimator is
        unbiased for any count; variance shrinks as 1/count.
    truncation_tolerance:
        If > 0, stop scanning a permutation once ``|v(S) − v(N)|`` falls
        below this tolerance and credit zero marginal contribution to the
        remaining points (the TMC speed-up of Ghorbani & Zou).
    n_workers, cache_size:
        Engine knobs: worker processes for the permutation fan-out and the
        LRU bound of the subset memo. The answer does not depend on
        ``n_workers``.
    convergence_tolerance:
        If set, stop drawing permutations (checked every ``check_every``)
        once the largest per-point standard error falls below it.
    antithetic:
        Scan each sampled permutation together with its reverse (variance
        reduction; changes which orderings are sampled).
    deadline_s, max_evals:
        Graceful-degradation budgets: wall-clock seconds for this call and
        total utility evaluations for the run. Exhausting either returns a
        *partial* estimate (``extras["converged"] = False`` with the
        ``stop_reason`` and per-point ``stderr``) instead of raising.
    checkpoint, resume:
        Path for wave-boundary accumulator snapshots; with ``resume=True``
        a killed run restarts from its checkpoint and finishes with values
        bit-identical to an uninterrupted run. Only consulted when the
        wrapper constructs the engine (a shared ``engine`` keeps its own
        checkpoint configuration).
    engine:
        Share an existing engine — and therefore its subset memo — across
        estimator calls. Overrides ``utility``/``n_workers``/``cache_size``.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    if engine is None:
        if utility is None:
            raise ValueError("either utility or engine must be provided")
        engine = ValuationEngine(
            utility,
            n_workers=n_workers,
            cache_size=cache_size,
            checkpoint=checkpoint,
            resume=resume,
        )
    full = engine.evaluate(range(engine.n_train))
    run = engine.run_permutations(
        n_permutations,
        seed=seed,
        truncation_tolerance=truncation_tolerance,
        convergence_tolerance=convergence_tolerance,
        check_every=check_every,
        antithetic=antithetic,
        deadline_s=deadline_s,
        max_evals=max_evals,
    )
    null = engine.evaluate(())
    result = engine.result_from_run(run, n_permutations)
    return ImportanceResult(
        method="shapley_mc",
        values=run.values(),
        extras={
            "n_permutations": n_permutations,
            "n_permutations_run": run.n_permutations,
            "truncated_scans": run.truncated_scans,
            "full_score": full,
            "null_score": null,
            "stopped_early": run.stopped_early,
            "max_stderr": run.max_stderr,
            "antithetic": antithetic,
            "converged": result.converged,
            "stop_reason": result.stop_reason,
            "stderr": result.stderr,
            "census": result.census,
            **engine.stats(),
        },
    )
