"""Data importance for data-error detection (survey Section 2.1).

All methods share one container (:class:`ImportanceResult`) and one sign
convention — higher = more beneficial — so the cleaning and benchmarking
code can treat them interchangeably:

=====================  =============================================  ==========
method                 cost profile                                   needs
=====================  =============================================  ==========
``loo_importance``     n + 1 retrainings                              valid set
``shapley_mc``         n_permutations · n retrainings (truncatable)   valid set
``banzhaf_mc``         n_samples retrainings (max sample reuse)       valid set
``beta_shapley_mc``    like ``shapley_mc``                            valid set
``knn_shapley``        exact, O(n log n) per validation point         valid set
``exact_knn_shapley``  exact, per *pipeline source row* (PTIME)       canonical form
``influence``          1 training + 1 linear solve                    valid set
``tracin``             1 training + matrix product                    valid set
``confident_learning`` k-fold cross-validation                        labels only
``aum_importance``     one gradient-descent run                       labels only
``gopher``             one retraining per candidate predicate         fairness metric
=====================  =============================================  ==========
"""

from __future__ import annotations

import numpy as np

from .amortized import AmortizedImportance, amortized_shapley
from .aum import aum_importance
from .banzhaf import banzhaf_mc
from .base import ImportanceResult
from .beta_shapley import beta_shapley_mc, beta_weights
from .checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    config_fingerprint,
)
from .confident import confident_learning, out_of_sample_probabilities
from .engine import (
    DEFAULT_CACHE_SIZE,
    PermutationRun,
    SubsetCache,
    ValuationEngine,
    ValuationResult,
    parallel_map,
)
from .exact_knn import exact_knn_shapley, grouped_knn_utility
from .gopher import FairnessExplanation, Predicate, gopher_explanations
from .pool import (
    PoolRegistry,
    PoolUnavailable,
    WorkerPool,
    valuation_pool,
)
from .shm import SharedArrayBundle, reap_stale_segments
from .influence import influence_importance, per_sample_gradients, tracin_importance
from .knn_shapley import knn_shapley, knn_shapley_brute_force, knn_utility
from .loo import loo_importance
from .rag import RetrievalCorpus, rag_importance
from .shapley import banzhaf_brute_force, shapley_brute_force, shapley_mc
from .supervision import (
    ChunkDispatcher,
    ChunkFailure,
    DeadlinePolicy,
    SupervisionStats,
)
from .utility import SubsetUtility, Utility

__all__ = [
    "ImportanceResult",
    "AmortizedImportance",
    "amortized_shapley",
    "DEFAULT_CACHE_SIZE",
    "PermutationRun",
    "SubsetCache",
    "ValuationEngine",
    "ValuationResult",
    "parallel_map",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "config_fingerprint",
    "ChunkDispatcher",
    "ChunkFailure",
    "DeadlinePolicy",
    "SupervisionStats",
    "PoolRegistry",
    "PoolUnavailable",
    "WorkerPool",
    "valuation_pool",
    "SharedArrayBundle",
    "reap_stale_segments",
    "RetrievalCorpus",
    "rag_importance",
    "Utility",
    "SubsetUtility",
    "aum_importance",
    "banzhaf_mc",
    "banzhaf_brute_force",
    "beta_shapley_mc",
    "beta_weights",
    "confident_learning",
    "out_of_sample_probabilities",
    "FairnessExplanation",
    "Predicate",
    "gopher_explanations",
    "exact_knn_shapley",
    "grouped_knn_utility",
    "influence_importance",
    "per_sample_gradients",
    "tracin_importance",
    "knn_shapley",
    "knn_shapley_brute_force",
    "knn_utility",
    "loo_importance",
    "shapley_brute_force",
    "shapley_mc",
    "random_importance",
]


def random_importance(n: int, seed: int = 0) -> ImportanceResult:
    """Uniform-random scores — the baseline every method must beat."""
    rng = np.random.default_rng(seed)
    return ImportanceResult(method="random", values=rng.random(n))
