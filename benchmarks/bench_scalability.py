"""Experiment T-scale — cost scaling of importance computation.

Section 2.1's "Overcoming Computational Challenges" motivates two levers:
the KNN proxy (closed form, no retraining) and Monte-Carlo truncation
(TMC stops scanning a permutation once the utility saturates). This bench
reports, as the training-set size grows:

- wall-clock of the closed-form methods (KNN-Shapley, influence),
- wall-clock *and retraining counts* of the retraining-based methods
  (LOO: exactly n+1 retrainings; truncated MC: sub-linear scans).

Shapes to reproduce: the wall-clock gap between LOO and the closed-form
methods widens with n; TMC's retraining count grows *sub-linearly* (the
truncation savings grow with n).

The second experiment (T-engine) exercises the shared valuation engine's
cost levers on the same MC-Shapley workload: process fan-out
(``n_workers``), subset memoization (a warm cache turns repeat
valuations into pure lookups), and the persistent shared-memory worker
pool (fork-per-run fan-out paid process creation and a cache snapshot on
every call; the pool pays them once and streams only chunk descriptors).
All engine configurations produce bit-identical values by construction —
including the evaluation census — and only the wall-clock changes.

The pool speedup gates are hardware-conditioned: they only bind when the
machine actually has ``ENGINE_WORKERS`` cores (CI runners do; a 1-core
sandbox reports the ratios without asserting them).

Sizes are env-tunable so CI can smoke-test the bench in seconds:
``REPRO_BENCH_SIZES=30,60`` and ``REPRO_BENCH_ENGINE_N=24``
``REPRO_BENCH_ENGINE_PERMS=4``.
"""

import os
import time

import numpy as np

from repro.datasets import make_classification
from repro.importance import (
    Utility,
    ValuationEngine,
    WorkerPool,
    influence_importance,
    knn_shapley,
    loo_importance,
    shapley_mc,
)
from repro.learn import LogisticRegression
from repro.viz import format_records


def _env_sizes(name: str, default: list[int]) -> list[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    return [int(part) for part in raw.split(",") if part.strip()]


SIZES = _env_sizes("REPRO_BENCH_SIZES", [50, 100, 200, 400])
# Env-overridden sizes mean a smoke run (CI): keep the exact invariants but
# skip the scaling-shape assertions, which only hold at real sizes.
SMOKE = bool(os.environ.get("REPRO_BENCH_SIZES", "").strip())
N_VALID = 50
MC_PERMUTATIONS = 3

ENGINE_N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "80"))
ENGINE_PERMUTATIONS = int(os.environ.get("REPRO_BENCH_ENGINE_PERMS", "8"))
ENGINE_WORKERS = 4


def _effective_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def time_methods(n: int) -> dict:
    X, y = make_classification(n=n + N_VALID, n_features=4, seed=1)
    Xtr, ytr = X[:n], y[:n]
    Xv, yv = X[n:], y[n:]
    row: dict = {"n_train": n}

    start = time.perf_counter()
    knn_shapley(Xtr, ytr, Xv, yv, k=5)
    row["knn_shapley_s"] = round(time.perf_counter() - start, 4)

    model = LogisticRegression(max_iter=60).fit(Xtr, ytr)
    start = time.perf_counter()
    influence_importance(model, Xtr, ytr, Xv, yv)
    row["influence_s"] = round(time.perf_counter() - start, 4)

    utility = Utility(LogisticRegression(max_iter=30), Xtr, ytr, Xv, yv)
    start = time.perf_counter()
    loo_importance(utility)
    row["loo_s"] = round(time.perf_counter() - start, 4)
    row["loo_retrainings"] = utility.n_evaluations

    utility = Utility(LogisticRegression(max_iter=30), Xtr, ytr, Xv, yv)
    start = time.perf_counter()
    shapley_mc(
        utility,
        n_permutations=MC_PERMUTATIONS,
        truncation_tolerance=0.02,
        seed=0,
    )
    row["tmc_s"] = round(time.perf_counter() - start, 4)
    row["tmc_retrainings"] = utility.n_evaluations
    # Untruncated MC would need n retrainings per permutation.
    row["tmc_savings"] = round(
        1.0 - row["tmc_retrainings"] / (MC_PERMUTATIONS * n), 3
    )
    return row


def run_scaling() -> list[dict]:
    return [time_methods(n) for n in SIZES]


def test_scalability(benchmark, write_report):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    write_report("scalability", format_records(rows), records=rows)

    for row in rows:
        # LOO cost is exactly n + 1 utility evaluations.
        assert row["loo_retrainings"] == row["n_train"] + 1
        if not SMOKE:
            # Closed-form methods are much cheaper than n+1 retrainings.
            assert row["knn_shapley_s"] < row["loo_s"]
            assert row["influence_s"] < row["loo_s"]

    if SMOKE:
        return
    first, last = rows[0], rows[-1]
    # The absolute wall-clock gap between LOO and KNN-Shapley widens with n.
    assert (last["loo_s"] - last["knn_shapley_s"]) > (
        first["loo_s"] - first["knn_shapley_s"]
    )
    # Truncation savings grow with n (the utility saturates earlier,
    # relatively speaking).
    assert last["tmc_savings"] >= first["tmc_savings"]


# --------------------------------------------------------------------- #
# T-engine: fan-out and memoization on the shared valuation engine      #
# --------------------------------------------------------------------- #


def _engine_task():
    X, y = make_classification(n=ENGINE_N + N_VALID, n_features=4, seed=1)
    return Utility(
        LogisticRegression(max_iter=30),
        X[:ENGINE_N], y[:ENGINE_N], X[ENGINE_N:], y[ENGINE_N:],
    )


def _timed_run(engine, label: str) -> dict:
    start = time.perf_counter()
    result = shapley_mc(
        None, n_permutations=ENGINE_PERMUTATIONS, seed=0, engine=engine
    )
    elapsed = time.perf_counter() - start
    cache = result.extras["cache"]
    return {
        "config": label,
        "wall_s": round(elapsed, 4),
        "n_evaluations": result.extras["n_evaluations"],
        "cache_hits": cache["hits"],
        "cache_hit_rate": round(cache["hit_rate"], 4),
        "values": result.values,
        "_elapsed": elapsed,
    }


def run_engine_sweep() -> list[dict]:
    serial = _timed_run(ValuationEngine(_engine_task(), n_workers=1), "serial_cold")
    fanned_engine = ValuationEngine(_engine_task(), n_workers=ENGINE_WORKERS)
    fanned = _timed_run(fanned_engine, f"parallel{ENGINE_WORKERS}_cold")
    # Same engine again: every subset the permutation scan needs is cached.
    warm = _timed_run(fanned_engine, f"parallel{ENGINE_WORKERS}_warm")

    # The persistent pool: processes forked and arrays published ONCE
    # (pool_setup_s, reported separately — it amortizes over every later
    # run), then the cold run streams only chunk descriptors.
    pool_utility = _engine_task()
    setup_start = time.perf_counter()
    pool = WorkerPool(pool_utility, n_workers=ENGINE_WORKERS)
    pool_setup_s = time.perf_counter() - setup_start
    pool_cold = _timed_run(
        ValuationEngine(pool_utility, n_workers=ENGINE_WORKERS, pool=pool),
        f"pool{ENGINE_WORKERS}_cold",
    )
    pool_cold["pool_setup_s"] = round(pool_setup_s, 4)
    pool_cold["pool_mode"] = pool.mode
    # A *fresh* engine on the same warm pool: the workers' local caches
    # (kept coherent by the journal) answer everything — the service
    # runtime's repeat-job case.
    pool_warm = _timed_run(
        ValuationEngine(_engine_task(), n_workers=ENGINE_WORKERS, pool=pool),
        f"pool{ENGINE_WORKERS}_warm",
    )
    pool.close()

    # A convergence-stopped run on a fresh engine, for the stopping column.
    converged_engine = ValuationEngine(_engine_task(), n_workers=1)
    start = time.perf_counter()
    converged = shapley_mc(
        None,
        n_permutations=ENGINE_PERMUTATIONS * 8,
        seed=0,
        convergence_tolerance=0.05,
        check_every=ENGINE_PERMUTATIONS,
        engine=converged_engine,
    )
    rows = [serial, fanned, warm, pool_cold, pool_warm]
    rows.append(
        {
            "config": "serial_converged",
            "wall_s": round(time.perf_counter() - start, 4),
            "n_evaluations": converged.extras["n_evaluations"],
            "cache_hits": converged.extras["cache"]["hits"],
            "cache_hit_rate": round(converged.extras["cache"]["hit_rate"], 4),
            "values": converged.values,
            "_elapsed": 0.0,
            "stopped_early": converged.extras["stopped_early"],
            "n_permutations_run": converged.extras["n_permutations_run"],
        }
    )
    return rows


def test_engine_speedup(benchmark, write_report):
    rows = benchmark.pedantic(run_engine_sweep, rounds=1, iterations=1)
    serial, fanned, warm, pool_cold, pool_warm, converged = rows

    # Determinism across every configuration: bit-identical values.
    for row in (fanned, warm, pool_cold, pool_warm):
        assert np.array_equal(serial["values"], row["values"])
    # ... and a bit-identical evaluation census: the pooled cold run
    # retrains exactly as often as serial (duplicate subsets evaluated by
    # independent workers are charged once, like any other cache hit).
    assert pool_cold["n_evaluations"] == serial["n_evaluations"]
    # A fresh engine on the warm pool retrains nothing at all.
    assert pool_warm["n_evaluations"] == 0

    cores = _effective_cores()
    speedups = {
        "fanout_speedup": serial["_elapsed"] / max(fanned["_elapsed"], 1e-9),
        "warm_cache_speedup": serial["_elapsed"] / max(warm["_elapsed"], 1e-9),
        "pool_cold_speedup": serial["_elapsed"]
        / max(pool_cold["_elapsed"], 1e-9),
        "pool_warm_speedup": serial["_elapsed"]
        / max(pool_warm["_elapsed"], 1e-9),
        "pool_vs_fork_cold": fanned["_elapsed"]
        / max(pool_cold["_elapsed"], 1e-9),
    }
    report_rows = []
    for row in rows:
        cleaned = {
            k: v for k, v in row.items() if k not in ("values", "_elapsed")
        }
        report_rows.append(cleaned)
    summary = dict(
        {k: round(v, 4) for k, v in speedups.items()},
        n_train=ENGINE_N,
        n_permutations=ENGINE_PERMUTATIONS,
        n_workers=ENGINE_WORKERS,
        effective_cores=cores,
        pool_mode=pool_cold["pool_mode"],
        identical_values=True,
        identical_census=True,
    )
    text = format_records(report_rows) + "\n" + format_records([summary])
    write_report(
        "engine_speedup", text, records={"runs": report_rows, "summary": summary}
    )

    # Cold runs must actually retrain; the warm run must be almost pure
    # cache traffic — zero new model fits and a (near-)unity hit rate.
    assert serial["cache_hit_rate"] < 1.0
    assert warm["cache_hit_rate"] > 0.0
    assert warm["n_evaluations"] == fanned["n_evaluations"]  # no new fits
    # Memoization at n_workers=4 beats the cold serial path ≥ 2×. (Fan-out
    # speedup is reported, not asserted: it depends on available cores.)
    assert speedups["warm_cache_speedup"] >= 2.0
    # The pool's cold-start gates only bind on hardware that can actually
    # run ENGINE_WORKERS processes at once — CI runners can; a single-core
    # sandbox just reports the ratios. Smoke sizes (tiny chunks, fixed
    # per-chunk overhead) get the softer CI gate; real sizes must hit 3x.
    if cores >= ENGINE_WORKERS:
        assert speedups["pool_cold_speedup"] > (1.5 if SMOKE else 3.0)
    # Convergence stopping must spend fewer evaluations than its budget
    # (8× the base permutation count) would imply.
    assert converged["n_permutations_run"] <= ENGINE_PERMUTATIONS * 8
