"""Low-latency machine unlearning (survey Section 2.4's open direction)."""

from .forest import RemovalAwareForest
from .forgetting import RemovalAwareKNN, UnlearningReport, newton_unlearn

__all__ = [
    "RemovalAwareForest",
    "RemovalAwareKNN",
    "UnlearningReport",
    "newton_unlearn",
]
