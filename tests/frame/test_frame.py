"""Unit tests for repro.frame.DataFrame."""

import numpy as np
import pytest

from repro.frame import Column, DataFrame


class TestConstruction:
    def test_shape_and_columns(self, simple_frame):
        assert simple_frame.shape == (5, 4)
        assert simple_frame.columns == ["a", "b", "c", "flag"]

    def test_default_row_ids(self, simple_frame):
        assert simple_frame.row_ids.tolist() == [0, 1, 2, 3, 4]

    def test_custom_row_ids(self):
        df = DataFrame({"a": [1, 2]}, row_ids=[10, 20])
        assert df.row_ids.tolist() == [10, 20]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_row_ids_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1, 2]}, row_ids=[1])

    def test_empty_frame(self):
        df = DataFrame({})
        assert df.shape == (0, 0)


class TestSelection:
    def test_getitem_column(self, simple_frame):
        assert isinstance(simple_frame["a"], Column)

    def test_getitem_projection(self, simple_frame):
        sub = simple_frame[["a", "c"]]
        assert sub.columns == ["a", "c"]
        assert sub.row_ids.tolist() == simple_frame.row_ids.tolist()

    def test_getitem_bool_mask(self, simple_frame):
        sub = simple_frame[simple_frame["a"] > 3]
        assert sub.num_rows == 2
        assert sub.row_ids.tolist() == [3, 4]

    def test_getitem_unknown_column_raises(self, simple_frame):
        with pytest.raises(KeyError):
            simple_frame["nope"]

    def test_getitem_bad_type_raises(self, simple_frame):
        with pytest.raises(TypeError):
            simple_frame[3.14]

    def test_take_preserves_row_ids(self, simple_frame):
        sub = simple_frame.take([4, 0])
        assert sub.row_ids.tolist() == [4, 0]
        assert sub["a"].to_list() == [5, 1]

    def test_head(self, simple_frame):
        assert simple_frame.head(2).num_rows == 2

    def test_sample_no_duplicates(self, simple_frame):
        sub = simple_frame.sample(3, rng=0)
        assert len(set(sub.row_ids.tolist())) == 3

    def test_filter_shape_mismatch_raises(self, simple_frame):
        with pytest.raises(ValueError):
            simple_frame.filter(np.asarray([True]))

    def test_positions_of(self, simple_frame):
        pos = simple_frame.positions_of([4, 2])
        assert pos.tolist() == [4, 2]

    def test_positions_of_missing_raises(self, simple_frame):
        with pytest.raises(KeyError):
            simple_frame.positions_of([99])


class TestSort:
    def test_sort_ascending(self):
        df = DataFrame({"v": [3.0, 1.0, 2.0]})
        assert df.sort_values("v")["v"].to_list() == [1.0, 2.0, 3.0]

    def test_sort_descending(self):
        df = DataFrame({"v": [3.0, 1.0, 2.0]})
        assert df.sort_values("v", ascending=False)["v"].to_list() == [3.0, 2.0, 1.0]

    def test_missing_sorts_last(self):
        df = DataFrame({"v": [3.0, None, 1.0]})
        assert df.sort_values("v")["v"].to_list() == [1.0, 3.0, None]
        assert df.sort_values("v", ascending=False)["v"].to_list() == [3.0, 1.0, None]


class TestColumnManipulation:
    def test_setitem_adds_column(self, simple_frame):
        simple_frame["d"] = [9] * 5
        assert "d" in simple_frame

    def test_setitem_length_mismatch_raises(self, simple_frame):
        with pytest.raises(ValueError):
            simple_frame["d"] = [1, 2]

    def test_drop(self, simple_frame):
        assert simple_frame.drop("a").columns == ["b", "c", "flag"]

    def test_drop_unknown_raises(self, simple_frame):
        with pytest.raises(KeyError):
            simple_frame.drop("zz")

    def test_rename(self, simple_frame):
        assert "alpha" in simple_frame.rename({"a": "alpha"})

    def test_assign_returns_copy(self, simple_frame):
        out = simple_frame.assign(d=[0] * 5)
        assert "d" in out and "d" not in simple_frame

    def test_map_column(self, simple_frame):
        out = simple_frame.map_column("a", lambda v: v * 2, into="a2")
        assert out["a2"].to_list() == [2.0, 4.0, 6.0, 8.0, 10.0]


class TestSetRows:
    def test_set_rows_replaces_values(self, simple_frame):
        replacement = simple_frame.take([0])
        out = simple_frame.set_rows([4], replacement)
        assert out["a"].to_list()[4] == 1

    def test_set_rows_preserves_row_ids(self, simple_frame):
        out = simple_frame.set_rows([4], simple_frame.take([0]))
        assert out.row_ids.tolist() == simple_frame.row_ids.tolist()

    def test_set_rows_restores_missing_state(self, simple_frame):
        clean = simple_frame.take([2])  # row 2 has missing b
        out = simple_frame.set_rows([0], clean)
        assert out["b"].to_list()[0] is None

    def test_set_rows_count_mismatch_raises(self, simple_frame):
        with pytest.raises(ValueError):
            simple_frame.set_rows([0, 1], simple_frame.take([0]))

    def test_set_cell(self, simple_frame):
        out = simple_frame.set_cell(0, "a", 99)
        assert out["a"].to_list()[0] == 99


class TestJoin:
    def setup_method(self):
        self.left = DataFrame(
            {"k": ["a", "b", "c", None], "v": [1, 2, 3, 4]}, row_ids=[10, 11, 12, 13]
        )
        self.right = DataFrame({"k": ["a", "b"], "w": [100, 200]})

    def test_left_join_keeps_unmatched(self):
        out = self.left.join(self.right, on="k", how="left")
        assert out.num_rows == 4
        assert out["w"].to_list() == [100, 200, None, None]

    def test_left_join_keeps_left_row_ids(self):
        out = self.left.join(self.right, on="k", how="left")
        assert out.row_ids.tolist() == [10, 11, 12, 13]

    def test_inner_join_drops_unmatched(self):
        out = self.left.join(self.right, on="k", how="inner")
        assert out.num_rows == 2
        assert out.row_ids.tolist() == [10, 11]

    def test_missing_key_never_matches(self):
        out = self.left.join(self.right, on="k", how="inner")
        assert 13 not in out.row_ids.tolist()

    def test_fuzzy_join_normalises_keys(self):
        messy = DataFrame({"k": ["  A ", "b"], "v": [1, 2]})
        out = messy.join(self.right, on="k", how="inner", fuzzy=True)
        assert out.num_rows == 2

    def test_exact_join_misses_messy_keys(self):
        messy = DataFrame({"k": ["  A ", "b"], "v": [1, 2]})
        out = messy.join(self.right, on="k", how="inner", fuzzy=False)
        assert out.num_rows == 1

    def test_column_name_collision_gets_suffix(self):
        right = DataFrame({"k": ["a"], "v": [99]})
        out = self.left.join(right, on="k", how="left")
        assert "v_right" in out.columns

    def test_return_indices(self):
        out, lpos, rpos = self.left.join(
            self.right, on="k", how="left", return_indices=True
        )
        assert lpos.tolist() == [0, 1, 2, 3]
        assert rpos.tolist() == [0, 1, -1, -1]

    def test_bad_how_raises(self):
        with pytest.raises(ValueError):
            self.left.join(self.right, on="k", how="outer")


class TestConcatAndGroupBy:
    def test_concat_rows(self):
        a = DataFrame({"v": [1]}, row_ids=[0])
        b = DataFrame({"v": [2]}, row_ids=[5])
        out = DataFrame.concat_rows([a, b])
        assert out["v"].to_list() == [1, 2]
        assert out.row_ids.tolist() == [0, 5]

    def test_concat_mismatched_columns_raises(self):
        with pytest.raises(ValueError):
            DataFrame.concat_rows([DataFrame({"v": [1]}), DataFrame({"w": [1]})])

    def test_groupby_agg_mean(self):
        df = DataFrame({"g": ["a", "a", "b"], "v": [1.0, 3.0, 10.0]})
        out = df.groupby("g").agg({"v": "mean"})
        rows = {r["g"]: r["v_mean"] for r in out.to_rows()}
        assert rows == {"a": 2.0, "b": 10.0}

    def test_groupby_size(self):
        df = DataFrame({"g": ["a", "a", "b"]})
        out = df.groupby("g").size()
        assert {r["g"]: r["size"] for r in out.to_rows()} == {"a": 2, "b": 1}

    def test_groupby_multi_key(self):
        df = DataFrame({"g": ["a", "a"], "h": ["x", "y"], "v": [1.0, 2.0]})
        out = df.groupby(["g", "h"]).agg({"v": "sum"})
        assert out.num_rows == 2

    def test_groupby_unknown_agg_raises(self):
        df = DataFrame({"g": ["a"], "v": [1.0]})
        with pytest.raises(ValueError):
            df.groupby("g").agg({"v": "frobnicate"})


class TestConversionAndEquality:
    def test_to_rows(self, simple_frame):
        rows = simple_frame.to_rows()
        assert rows[2]["b"] is None
        assert rows[0]["a"] == 1

    def test_to_numpy_selected(self, simple_frame):
        mat = simple_frame.to_numpy(["a", "c"])
        assert mat.shape == (5, 2)
        assert np.isnan(mat[1, 1])

    def test_to_numpy_non_numeric_raises(self, simple_frame):
        with pytest.raises(TypeError):
            simple_frame.to_numpy(["b"])

    def test_equals_self_copy(self, simple_frame):
        assert simple_frame.equals(simple_frame.copy())

    def test_not_equals_after_edit(self, simple_frame):
        other = simple_frame.set_cell(0, "a", 99)
        assert not simple_frame.equals(other)

    def test_copy_is_deep(self, simple_frame):
        clone = simple_frame.copy()
        clone["a"] = [0] * 5
        assert simple_frame["a"].to_list() == [1, 2, 3, 4, 5]

    def test_null_counts(self, simple_frame):
        assert simple_frame.null_counts() == {"a": 0, "b": 1, "c": 1, "flag": 0}
