"""Dataset splitting and cross-validation."""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from ..frame import DataFrame
from .base import Estimator, clone

__all__ = ["train_test_split", "split_frame", "KFold", "cross_val_score"]


def train_test_split(
    X: Any,
    y: Any,
    test_size: float = 0.25,
    seed: int | None = 0,
    stratify: Any = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random (optionally stratified) split of an (X, y) pair."""
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have equal length")
    train_idx, test_idx = _split_indices(len(y), test_size, seed, stratify)
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def _split_indices(
    n: int, test_size: float, seed: int | None, stratify: Any
) -> tuple[np.ndarray, np.ndarray]:
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(seed)
    if stratify is None:
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_size)))
        return np.sort(order[n_test:]), np.sort(order[:n_test])
    strata = np.asarray(stratify)
    test_parts = []
    for value in np.unique(strata):
        members = np.flatnonzero(strata == value)
        members = rng.permutation(members)
        n_test = max(1, int(round(len(members) * test_size)))
        test_parts.append(members[:n_test])
    test_idx = np.sort(np.concatenate(test_parts))
    train_mask = np.ones(n, dtype=bool)
    train_mask[test_idx] = False
    return np.flatnonzero(train_mask), test_idx


def split_frame(
    frame: DataFrame,
    fractions: tuple[float, ...] = (0.6, 0.2, 0.2),
    seed: int | None = 0,
) -> tuple[DataFrame, ...]:
    """Split a DataFrame into consecutive random partitions (e.g. train/valid/test)."""
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("fractions must sum to 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(frame.num_rows)
    out = []
    start = 0
    for i, fraction in enumerate(fractions):
        if i == len(fractions) - 1:
            chunk = order[start:]
        else:
            size = int(round(frame.num_rows * fraction))
            chunk = order[start : start + size]
            start += size
        out.append(frame.take(np.sort(chunk)))
    return tuple(out)


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int | None = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.seed = seed

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} examples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            indices = np.random.default_rng(self.seed).permutation(n)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = np.sort(folds[i])
            train_idx = np.sort(np.concatenate([f for j, f in enumerate(folds) if j != i]))
            yield train_idx, test_idx


def cross_val_score(
    model: Estimator, X: Any, y: Any, n_splits: int = 5, seed: int | None = 0
) -> np.ndarray:
    """Accuracy (or estimator-defined score) per fold."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in KFold(n_splits, seed=seed).split(len(y)):
        fold_model = clone(model)
        fold_model.fit(X[train_idx], y[train_idx])
        scores.append(fold_model.score(X[test_idx], y[test_idx]))
    return np.asarray(scores)
