"""Preprocessing-pipeline search (DiffPrep [44] / SAGA [76], greedy form).

Those systems search the combinatorial space of preprocessing choices
(which imputer, which scaler, which filter...) for the configuration that
maximises downstream model quality. This module implements the search on
top of the shared-execution what-if engine: a *search space* is a list of
named dimensions, each offering alternative pipeline-builder callables; the
searcher enumerates (grid) or greedily coordinate-descends the space, with
every evaluated variant sharing its common prefix computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from ..frame import DataFrame
from .execute import PipelineResult
from .operators import Node, PipelinePlan
from .whatif import WhatIfVariant, run_what_if

__all__ = ["SearchDimension", "SearchResult", "grid_search", "greedy_search"]


@dataclass
class SearchDimension:
    """One preprocessing choice: named alternatives for a pipeline stage.

    Each option is a callable ``(plan_state) -> plan_state`` applied in
    sequence by the pipeline builder; the semantics of ``plan_state`` are
    defined by the caller's ``build`` function (typically a node, or a dict
    of configuration accumulated and consumed at build time).
    """

    name: str
    options: dict[str, Any]

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError(f"dimension {self.name!r} has no options")


@dataclass
class SearchResult:
    """Outcome of a pipeline search."""

    best_config: dict[str, str]
    best_score: float
    evaluations: list[dict] = field(default_factory=list)
    executed_operators: int = 0
    naive_operators: int = 0

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluations)

    def render(self) -> str:
        lines = [
            f"pipeline search: best score {self.best_score:.4f} with "
            + ", ".join(f"{k}={v}" for k, v in self.best_config.items())
        ]
        for record in sorted(self.evaluations, key=lambda r: -r["score"])[:10]:
            config = ", ".join(
                f"{k}={v}" for k, v in record.items() if k != "score"
            )
            lines.append(f"  {record['score']:.4f}  {config}")
        if self.naive_operators:
            saved = 1.0 - self.executed_operators / self.naive_operators
            lines.append(
                f"  shared execution saved {saved:.0%} of operator runs"
            )
        return "\n".join(lines)


def _evaluate_configs(
    configs: list[dict[str, str]],
    build: Callable[..., Node],
    sources: Mapping[str, DataFrame],
    evaluate: Callable[[PipelineResult], float],
) -> tuple[list[dict], int, int]:
    """Build all configs on one plan (maximising sharing) and score them.

    ``build`` is called as ``build(plan, config, shared)`` when it accepts
    three arguments, where ``shared`` is a dict living for the whole batch:
    builders memoize their relational prefixes there (keyed by whatever part
    of the config shapes the prefix), so variants that agree on the prefix
    reuse the *same node objects* and the executor runs them once.
    Two-argument builders are supported but forgo sharing.
    """
    import inspect

    plan = PipelinePlan()
    shared: dict = {}
    takes_shared = len(inspect.signature(build).parameters) >= 3
    variants = []
    for i, config in enumerate(configs):
        sink = build(plan, config, shared) if takes_shared else build(plan, config)
        variants.append(WhatIfVariant(name=f"cfg{i}", sink=sink))
    report = run_what_if(variants, sources, evaluate)
    records = []
    for i, config in enumerate(configs):
        records.append({**config, "score": report.scores[f"cfg{i}"]})
    return records, report.executed_operators, report.naive_operators


def grid_search(
    dimensions: Sequence[SearchDimension],
    build: Callable[[PipelinePlan, dict[str, str]], Node],
    sources: Mapping[str, DataFrame],
    evaluate: Callable[[PipelineResult], float],
) -> SearchResult:
    """Exhaustive search over the cross-product of all dimension options.

    ``build(plan, config)`` constructs the pipeline sink for a configuration
    (mapping dimension name → chosen option key) **on the given plan**, so
    configurations sharing relational prefixes share their execution.
    """
    names = [d.name for d in dimensions]
    configs = [
        dict(zip(names, choice))
        for choice in product(*(list(d.options) for d in dimensions))
    ]
    records, executed, naive = _evaluate_configs(configs, build, sources, evaluate)
    best = max(records, key=lambda r: r["score"])
    return SearchResult(
        best_config={k: best[k] for k in names},
        best_score=best["score"],
        evaluations=records,
        executed_operators=executed,
        naive_operators=naive,
    )


def greedy_search(
    dimensions: Sequence[SearchDimension],
    build: Callable[[PipelinePlan, dict[str, str]], Node],
    sources: Mapping[str, DataFrame],
    evaluate: Callable[[PipelineResult], float],
    n_rounds: int = 2,
) -> SearchResult:
    """Coordinate-descent search: optimise one dimension at a time.

    Evaluates ``O(rounds · Σ|options|)`` configurations instead of the full
    ``Π|options|`` grid — the SAGA-style scalable alternative. Each round's
    sweep over one dimension is a shared-execution what-if batch.
    """
    current = {d.name: next(iter(d.options)) for d in dimensions}
    evaluations: list[dict] = []
    executed_total = 0
    naive_total = 0
    best_score = float("-inf")
    for __ in range(n_rounds):
        improved = False
        for dimension in dimensions:
            configs = [
                {**current, dimension.name: option} for option in dimension.options
            ]
            records, executed, naive = _evaluate_configs(
                configs, build, sources, evaluate
            )
            evaluations.extend(records)
            executed_total += executed
            naive_total += naive
            winner = max(records, key=lambda r: r["score"])
            if winner["score"] > best_score:
                best_score = winner["score"]
                improved = improved or winner[dimension.name] != current[dimension.name]
                current[dimension.name] = winner[dimension.name]
        if not improved:
            break
    return SearchResult(
        best_config=dict(current),
        best_score=best_score,
        evaluations=evaluations,
        executed_operators=executed_total,
        naive_operators=naive_total,
    )
