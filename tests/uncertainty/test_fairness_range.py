"""Tests for consistent range approximation of fairness metrics."""

import numpy as np
import pytest

from repro.learn.metrics import demographic_parity_difference
from repro.uncertainty import FairnessRange, demographic_parity_range, group_metric_range


@pytest.fixture()
def predictions():
    rng = np.random.default_rng(0)
    n = 600
    group = rng.choice(["A", "B"], size=n)
    y_true = rng.choice(["yes", "no"], size=n)
    # Model slightly favours group A.
    favour = np.where(group == "A", 0.6, 0.4)
    y_pred = np.where(rng.random(n) < favour, "yes", "no")
    return y_true, y_pred, group


class TestGroupMetricRange:
    def test_no_bias_degenerate_interval(self, predictions):
        y_true, y_pred, group = predictions
        ranges = group_metric_range(y_true, y_pred, group, "yes")
        for lo, hi in ranges.values():
            assert lo == pytest.approx(hi)

    def test_point_interval_matches_plain_metric(self, predictions):
        y_true, y_pred, group = predictions
        ranges = group_metric_range(y_true, y_pred, group, "yes")
        for g in ("A", "B"):
            members = group == g
            plain = float(np.mean(y_pred[members] == "yes"))
            assert ranges[g][0] == pytest.approx(plain)

    def test_bias_widens_interval(self, predictions):
        y_true, y_pred, group = predictions
        ranges = group_metric_range(
            y_true, y_pred, group, "yes",
            prevalence_multipliers={"B": (0.5, 1.0)},
        )
        lo, hi = ranges["B"]
        assert hi > lo
        assert ranges["A"][0] == pytest.approx(ranges["A"][1])

    def test_unknown_statistic_raises(self, predictions):
        y_true, y_pred, group = predictions
        with pytest.raises(ValueError):
            group_metric_range(y_true, y_pred, group, "yes", statistic="f1")

    def test_tpr_statistic(self, predictions):
        y_true, y_pred, group = predictions
        ranges = group_metric_range(y_true, y_pred, group, "yes", statistic="tpr")
        for lo, hi in ranges.values():
            assert 0.0 <= lo <= hi <= 1.0


class TestDemographicParityRange:
    def test_point_range_matches_plain_metric(self, predictions):
        y_true, y_pred, group = predictions
        fr = demographic_parity_range(y_true, y_pred, group, "yes")
        plain = demographic_parity_difference(y_true, y_pred, group, positive="yes")
        assert fr.lo == pytest.approx(plain, abs=1e-9)
        assert fr.hi == pytest.approx(plain, abs=1e-9)

    def test_range_contains_sampled_corrections(self, predictions):
        """Soundness: the gap under any admissible α must fall inside."""
        y_true, y_pred, group = predictions
        fr = demographic_parity_range(
            y_true, y_pred, group, "yes",
            prevalence_multipliers={"B": (0.4, 1.0)},
        )
        for alpha in np.linspace(0.4, 1.0, 7):
            weight = np.where(
                (group == "B") & (y_true == "yes"), 1.0 / alpha, 1.0
            )
            rates = {}
            for g in ("A", "B"):
                members = group == g
                w = weight[members]
                rates[g] = float(
                    w[(y_pred[members] == "yes")].sum() / w.sum()
                )
            gap = abs(rates["A"] - rates["B"])
            assert fr.lo - 1e-9 <= gap <= fr.hi + 1e-9

    def test_certification_logic(self):
        fr = FairnessRange(metric="dp", lo=0.02, hi=0.08)
        assert fr.certifiably_fair(0.1)
        assert not fr.certifiably_fair(0.05)
        assert fr.certifiably_unfair(0.01)
        assert not fr.certifiably_unfair(0.05)
        assert fr.width == pytest.approx(0.06)

    def test_missing_threshold_raises(self):
        fr = FairnessRange(metric="dp", lo=0.0, hi=0.1)
        with pytest.raises(ValueError):
            fr.certifiably_fair()

    def test_gap_bounds_match_closed_form(self, predictions):
        """lo = max(0, max lo_g − min hi_g); hi = max hi_g − min lo_g."""
        y_true, y_pred, group = predictions
        multipliers = {"A": (0.2, 1.0), "B": (0.2, 1.0)}
        fr = demographic_parity_range(
            y_true, y_pred, group, "yes", prevalence_multipliers=multipliers
        )
        per_group = fr.extras["per_group_rates"]
        lows = [b[0] for b in per_group.values()]
        highs = [b[1] for b in per_group.values()]
        assert fr.hi == pytest.approx(max(highs) - min(lows))
        assert fr.lo == pytest.approx(max(0.0, max(lows) - min(highs)))
        assert fr.lo <= fr.hi

    def test_min_gap_zero_when_intervals_overlap(self):
        """When predictions correlate with labels, strong positive-sampling
        bias can move the disadvantaged group's rate past the other's, so
        the intervals overlap and the minimal gap is zero."""
        rng = np.random.default_rng(1)
        n = 800
        group = rng.choice(["A", "B"], size=n)
        y_true = rng.choice(["yes", "no"], size=n)
        # Predictions mostly follow the true label.
        y_pred = np.where(rng.random(n) < 0.85, y_true, "no")
        fr = demographic_parity_range(
            y_true, y_pred, group, "yes",
            prevalence_multipliers={"B": (0.3, 1.0)},
        )
        per_group = fr.extras["per_group_rates"]
        assert per_group["B"][1] > per_group["A"][0] > per_group["B"][0]
        assert fr.lo == 0.0
        assert fr.hi > 0.0
