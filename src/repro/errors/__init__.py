"""Synthetic data-error injection with ground-truth reports.

Covers the error families of the paper's Figure 1: missing, wrong (noise,
outliers, typos), invalid (label flips), biased (group label bias, selection
bias), and out-of-distribution values.
"""

from .bias import inject_distribution_shift, inject_duplicates, inject_selection_bias
from .chaos import (
    DISK_FAULT_KINDS,
    ChaosError,
    ChaosMonkey,
    DiskChaos,
    InjectedFault,
    TransientChaosError,
)
from .labels import inject_group_label_bias, inject_label_errors
from .missing import MECHANISMS, inject_missing
from .noise import (
    inject_gaussian_noise,
    inject_outliers,
    inject_typos,
    inject_unit_mismatch,
)
from .poisoning import adversarial_label_flips, targeted_poison_points
from .report import ErrorReport, merge_reports

__all__ = [
    "ErrorReport",
    "merge_reports",
    "ChaosError",
    "ChaosMonkey",
    "DISK_FAULT_KINDS",
    "DiskChaos",
    "InjectedFault",
    "TransientChaosError",
    "MECHANISMS",
    "inject_distribution_shift",
    "inject_duplicates",
    "inject_selection_bias",
    "inject_group_label_bias",
    "inject_label_errors",
    "inject_missing",
    "inject_gaussian_noise",
    "inject_outliers",
    "inject_typos",
    "inject_unit_mismatch",
    "adversarial_label_flips",
    "targeted_poison_points",
]
