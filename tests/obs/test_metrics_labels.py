"""Labeled metrics: series naming, percentile snapshots, Chan-style merges."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta_snapshots,
    series_name,
    split_series,
)


class TestSeriesNames:
    def test_unlabeled_series_is_bare_name(self):
        assert series_name("engine.cache.hits") == "engine.cache.hits"
        assert series_name("engine.cache.hits", {}) == "engine.cache.hits"

    def test_labels_are_sorted_into_the_key(self):
        a = series_name("job.latency", {"tenant": "acme", "kind": "valuation"})
        b = series_name("job.latency", {"kind": "valuation", "tenant": "acme"})
        assert a == b == "job.latency{kind=valuation,tenant=acme}"

    def test_split_inverts_series_name(self):
        series = series_name("job.latency", {"tenant": "a", "kind": "v"})
        name, labels = split_series(series)
        assert name == "job.latency"
        assert labels == {"tenant": "a", "kind": "v"}

    def test_split_of_bare_name_gives_no_labels(self):
        assert split_series("plain.metric") == ("plain.metric", {})


class TestLabeledInstruments:
    def test_distinct_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("job.terminal", tenant="a").inc()
        reg.counter("job.terminal", tenant="b").inc(2)
        snap = reg.snapshot()
        assert snap["job.terminal{tenant=a}"]["value"] == 1
        assert snap["job.terminal{tenant=b}"]["value"] == 2

    def test_unlabeled_snapshot_has_no_labels_key(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(1.0)
        for snap in reg.snapshot().values():
            assert "labels" not in snap

    def test_labeled_snapshot_carries_labels(self):
        reg = MetricsRegistry()
        reg.histogram("h", tenant="acme").observe(0.5)
        snap = reg.snapshot()["h{tenant=acme}"]
        assert snap["labels"] == {"tenant": "acme"}

    def test_kind_conflict_on_same_series_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", tenant="a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x", tenant="a")

    def test_same_name_different_labels_same_instrument_on_repeat(self):
        reg = MetricsRegistry()
        first = reg.counter("x", tenant="a")
        again = reg.counter("x", tenant="a")
        assert first is again


class TestHistogramPercentiles:
    def test_snapshot_carries_p50_p95_p99(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p95"] == pytest.approx(95.05)
        assert snap["p99"] == pytest.approx(99.01)

    def test_empty_histogram_percentiles_are_none(self):
        snap = Histogram("h").snapshot()
        assert snap["p50"] is None and snap["p95"] is None and snap["p99"] is None

    def test_forward_compat_merge_of_v1_snapshot(self):
        # A schema-v1 snapshot (no p50/p95/p99 keys) still merges cleanly.
        v1 = {"type": "histogram", "count": 3, "sum": 6.0, "min": 1.0,
              "max": 3.0, "recent": [1.0, 2.0, 3.0]}
        hist = Histogram("h")
        hist.observe(10.0)
        hist.merge(v1)
        assert hist.count == 4
        assert hist.total == pytest.approx(16.0)
        assert hist.min == 1.0 and hist.max == 10.0

    def test_merge_combines_count_sum_min_max_window(self):
        left, right = Histogram("h"), Histogram("h")
        for value in (1.0, 5.0):
            left.observe(value)
        for value in (0.5, 9.0):
            right.observe(value)
        left.merge(right.snapshot())
        assert left.count == 4
        assert left.total == pytest.approx(15.5)
        assert left.min == 0.5 and left.max == 9.0
        assert sorted(left.window) == [0.5, 1.0, 5.0, 9.0]


class TestDeltaSnapshots:
    def test_counter_delta_keeps_difference_and_drops_zero(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.counter("b").inc(1)
        before = reg.snapshot()
        reg.counter("a").inc(2)
        delta = delta_snapshots(before, reg.snapshot())
        assert delta["a"] == {"type": "counter", "value": 2}
        assert "b" not in delta

    def test_gauge_delta_is_final_value(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        before = reg.snapshot()
        reg.gauge("g").set(7.0)
        delta = delta_snapshots(before, reg.snapshot())
        assert delta["g"]["value"] == 7.0

    def test_histogram_delta_is_incremental(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        before = reg.snapshot()
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(3.0)
        delta = delta_snapshots(before, reg.snapshot())
        assert delta["h"]["count"] == 2
        assert delta["h"]["sum"] == pytest.approx(5.0)
        assert delta["h"]["recent"] == [2.0, 3.0]

    def test_labels_ride_the_delta(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("c", tenant="a").inc()
        reg.histogram("h", kind="v").observe(1.0)
        delta = delta_snapshots(before, reg.snapshot())
        assert delta["c{tenant=a}"]["labels"] == {"tenant": "a"}
        assert delta["h{kind=v}"]["labels"] == {"kind": "v"}


class TestMergeDelta:
    def test_counters_add_gauges_overwrite_histograms_merge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(1.0)
        reg.merge_delta(
            {
                "c": {"type": "counter", "value": 2},
                "g": {"type": "gauge", "value": 9.0},
                "h": {"type": "histogram", "count": 1, "sum": 4.0,
                      "recent": [4.0]},
            }
        )
        snap = reg.snapshot()
        assert snap["c"]["value"] == 3
        assert snap["g"]["value"] == 9.0
        assert snap["h"]["count"] == 2 and snap["h"]["sum"] == pytest.approx(5.0)

    def test_unknown_labeled_series_created_with_labels(self):
        reg = MetricsRegistry()
        reg.merge_delta(
            {
                "c{tenant=a}": {
                    "type": "counter",
                    "value": 5,
                    "labels": {"tenant": "a"},
                }
            }
        )
        snap = reg.snapshot()["c{tenant=a}"]
        assert snap["value"] == 5 and snap["labels"] == {"tenant": "a"}

    def test_worker_roundtrip_delta_merges_into_parent(self):
        # The backhaul path end-to-end in miniature: child computes a delta
        # against its base snapshot, parent folds it in.
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.counter("evals").inc(10)
        base = child.snapshot()
        child.counter("evals").inc(4)
        child.histogram("lat", tenant="a").observe(0.25)
        parent.merge_delta(delta_snapshots(base, child.snapshot()))
        snap = parent.snapshot()
        assert snap["evals"]["value"] == 14
        assert snap["lat{tenant=a}"]["count"] == 1

    def test_module_level_facade(self):
        obs_metrics.counter("facade.c", tenant="t").inc()
        obs_metrics.merge_delta(
            {"facade.c{tenant=t}": {"type": "counter", "value": 2,
                                    "labels": {"tenant": "t"}}}
        )
        assert obs_metrics.snapshot()["facade.c{tenant=t}"]["value"] == 3
