"""Tests for Datascope: Shapley importance over pipelines."""

import numpy as np
import pytest

from repro.errors import inject_label_errors
from repro.pipeline import datascope_importance, execute
from tests.pipeline.conftest import build_letters_pipeline


@pytest.fixture()
def train_and_valid_results(sources, valid_sources):
    __, sink = build_letters_pipeline()
    train_result = execute(sink, sources, fit=True)
    valid_result = execute(sink, valid_sources, fit=False)
    return train_result, valid_result


class TestDatascope:
    def test_importance_lands_on_source_rows(self, train_and_valid_results, sources):
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        train = sources["train_df"]
        aligned = importance.for_frame(train)
        assert aligned.shape == (train.num_rows,)
        # Only rows surviving the pipeline can carry importance.
        survivors = set(train_result.provenance.source_row_ids("train_df").tolist())
        for rid, value in zip(train.row_ids.tolist(), aligned.tolist()):
            if rid not in survivors:
                assert value == 0.0

    def test_efficiency_preserved_through_aggregation(self, train_and_valid_results):
        """Summing per-source values must equal summing encoded-row values
        (the push-back only regroups, never loses mass)."""
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        encoded = importance.extras["encoded"]
        assert sum(importance.by_row_id.values()) == pytest.approx(
            encoded.values.sum(), abs=1e-9
        )

    def test_source_autodetected(self, train_and_valid_results):
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(train_result, valid_result.X, valid_result.y)
        assert importance.source == "train_df"

    def test_lowest_skips_filtered_rows(self, train_and_valid_results, sources):
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        train = sources["train_df"]
        lowest = importance.lowest(train, 10)
        survivors = set(train_result.provenance.source_row_ids("train_df").tolist())
        for position in lowest:
            assert int(train.row_ids[position]) in survivors

    def test_detects_label_errors_in_source_data(self, sources, valid_sources):
        """End-to-end Figure 3 claim: errors injected in the *source* table
        are found via importance computed on the *encoded* output."""
        __, sink = build_letters_pipeline()
        dirty, report = inject_label_errors(
            sources["train_df"], "sentiment", fraction=0.15, seed=5
        )
        dirty_sources = dict(sources, train_df=dirty)
        train_result = execute(sink, dirty_sources, fit=True)
        valid_result = execute(sink, valid_sources, fit=False)
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        # Score detection among rows that actually flow through the pipeline.
        survivors = set(train_result.provenance.source_row_ids("train_df").tolist())
        corrupted_survivors = [r for r in report.row_ids.tolist() if r in survivors]
        flagged = dirty.row_ids[importance.lowest(dirty, len(corrupted_survivors))]
        hits = len(set(flagged.tolist()) & set(corrupted_survivors))
        base_rate = len(corrupted_survivors) / max(len(survivors), 1)
        assert hits / max(len(corrupted_survivors), 1) > 2 * base_rate

    def test_shapley_mc_method_uses_engine(self, train_and_valid_results):
        """Datascope over a real downstream model via the valuation engine,
        with worker-count-invariant, attribution-preserving results."""
        train_result, valid_result = train_and_valid_results
        serial = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            method="shapley_mc", n_permutations=4, seed=0,
        )
        fanned = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            method="shapley_mc", n_permutations=4, seed=0, n_workers=2,
        )
        assert serial.method == "datascope_shapley_mc"
        assert serial.by_row_id == fanned.by_row_id
        encoded = serial.extras["encoded"]
        assert encoded.extras["n_evaluations"] > 0
        assert sum(serial.by_row_id.values()) == pytest.approx(
            encoded.values.sum(), abs=1e-9
        )

    def test_unknown_method_raises(self, train_and_valid_results):
        train_result, valid_result = train_and_valid_results
        with pytest.raises(ValueError):
            datascope_importance(
                train_result, valid_result.X, valid_result.y, method="bogus"
            )

    def test_unknown_method_message_enumerates_allowed(self, train_and_valid_results):
        """The error must name every allowed method, derived dynamically —
        adding a method to ALLOWED_METHODS updates the diagnostic for free."""
        from repro.pipeline import ALLOWED_METHODS

        train_result, valid_result = train_and_valid_results
        with pytest.raises(ValueError, match="allowed methods") as exc:
            datascope_importance(
                train_result, valid_result.X, valid_result.y, method="bogus"
            )
        message = str(exc.value)
        assert "'bogus'" in message
        for allowed in ALLOWED_METHODS:
            assert f"'{allowed}'" in message
        assert set(ALLOWED_METHODS) == {"knn", "shapley_mc", "exact_knn"}

    def test_unencoded_result_raises(self, sources):
        from repro.pipeline import PipelinePlan

        plan = PipelinePlan()
        node = plan.source("train_df").filter(lambda df: df["age"] > 0, "adult")
        result = execute(node, {"train_df": sources["train_df"]})
        with pytest.raises(ValueError):
            datascope_importance(result, np.zeros((2, 2)), np.zeros(2))

    @pytest.mark.parametrize("method", ["knn", "exact_knn"])
    def test_empty_encoded_frame_raises(self, sources, method):
        """A pipeline whose filters drop every row cannot be valued."""
        from repro.learn import ColumnTransformer, StandardScaler
        from repro.pipeline import PipelinePlan

        plan = PipelinePlan()
        sink = (
            plan.source("train_df")
            .filter(lambda df: df["age"] > 10_000, "age > 10000")
            .encode(
                ColumnTransformer([(StandardScaler(), ["age"])]),
                label_column="sentiment",
            )
        )
        result = execute(sink, {"train_df": sources["train_df"]}, fit=True)
        assert result.n_rows == 0
        with pytest.raises(ValueError, match="no encoded rows"):
            datascope_importance(
                result, np.zeros((2, 1)), np.zeros(2), source="train_df",
                method=method,
            )


class TestExactKnn:
    def test_exact_knn_matches_push_back_on_map_form(self, train_and_valid_results):
        """The letters pipeline is 1:1 from train_df to encoded rows, so the
        grouped game degenerates to the per-row game and the exact path must
        agree with the classic per-row push-back to the digit."""
        train_result, valid_result = train_and_valid_results
        exact = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            k=3, method="exact_knn",
        )
        push_back = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            k=3, method="knn",
        )
        assert exact.extras["form"] == "map"
        assert set(exact.by_row_id) == set(push_back.by_row_id)
        for rid, value in exact.by_row_id.items():
            assert value == pytest.approx(push_back.by_row_id[rid], abs=1e-9)

    def test_exact_knn_valuation_metadata(self, train_and_valid_results):
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            k=1, method="exact_knn",
        )
        valuation = importance.extras["valuation"]
        assert valuation.stop_reason == "exact"
        assert valuation.converged
        assert np.all(valuation.stderr == 0.0)
        assert valuation.census["n_evaluations"] == 0
        compiled = importance.extras["compiled"]
        assert importance.extras["compile_fingerprint"] == compiled.fingerprint
        assert importance.method.startswith("datascope_exact_knn")

    def test_exact_knn_records_ledger_events(self, train_and_valid_results, tmp_path):
        from repro.obs import RunLedger

        train_result, valid_result = train_and_valid_results
        ledger = RunLedger(tmp_path / "runs.jsonl")
        datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            k=1, method="exact_knn", ledger=ledger,
        )
        kinds = [record.kind for record in ledger.load()]
        assert "canonical_compile" in kinds
        assert "exact_knn" in kinds
        compile_record = next(
            r for r in ledger.load() if r.kind == "canonical_compile"
        )
        assert compile_record.stats["form"] == "map"
        assert compile_record.stats["fingerprint"]

    def test_exact_knn_single_class_training_set(self):
        """Degenerate but legal: one class everywhere — every subset scores
        identical utility per validation point, values are well-defined."""
        from repro.frame import DataFrame
        from repro.learn import ColumnTransformer, StandardScaler
        from repro.pipeline import PipelinePlan

        rng = np.random.default_rng(0)
        frame = DataFrame(
            {"a": rng.normal(size=8), "b": rng.normal(size=8),
             "y": np.zeros(8, dtype=np.int64)},
            row_ids=np.arange(8),
        )
        plan = PipelinePlan()
        sink = plan.source("t").encode(
            ColumnTransformer([(StandardScaler(), ["a", "b"])]), label_column="y"
        )
        result = execute(sink, {"t": frame}, fit=True)
        vx = rng.normal(size=(4, 2))
        importance = datascope_importance(
            result, vx, np.zeros(4, dtype=np.int64), source="t",
            k=1, method="exact_knn",
        )
        values = np.asarray(list(importance.by_row_id.values()))
        # Matches everywhere: the grand utility is 1.0 and, with v(∅)=0,
        # only the first-seated player gets credit symmetry spreads it.
        assert values.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(values >= -1e-12)
