"""Brute-force K-nearest-neighbour classifier.

KNN plays a double role in the tutorial: it is both an ordinary model and the
*proxy model* that makes Shapley-based data importance tractable
(KNN-Shapley, Jia et al. [33]; Datascope [39]). The distance computation is
factored out so :mod:`repro.importance.knn_shapley` can reuse it.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..base import Estimator, check_matrix, check_xy

__all__ = ["KNeighborsClassifier", "pairwise_distances"]


def _dense_distances(A: np.ndarray, B: np.ndarray, metric: str) -> np.ndarray:
    if metric == "euclidean":
        # (a-b)^2 = a^2 + b^2 - 2ab, clipped against FP cancellation.
        sq = (
            np.sum(A * A, axis=1)[:, None]
            + np.sum(B * B, axis=1)[None, :]
            - 2.0 * (A @ B.T)
        )
        return np.sqrt(np.clip(sq, 0.0, None))
    if metric == "manhattan":
        return np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)
    if metric == "cosine":
        norm_a = np.linalg.norm(A, axis=1, keepdims=True)
        norm_b = np.linalg.norm(B, axis=1, keepdims=True)
        denom = np.clip(norm_a @ norm_b.T, 1e-12, None)
        return 1.0 - (A @ B.T) / denom
    raise ValueError(f"unknown metric: {metric!r}")


def pairwise_distances(
    A: np.ndarray,
    B: np.ndarray,
    metric: str = "euclidean",
    chunk_size: int | None = None,
) -> np.ndarray:
    """Dense (len(A), len(B)) distance matrix.

    With ``chunk_size`` set, rows of A are processed in blocks of that
    many, bounding the intermediate working set (the manhattan kernel's
    broadcast temporary in particular is ``len(A)·len(B)·n_features``
    floats when computed in one shot). Each row of the result is computed
    by the same kernel either way, so chunked and unchunked outputs agree
    to FP roundoff (exactly, for metrics that avoid BLAS matmul).
    """
    A = check_matrix(A)
    B = check_matrix(B)
    if chunk_size is None or chunk_size <= 0 or chunk_size >= len(A):
        return _dense_distances(A, B, metric)
    out = np.empty((len(A), len(B)))
    for start in range(0, len(A), chunk_size):
        block = slice(start, start + chunk_size)
        out[block] = _dense_distances(A[block], B, metric)
    return out


class KNeighborsClassifier(Estimator):
    """Majority vote over the ``k`` nearest training points.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours ``k``. Capped at the training-set size at
        prediction time, so the classifier stays usable while importance
        methods delete training points.
    metric:
        ``"euclidean"``, ``"manhattan"``, or ``"cosine"``.
    """

    def __init__(self, n_neighbors: int = 5, metric: str = "euclidean") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = int(n_neighbors)
        self.metric = metric

    def fit(self, X: Any, y: Any) -> "KNeighborsClassifier":
        X, y = check_xy(X, y)
        self.X_ = X
        self.y_ = y
        self.classes_ = np.unique(y)
        return self

    def kneighbors(self, X: Any, n_neighbors: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Distances and training indices of each query's nearest neighbours."""
        self._require_fitted()
        k = min(n_neighbors or self.n_neighbors, len(self.X_))
        distances = pairwise_distances(check_matrix(X), self.X_, self.metric)
        order = np.argsort(distances, axis=1, kind="stable")[:, :k]
        rows = np.arange(len(distances))[:, None]
        return distances[rows, order], order

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        __, neighbors = self.kneighbors(X)
        votes = self.y_[neighbors]
        probs = np.zeros((len(votes), len(self.classes_)))
        for j, cls in enumerate(self.classes_):
            probs[:, j] = np.mean(votes == cls, axis=1)
        return probs

    def predict(self, X: Any) -> np.ndarray:
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)]
