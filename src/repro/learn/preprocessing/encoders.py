"""Categorical feature encoders.

Encoders accept 1-D sequences of raw cell values (Python lists, NumPy
arrays, or :class:`repro.frame.Column` objects) where ``None`` marks a
missing cell, and emit dense float matrices.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ...frame import Column
from ..base import Transformer

__all__ = ["OneHotEncoder", "OrdinalEncoder", "as_cells"]


def as_cells(values: Any) -> list:
    """Normalise input into a list of cells with ``None`` for missing."""
    if isinstance(values, Column):
        return values.to_list()
    if isinstance(values, np.ndarray):
        if values.ndim == 2 and values.shape[1] == 1:
            values = values[:, 0]
        return [None if (isinstance(v, float) and np.isnan(v)) else v for v in values.tolist()]
    return list(values)


class OneHotEncoder(Transformer):
    """One-hot encoding with a fixed category vocabulary learned at fit time.

    Unseen categories at transform time map to the all-zeros row (like
    scikit-learn's ``handle_unknown="ignore"``), as do missing cells — data
    errors must not crash the pipeline, only degrade it measurably.
    """

    def fit(self, X: Any, y: Any = None) -> "OneHotEncoder":
        cells = as_cells(X)
        self.categories_ = sorted({c for c in cells if c is not None}, key=str)
        self.index_ = {c: j for j, c in enumerate(self.categories_)}
        return self

    def transform(self, X: Any) -> np.ndarray:
        cells = as_cells(X)
        out = np.zeros((len(cells), len(self.categories_)))
        for i, cell in enumerate(cells):
            j = self.index_.get(cell)
            if j is not None:
                out[i, j] = 1.0
        return out

    def feature_names(self, prefix: str = "") -> list[str]:
        return [f"{prefix}{c}" for c in self.categories_]


class OrdinalEncoder(Transformer):
    """Map categories to consecutive integers (unknown/missing → -1)."""

    def __init__(self, order: Sequence[Any] | None = None) -> None:
        self.order = list(order) if order is not None else None

    def fit(self, X: Any, y: Any = None) -> "OrdinalEncoder":
        if self.order is not None:
            self.categories_ = list(self.order)
        else:
            cells = as_cells(X)
            self.categories_ = sorted({c for c in cells if c is not None}, key=str)
        self.index_ = {c: j for j, c in enumerate(self.categories_)}
        return self

    def transform(self, X: Any) -> np.ndarray:
        cells = as_cells(X)
        codes = [float(self.index_.get(cell, -1)) for cell in cells]
        return np.asarray(codes).reshape(-1, 1)
