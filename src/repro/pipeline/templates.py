"""Ready-made pipeline templates for the bundled scenarios.

The letters pipeline below is the exact shape drawn in the paper's
Figure 3 — two joins onto side tables, a sector filter, a UDF column, and a
three-branch feature encoder — packaged so examples, tests, and benchmarks
(and users exploring the library) build it with one call.
"""

from __future__ import annotations

from ..learn.preprocessing import (
    CellImputer,
    ColumnTransformer,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
)
from ..text import SentenceBertTransformer
from .operators import EncodeNode, PipelinePlan

__all__ = ["letters_pipeline"]


def letters_pipeline(
    sector: str = "healthcare", text_features: int = 16
) -> tuple[PipelinePlan, EncodeNode]:
    """The Figure-3 pipeline over the hiring scenario's three tables.

    Sources expected at execution time: ``train_df`` (the letters base
    table), ``jobdetail_df``, and ``social_df``. Returns ``(plan, sink)``.
    """
    plan = PipelinePlan()
    train = plan.source("train_df")
    jobs = plan.source("jobdetail_df")
    social = plan.source("social_df")
    encoder = ColumnTransformer(
        [
            (SentenceBertTransformer(n_features=text_features), "letter_text"),
            (Pipeline([CellImputer(), OneHotEncoder()]), "degree"),
            (StandardScaler(), ["age", "employer_rating"]),
        ]
    )
    sink = (
        train.join(jobs, on="job_id")
        .join(social, on="person_id")
        .filter(lambda df: df["sector"] == sector, f"sector == {sector!r}")
        .with_column("has_twitter", lambda df: df["twitter"].notnull(), "has_twitter")
        .encode(encoder, label_column="sentiment")
    )
    return plan, sink
