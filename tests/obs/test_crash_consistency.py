"""Crash-consistency harness, exercised as a (reduced) test sweep.

The full sweep lives in ``tools/crashconsist.py`` and runs in CI's
durability-smoke job. Here we load the harness module directly and run
small sweeps — enough to prove the harness itself works end-to-end (child
processes really crash at the injected fault points, the invariants are
really checked) without the full matrix's wall-clock cost.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
HARNESS = REPO / "tools" / "crashconsist.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("crashconsist", HARNESS)
    module = importlib.util.module_from_spec(spec)
    sys.modules["crashconsist"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("crashconsist", None)


class TestAppendLogSweeps:
    def test_ledger_crash_sweep_holds_invariants(self, harness, tmp_path):
        cases = harness.sweep_append_log(
            "ledger", harness.LEDGER_CHILD, harness._load_ledger, tmp_path,
            n_records=4, ops=[0, 2], kinds=("crash_before_rename",),
        )
        assert len(cases) == 2
        assert all(c["fault_fired"] for c in cases)
        assert all(c["exit_code"] == harness.CRASH_EXIT for c in cases)
        assert all(not c["failures"] for c in cases)
        # Crash at op k: exactly the first k appends were acknowledged
        # and exactly those k records survive.
        for case in cases:
            assert case["n_acked"] == case["op_ordinal"]
            assert case["n_loaded"] == case["op_ordinal"]
            assert case["n_quarantined"] == 0

    def test_journal_short_write_is_quarantined_not_lost(
        self, harness, tmp_path
    ):
        cases = harness.sweep_append_log(
            "journal", harness.JOURNAL_CHILD, harness._load_journal,
            tmp_path, n_records=4, ops=[1], kinds=("short_write",),
        )
        (case,) = cases
        assert case["fault_fired"]
        assert not case["failures"]
        assert case["n_quarantined"] == 1  # the torn record was counted
        assert case["n_loaded"] == 3  # every other acked record survived

    def test_crash_after_rename_keeps_the_acked_record(self, harness, tmp_path):
        cases = harness.sweep_append_log(
            "ledger", harness.LEDGER_CHILD, harness._load_ledger, tmp_path,
            n_records=3, ops=[1], kinds=("crash_after_rename",),
        )
        (case,) = cases
        assert not case["failures"]
        # The fault fires after os.replace published append #1, before the
        # writer could ACK it: the loader sees one more record than the
        # child acknowledged. Durability errs in the right direction.
        assert case["n_loaded"] == case["n_acked"] + 1 == 2


class TestCheckpointSweep:
    def test_resume_is_bit_identical_across_fault_points(
        self, harness, tmp_path
    ):
        cases = harness.sweep_checkpoint(
            tmp_path, ops=[0], kinds=("crash_before_rename", "short_write"),
        )
        # ops=[0] plus the always-included final primary write.
        assert len(cases) == 4
        assert all(not c["failures"] for c in cases)
        by_key = {(c["fault_kind"], c["op_ordinal"]): c for c in cases}
        final = harness.CK_FINAL_PRIMARY_OP
        # Killed before the very first snapshot published: full re-run.
        assert by_key[("crash_before_rename", 0)]["resumed_from"] == 0
        # Killed before the final snapshot: resume from the prior wave.
        assert by_key[("crash_before_rename", final)]["resumed_from"] == (
            harness.CK_PERMUTATIONS - harness.CK_CHECK_EVERY
        )
        # Final primary torn on disk: recovery fell back to an archive.
        assert by_key[("short_write", final)]["fallback"]


class TestAuditOutput:
    def test_main_writes_audit_and_sample_sidecar(self, harness, tmp_path):
        out = tmp_path / "results" / "audit.json"
        rc = harness.main(
            ["--out", str(out), "--scenarios", "ledger", "--max-ops", "1"]
        )
        assert rc == 0
        audit = json.loads(out.read_text())
        assert audit["harness"] == "crashconsist"
        assert audit["n_failures"] == 0
        assert audit["n_cases"] == 3  # 3 fault kinds x 1 op
        assert len(audit["invariants"]) == 4
        sample = out.with_name("sample.jsonl.corrupt")
        assert sample.exists()
        # The sample sidecar is itself a valid framed artifact.
        from repro.obs.atomicio import read_jsonl

        payloads, report = read_jsonl(sample, quarantine=False)
        assert report.clean
        assert payloads and payloads[0]["kind"] == "quarantined_record"
