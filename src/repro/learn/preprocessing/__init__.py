"""Feature preprocessing: scaling, encoding, imputation, composition."""

from .compose import ColumnTransformer, FunctionTransformer, Pipeline
from .encoders import OneHotEncoder, OrdinalEncoder, as_cells
from .imputers import CellImputer, SimpleImputer
from .scalers import MinMaxScaler, StandardScaler

__all__ = [
    "ColumnTransformer",
    "FunctionTransformer",
    "Pipeline",
    "OneHotEncoder",
    "OrdinalEncoder",
    "as_cells",
    "CellImputer",
    "SimpleImputer",
    "MinMaxScaler",
    "StandardScaler",
]
