"""Label-error injection (Figure 2's ``nde.inject_labelerrors``)."""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .report import ErrorReport

__all__ = ["inject_label_errors", "inject_group_label_bias"]


def _pick_rows(n: int, fraction: float, rng: np.random.Generator) -> np.ndarray:
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    count = int(round(fraction * n))
    return rng.choice(n, size=count, replace=False) if count else np.empty(0, np.int64)


def inject_label_errors(
    frame: DataFrame,
    label_column: str,
    fraction: float = 0.1,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Flip a uniformly random ``fraction`` of labels to a different class.

    Returns the corrupted frame and a ground-truth :class:`ErrorReport`.
    """
    rng = np.random.default_rng(seed)
    labels = frame.column(label_column)
    classes = labels.unique()
    if len(classes) < 2:
        raise ValueError("label column has fewer than two classes")
    positions = _pick_rows(frame.num_rows, fraction, rng)
    cells = labels.to_list()
    originals = [cells[p] for p in positions]
    corrupted = []
    for pos in positions:
        alternatives = [c for c in classes if c != cells[pos]]
        corrupted.append(alternatives[int(rng.integers(len(alternatives)))])
    out = frame.copy()
    if len(positions):
        out[label_column] = labels.set_values(positions, np.asarray(corrupted))
    report = ErrorReport(
        kind="label_flip",
        column=label_column,
        row_ids=frame.row_ids[positions],
        original_values=originals,
        params={"fraction": fraction, "seed": seed},
    )
    return out, report


def inject_group_label_bias(
    frame: DataFrame,
    label_column: str,
    group_column: str,
    group_value,
    from_label,
    to_label,
    fraction: float = 0.3,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Flip labels *only within one protected group* (systematic label bias).

    This is the "programmable data bias" setting of the Learn part: a
    ``fraction`` of rows in ``group_value`` whose label is ``from_label``
    get relabelled ``to_label``, biasing the learned model against the group.
    """
    rng = np.random.default_rng(seed)
    labels = frame.column(label_column)
    eligible = np.flatnonzero(
        (frame.column(group_column) == group_value) & (labels == from_label)
    )
    count = int(round(fraction * len(eligible)))
    positions = (
        rng.choice(eligible, size=count, replace=False) if count else np.empty(0, np.int64)
    )
    out = frame.copy()
    if len(positions):
        out[label_column] = labels.set_values(
            positions, np.repeat(np.asarray([to_label]), len(positions))
        )
    report = ErrorReport(
        kind="group_label_bias",
        column=label_column,
        row_ids=frame.row_ids[positions],
        original_values=[from_label] * len(positions),
        params={
            "group_column": group_column,
            "group_value": group_value,
            "fraction": fraction,
            "seed": seed,
        },
    )
    return out, report
