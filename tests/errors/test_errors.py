"""Unit tests for error injection with ground-truth reports."""

import numpy as np
import pytest

from repro.errors import (
    ErrorReport,
    inject_distribution_shift,
    inject_duplicates,
    inject_gaussian_noise,
    inject_group_label_bias,
    inject_label_errors,
    inject_missing,
    inject_outliers,
    inject_selection_bias,
    inject_typos,
    merge_reports,
)
from repro.frame import DataFrame


@pytest.fixture()
def frame():
    rng = np.random.default_rng(0)
    return DataFrame(
        {
            "label": rng.choice(["pos", "neg"], size=100).astype(str),
            "value": rng.normal(size=100).round(3),
            "name": np.asarray([f"name{i}" for i in range(100)], dtype=str),
            "group": rng.choice(["A", "B"], size=100).astype(str),
        }
    )


class TestLabelErrors:
    def test_exact_count(self, frame):
        dirty, report = inject_label_errors(frame, "label", 0.1, seed=1)
        assert report.n_errors == 10
        changed = sum(
            a != b
            for a, b in zip(dirty["label"].to_list(), frame["label"].to_list())
        )
        assert changed == 10

    def test_flips_to_different_class(self, frame):
        dirty, report = inject_label_errors(frame, "label", 0.2, seed=2)
        positions = frame.positions_of(report.row_ids)
        for p, original in zip(positions, report.original_values):
            assert dirty["label"].to_list()[p] != original

    def test_original_values_recorded(self, frame):
        __, report = inject_label_errors(frame, "label", 0.1, seed=3)
        positions = frame.positions_of(report.row_ids)
        originals = [frame["label"].to_list()[p] for p in positions]
        assert originals == report.original_values

    def test_zero_fraction_noop(self, frame):
        dirty, report = inject_label_errors(frame, "label", 0.0)
        assert report.n_errors == 0
        assert dirty.equals(frame)

    def test_source_frame_untouched(self, frame):
        before = frame["label"].to_list()
        inject_label_errors(frame, "label", 0.3, seed=4)
        assert frame["label"].to_list() == before

    def test_single_class_raises(self):
        df = DataFrame({"label": ["a", "a"]})
        with pytest.raises(ValueError):
            inject_label_errors(df, "label", 0.5)

    def test_bad_fraction_raises(self, frame):
        with pytest.raises(ValueError):
            inject_label_errors(frame, "label", 1.5)


class TestGroupLabelBias:
    def test_only_targets_group(self, frame):
        dirty, report = inject_group_label_bias(
            frame, "label", "group", "B", from_label="pos", to_label="neg",
            fraction=0.5, seed=5,
        )
        positions = frame.positions_of(report.row_ids)
        groups = [frame["group"].to_list()[p] for p in positions]
        assert set(groups) <= {"B"}
        for p in positions:
            assert frame["label"].to_list()[p] == "pos"
            assert dirty["label"].to_list()[p] == "neg"


class TestMissing:
    def test_mcar_count(self, frame):
        dirty, report = inject_missing(frame, "value", 0.15, "MCAR", seed=1)
        assert dirty["value"].null_count() == 15
        assert report.n_errors == 15

    def test_mnar_targets_high_values(self, frame):
        dirty, __ = inject_missing(frame, "value", 0.2, "MNAR", seed=2)
        values = np.asarray(frame["value"].to_list())
        missing = dirty["value"].isnull()
        assert values[missing].mean() > values[~missing].mean()

    def test_mar_follows_driver(self, frame):
        frame = frame.assign(driver=np.arange(100).astype(float))
        dirty, __ = inject_missing(frame, "value", 0.2, "MAR", depends_on="driver", seed=3)
        missing = dirty["value"].isnull()
        drivers = np.asarray(frame["driver"].to_list())
        assert drivers[missing].mean() > drivers[~missing].mean()

    def test_mnar_non_numeric_raises(self, frame):
        with pytest.raises(ValueError):
            inject_missing(frame, "name", 0.1, "MNAR")

    def test_unknown_mechanism_raises(self, frame):
        with pytest.raises(ValueError):
            inject_missing(frame, "value", 0.1, "MAGIC")

    def test_originals_recoverable(self, frame):
        dirty, report = inject_missing(frame, "value", 0.1, "MCAR", seed=4)
        positions = frame.positions_of(report.row_ids)
        originals = [frame["value"].to_list()[p] for p in positions]
        assert originals == report.original_values


class TestNoise:
    def test_gaussian_noise_changes_values(self, frame):
        dirty, report = inject_gaussian_noise(frame, "value", 0.1, scale=2.0, seed=1)
        positions = frame.positions_of(report.row_ids)
        for p in positions:
            assert dirty["value"].to_list()[p] != frame["value"].to_list()[p]

    def test_gaussian_on_string_raises(self, frame):
        with pytest.raises(TypeError):
            inject_gaussian_noise(frame, "name", 0.1)

    def test_outliers_are_extreme(self, frame):
        dirty, report = inject_outliers(frame, "value", 0.05, magnitude=8.0, seed=2)
        values = np.asarray(frame["value"].to_list())
        sigma = values.std()
        positions = frame.positions_of(report.row_ids)
        for p in positions:
            assert abs(dirty["value"].to_list()[p] - values.mean()) > 5 * sigma

    def test_typos_change_strings(self, frame):
        dirty, report = inject_typos(frame, "name", 0.2, seed=3)
        positions = frame.positions_of(report.row_ids)
        assert len(positions) == 20
        changed = sum(
            dirty["name"].to_list()[p] != frame["name"].to_list()[p] for p in positions
        )
        assert changed >= 15  # a few edits may collide back to the original

    def test_typos_on_numeric_raises(self, frame):
        with pytest.raises(TypeError):
            inject_typos(frame, "value", 0.1)


class TestBias:
    def test_selection_bias_shrinks_group(self, frame):
        dirty, report = inject_selection_bias(frame, "group", "B", keep_fraction=0.2, seed=1)
        before = frame["group"].value_counts()["B"]
        after = dirty["group"].value_counts().get("B", 0)
        assert after == int(round(0.2 * before))
        assert report.n_errors == before - after

    def test_selection_bias_preserves_other_group(self, frame):
        dirty, __ = inject_selection_bias(frame, "group", "B", keep_fraction=0.0, seed=2)
        assert dirty["group"].value_counts()["A"] == frame["group"].value_counts()["A"]

    def test_distribution_shift_moves_mean(self, frame):
        dirty, report = inject_distribution_shift(frame, "value", 0.3, shift=4.0, seed=3)
        assert np.mean(dirty["value"].to_list()) > np.mean(frame["value"].to_list())

    def test_duplicates_get_fresh_row_ids(self, frame):
        dirty, report = inject_duplicates(frame, 0.1, seed=4)
        assert dirty.num_rows == 110
        assert report.n_errors == 10
        assert len(set(dirty.row_ids.tolist())) == 110

    def test_duplicates_zero_fraction(self, frame):
        dirty, report = inject_duplicates(frame, 0.0)
        assert dirty.num_rows == frame.num_rows
        assert report.n_errors == 0


class TestReport:
    def test_affected_mask(self, frame):
        __, report = inject_label_errors(frame, "label", 0.1, seed=1)
        mask = report.affected_mask(frame.row_ids)
        assert mask.sum() == 10

    def test_summary_mentions_kind(self, frame):
        __, report = inject_label_errors(frame, "label", 0.1)
        assert "label_flip" in report.summary()

    def test_merge_reports_unions_rows(self, frame):
        __, a = inject_label_errors(frame, "label", 0.1, seed=1)
        __, b = inject_missing(frame, "value", 0.1, seed=2)
        merged = merge_reports([a, b])
        assert merged.kind == "mixed"
        assert merged.n_errors <= a.n_errors + b.n_errors
        assert set(a.row_ids) <= set(merged.row_ids)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_reports([])


class TestUnitMismatch:
    def test_scales_exactly_the_chosen_rows(self, frame):
        from repro.errors import inject_unit_mismatch

        dirty, report = inject_unit_mismatch(
            frame, "value", factor=100.0, fraction=0.1, seed=1
        )
        positions = frame.positions_of(report.row_ids)
        for p, original in zip(positions, report.original_values):
            assert dirty["value"].to_list()[p] == pytest.approx(100.0 * original)
        untouched = np.setdiff1d(np.arange(frame.num_rows), positions)
        for p in untouched[:10]:
            assert dirty["value"].to_list()[p] == frame["value"].to_list()[p]

    def test_detected_by_schema_validation(self):
        from repro.datasets import generate_hiring_data
        from repro.errors import inject_unit_mismatch
        from repro.pipeline import infer_schema, validate_schema

        letters = generate_hiring_data(n=200, seed=1)["letters"]
        schema = infer_schema(letters)
        dirty, __ = inject_unit_mismatch(
            letters, "employer_rating", factor=100.0, fraction=0.1, seed=2
        )
        report = validate_schema(dirty, schema)
        assert not report.passed
        assert any(r.name == "in_range" for r in report.failures())

    def test_zero_factor_raises(self, frame):
        from repro.errors import inject_unit_mismatch

        with pytest.raises(ValueError):
            inject_unit_mismatch(frame, "value", factor=0.0)

    def test_non_numeric_raises(self, frame):
        from repro.errors import inject_unit_mismatch

        with pytest.raises(TypeError):
            inject_unit_mismatch(frame, "name")
