"""Missing-value injection under MCAR / MAR / MNAR mechanisms.

Figure 4 of the paper injects "5–25% of missing values in employer_rating"
with ``missingness="MNAR"`` — the mechanism matters because uncertainty-aware
learners must not assume missingness is ignorable.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .report import ErrorReport

__all__ = ["inject_missing", "MECHANISMS"]

MECHANISMS = ("MCAR", "MAR", "MNAR")


def _selection_scores(
    frame: DataFrame, column: str, mechanism: str, depends_on: str | None
) -> np.ndarray:
    """Higher score = more likely to go missing."""
    if mechanism == "MCAR":
        return np.zeros(frame.num_rows)
    if mechanism == "MAR":
        driver = depends_on
        if driver is None:
            numeric = [
                c for c in frame.columns if c != column and frame.column(c).is_numeric
            ]
            if not numeric:
                raise ValueError("MAR needs a numeric driver column (depends_on)")
            driver = numeric[0]
        values = frame.column(driver).to_numpy(fill=np.nan).astype(float)
    else:  # MNAR: probability depends on the (unobserved) value itself
        if not frame.column(column).is_numeric:
            raise ValueError("MNAR injection requires a numeric target column")
        values = frame.column(column).to_numpy(fill=np.nan).astype(float)
    values = np.where(np.isnan(values), np.nanmean(values), values)
    spread = values.std() or 1.0
    return (values - values.mean()) / spread


def inject_missing(
    frame: DataFrame,
    column: str,
    fraction: float = 0.1,
    mechanism: str = "MCAR",
    depends_on: str | None = None,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Blank out ``fraction`` of the cells in ``column``.

    Parameters
    ----------
    mechanism:
        ``"MCAR"`` — uniformly at random; ``"MAR"`` — probability increases
        with an *observed* driver column (``depends_on``); ``"MNAR"`` —
        probability increases with the erased value itself (e.g. low
        employer ratings are the ones withheld).
    """
    if mechanism not in MECHANISMS:
        raise ValueError(f"unknown mechanism {mechanism!r}; have {MECHANISMS}")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    target = frame.column(column)
    candidates = np.flatnonzero(~target.mask)
    count = int(round(fraction * frame.num_rows))
    count = min(count, len(candidates))
    if count == 0:
        positions = np.empty(0, dtype=np.int64)
    elif mechanism == "MCAR":
        positions = rng.choice(candidates, size=count, replace=False)
    else:
        scores = _selection_scores(frame, column, mechanism, depends_on)[candidates]
        # Gumbel top-k: sample without replacement, weighted by score.
        noisy = scores + rng.gumbel(size=len(candidates))
        positions = candidates[np.argsort(noisy)[::-1][:count]]
    cells = target.to_list()
    originals = [cells[p] for p in positions]
    out = frame.copy()
    out[column] = target.set_missing(positions)
    report = ErrorReport(
        kind="missing",
        column=column,
        row_ids=frame.row_ids[positions],
        original_values=originals,
        params={
            "fraction": fraction,
            "mechanism": mechanism,
            "depends_on": depends_on,
            "seed": seed,
        },
    )
    return out, report
