# Developer entry points for the repro library.

.PHONY: install test bench examples all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

all: test bench examples
