"""Gradient-based importance: influence functions and TracIn.

Influence functions (Koh & Liang [41]) estimate the effect of removing a
training point on the validation loss via a second-order Taylor expansion
around the trained parameters — no retraining required. TracIn-style scores
(single-checkpoint variant) use first-order gradient alignment instead.

Both operate on :class:`repro.learn.LogisticRegression`, whose softmax loss
surface is available in closed form here.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.special import softmax

from ..learn.models.logistic import LogisticRegression
from .base import ImportanceResult

__all__ = ["influence_importance", "tracin_importance", "per_sample_gradients"]


def _prepare(model: LogisticRegression, X: Any, y: Any) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Design matrix with bias column, class indices, and class probabilities."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    design = np.column_stack([X, np.ones(len(X))])
    classes = list(model.classes_)
    index = np.asarray([classes.index(label) for label in y.tolist()])
    logits = X @ model.coef_.T + model.intercept_
    probs = softmax(logits, axis=1)
    return design, index, probs


def per_sample_gradients(
    model: LogisticRegression, X: Any, y: Any
) -> np.ndarray:
    """Per-sample gradients of the cross-entropy loss, flattened to
    ``(n, n_classes · (n_features + 1))``.

    For the softmax loss, ``∇_W l = (p − onehot(y)) ⊗ [x, 1]``.
    """
    design, index, probs = _prepare(model, X, y)
    delta = probs.copy()
    delta[np.arange(len(index)), index] -= 1.0
    # grads[i] = outer(delta[i], design[i]) flattened
    return np.einsum("ik,id->ikd", delta, design).reshape(len(design), -1)


def _hessian(
    model: LogisticRegression, X: Any, y: Any, damping: float
) -> np.ndarray:
    """Mean Hessian of the softmax loss plus L2 and damping terms.

    ``H_i = (diag(p_i) − p_i p_iᵀ) ⊗ x_i x_iᵀ``. The softmax
    parameterisation has a shift-invariance null space, so ``damping`` keeps
    the matrix invertible (standard practice for influence functions).
    """
    design, __, probs = _prepare(model, X, y)
    n, d1 = design.shape
    k = probs.shape[1]
    H = np.zeros((k * d1, k * d1))
    for i in range(n):
        p = probs[i]
        S = np.diag(p) - np.outer(p, p)
        H += np.kron(S, np.outer(design[i], design[i]))
    H /= n
    # L2 penalty applies to weights only (not the bias column).
    l2_diag = np.tile(np.append(np.ones(d1 - 1), 0.0), k)
    H += model.l2 * np.diag(l2_diag)
    H += damping * np.eye(k * d1)
    return H


def influence_importance(
    model: LogisticRegression,
    x_train: Any,
    y_train: Any,
    x_valid: Any,
    y_valid: Any,
    damping: float = 1e-3,
) -> ImportanceResult:
    """Influence-function estimate of each point's benefit to validation loss.

    ``φ_i = (1/n) · g_validᵀ H⁻¹ g_i`` — the predicted *increase* in total
    validation loss if point i were removed. Positive = helpful, matching
    the library-wide sign convention.
    """
    if not model.is_fitted:
        model = model.fit(x_train, y_train)
    n = len(np.asarray(y_train))
    H = _hessian(model, x_train, y_train, damping)
    g_train = per_sample_gradients(model, x_train, y_train)
    g_valid = per_sample_gradients(model, x_valid, y_valid).sum(axis=0)
    # Solve H s = g_valid once, then dot with every training gradient.
    s = np.linalg.solve(H, g_valid)
    values = (g_train @ s) / n
    return ImportanceResult(
        method="influence",
        values=values,
        extras={"damping": damping},
    )


def tracin_importance(
    model: LogisticRegression,
    x_train: Any,
    y_train: Any,
    x_valid: Any,
    y_valid: Any,
) -> ImportanceResult:
    """Single-checkpoint TracIn: gradient alignment with the validation loss.

    ``φ_i = ⟨g_i, Σ_val g_val⟩`` — positive when a gradient step on point i
    would reduce the validation loss (a *proponent* in TracIn terms).
    """
    if not model.is_fitted:
        model = model.fit(x_train, y_train)
    g_train = per_sample_gradients(model, x_train, y_train)
    g_valid = per_sample_gradients(model, x_valid, y_valid).sum(axis=0)
    values = g_train @ g_valid
    return ImportanceResult(method="tracin", values=values)
