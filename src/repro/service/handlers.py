"""Built-in handlers: running the valuation engine under the job runtime.

The runtime itself is computation-agnostic — handlers are plain
``fn(params, context)`` callables. This module supplies the adapter for
the flagship workload: Monte-Carlo valuation on a
:class:`~repro.importance.engine.ValuationEngine`, with all four service
behaviours wired through:

- the job's remaining **deadline** becomes the engine's ``deadline_s`` (a
  params-level deadline, if any, only tightens it);
- the job's per-id **checkpoint store** becomes the engine's checkpoint,
  so recovered jobs resume from their wave watermark bit-identically;
- wave-boundary **progress snapshots** flow through ``context.progress``
  to every deduplicated subscriber;
- the engine's graceful degradation (``stop_reason`` =
  ``deadline``/``eval_budget``) surfaces as the job's ``degraded``
  terminal state.

Engines are produced by an ``engine_factory(params)`` the operator
registers — the factory owns dataset access, model choice, and worker
pools; request params stay JSON-able so the journal can resurrect them.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from ..importance.pool import PoolUnavailable
from .runtime import JobContext, JobRuntime

__all__ = ["make_valuation_handler", "register_valuation"]

#: ``run_permutations`` keyword arguments a request may set via ``params``.
#: ``weights`` is accepted as a JSON list and converted; ``deadline_s`` is
#: handled separately (it merges with the job deadline instead of passing
#: through).
_RUN_KEYS = (
    "n_permutations",
    "seed",
    "truncation_tolerance",
    "convergence_tolerance",
    "check_every",
    "antithetic",
    "max_evals",
)


def make_valuation_handler(
    engine_factory: Callable[[dict], Any],
) -> Callable[[dict, JobContext], Any]:
    """Adapter from service jobs to ``ValuationEngine.run_permutations``.

    ``engine_factory(params)`` must return the engine to run on — built
    fresh or pulled from an operator-side pool/cache keyed on whatever in
    ``params`` names the dataset. The handler then runs the permutation
    sampler with the request's sampling knobs (``n_permutations``,
    ``seed``, ``convergence_tolerance``, ... — see ``_RUN_KEYS``) and
    returns the :class:`~repro.importance.engine.PermutationRun`.
    """

    def handler(params: Mapping[str, Any], context: JobContext) -> Any:
        params = dict(params)
        engine = engine_factory(params)
        if context.checkpoint is not None and engine.checkpoint is None:
            # Per-job, id-keyed snapshots: what makes the job recoverable
            # after a runtime SIGKILL. A factory-provided store wins.
            engine.checkpoint = context.checkpoint
            engine.resume = context.resume
        registry = getattr(context, "pool_registry", None)
        if (
            registry is not None
            and engine.n_workers > 1
            and getattr(engine, "_pool", None) is None
        ):
            # Sequential jobs over the same dataset fingerprint land on
            # one warm shared-memory fleet instead of forking per run.
            # An unpoolable utility just keeps the per-run fan-out.
            try:
                engine.use_pool(
                    registry.lease(engine.utility, engine.n_workers)
                )
            except PoolUnavailable:
                pass
        kwargs = {key: params[key] for key in _RUN_KEYS if key in params}
        kwargs.setdefault("n_permutations", 50)
        if params.get("weights") is not None:
            kwargs["weights"] = np.asarray(params["weights"], dtype=float)
        deadline = context.deadline_s
        if params.get("deadline_s") is not None:
            own = float(params["deadline_s"])
            deadline = own if deadline is None else min(deadline, own)
        return engine.run_permutations(
            **kwargs,
            deadline_s=deadline,
            progress_callback=context.engine_progress,
        )

    return handler


def register_valuation(
    runtime: JobRuntime,
    engine_factory: Callable[[dict], Any],
    kind: str = "valuation",
) -> None:
    """Register the valuation handler on ``runtime`` under ``kind``."""
    runtime.register_handler(kind, make_valuation_handler(engine_factory))
