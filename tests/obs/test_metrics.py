"""Unit tests for the metrics registry: instruments, snapshots, resets."""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import HISTOGRAM_WINDOW, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        c = obs_metrics.counter("test.rows")
        c.inc()
        c.inc(4.5)
        assert c.value == 5.5
        # Same name returns the same instrument.
        assert obs_metrics.counter("test.rows") is c

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            obs_metrics.counter("test.neg").inc(-1)

    def test_gauge_is_last_write_wins(self):
        g = obs_metrics.gauge("test.depth")
        g.set(3)
        g.set(7)
        assert g.value == 7.0
        assert g.snapshot() == {"type": "gauge", "value": 7.0}

    def test_histogram_aggregates_and_windows(self):
        h = obs_metrics.histogram("test.latency")
        for value in (1.0, 3.0, 2.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 6.0
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0
        assert snap["recent"] == [1.0, 3.0, 2.0]

    def test_histogram_window_is_bounded(self):
        h = obs_metrics.histogram("test.window")
        for i in range(HISTOGRAM_WINDOW + 10):
            h.observe(float(i))
        snap = h.snapshot()
        assert snap["count"] == HISTOGRAM_WINDOW + 10  # aggregate keeps all
        assert len(snap["recent"]) == HISTOGRAM_WINDOW  # window drops oldest
        assert snap["recent"][0] == 10.0

    def test_empty_histogram_snapshot_has_no_extremes(self):
        snap = obs_metrics.histogram("test.empty").snapshot()
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] == 0.0


class TestRegistrySemantics:
    def test_kind_conflict_raises(self):
        obs_metrics.counter("test.conflict")
        with pytest.raises(TypeError):
            obs_metrics.gauge("test.conflict")
        with pytest.raises(TypeError):
            obs_metrics.histogram("test.conflict")

    def test_snapshot_is_a_point_in_time_copy(self):
        c = obs_metrics.counter("test.snap")
        c.inc(2)
        before = obs_metrics.snapshot()
        c.inc(3)
        assert before["test.snap"]["value"] == 2.0
        assert obs_metrics.snapshot()["test.snap"]["value"] == 5.0

    def test_reset_zeroes_but_keeps_registrations(self):
        c = obs_metrics.counter("test.reset")
        h = obs_metrics.histogram("test.reset.h")
        c.inc(5)
        h.observe(1.0)
        obs_metrics.reset()
        assert obs_metrics.registry().names() == ["test.reset", "test.reset.h"]
        assert c.value == 0.0
        assert h.count == 0 and list(h.window) == []
        # The same objects keep working after reset.
        c.inc()
        assert obs_metrics.counter("test.reset") is c
        assert c.value == 1.0

    def test_selective_reset_by_name(self):
        a = obs_metrics.counter("test.a")
        b = obs_metrics.counter("test.b")
        a.inc(1)
        b.inc(1)
        obs_metrics.reset(["test.a", "test.unknown"])  # unknown names ignored
        assert a.value == 0.0
        assert b.value == 1.0

    def test_clear_drops_registrations(self):
        obs_metrics.counter("test.gone").inc()
        obs_metrics.registry().clear()
        assert obs_metrics.registry().names() == []
        # Re-registering after clear starts from zero.
        assert obs_metrics.counter("test.gone").value == 0.0

    def test_export_json(self, tmp_path):
        obs_metrics.counter("test.export").inc(3)
        obs_metrics.histogram("test.export.h").observe(2.0)
        path = tmp_path / "metrics.json"
        obs_metrics.registry().export_json(path)
        payload = json.loads(path.read_text())
        assert payload["test.export"] == {"type": "counter", "value": 3.0}
        assert payload["test.export.h"]["count"] == 1

    def test_independent_registries_do_not_share_state(self):
        private = MetricsRegistry()
        private.counter("test.private").inc()
        assert "test.private" not in obs_metrics.registry().names()
        assert private.snapshot()["test.private"]["value"] == 1.0
