"""Job model for the valuation service: requests, lifecycle, rejection.

A *job* is one unit of server-side work — an importance run, a cleaning
round, a monitoring query — described by a JSON-able :class:`JobRequest`
and executed by a handler registered on the
:class:`~repro.service.runtime.JobRuntime`. Keeping the request fully
serializable is what makes the runtime crash-safe: the journal stores the
request verbatim, so a SIGKILL'd runtime can rebuild every in-flight job
from disk and resume it against its checkpoint watermark.

The lifecycle is a small explicit state machine::

    submitted ──▶ queued ──▶ running ──▶ completed
        │            │          │   └──▶ degraded   (partial result)
        │            │          └──────▶ failed     (retries exhausted)
        │            └─────────────────▶ rejected   (shed under load)
        └──────────────────────────────▶ rejected   (admission refused)

Every accepted job reaches exactly one terminal state; nothing is silently
dropped. ``degraded`` is a *successful* terminal state carrying a partial
:class:`~repro.importance.engine.ValuationResult` — the graceful-degradation
rung between "completed" and "rejected" on the service's degradation ladder.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, AsyncIterator, Mapping

from ..importance.checkpoint import config_fingerprint

__all__ = [
    "Job",
    "JobRejected",
    "JobRequest",
    "JobState",
    "TERMINAL_STATES",
]


class JobState(str, Enum):
    """Lifecycle states; the string values are what the journal stores."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    DEGRADED = "degraded"
    FAILED = "failed"
    REJECTED = "rejected"


#: States a job never leaves. Acceptance contract: every submitted job ends
#: in exactly one of these (crash-recovery included).
TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.DEGRADED, JobState.FAILED, JobState.REJECTED}
)


class JobRejected(RuntimeError):
    """Admission control refused (or shed) a job — with an explicit reason.

    ``reason`` is machine-readable (``"queue_full"``, ``"circuit_open"``,
    ``"tenant_quota"``, ``"shed_by_priority"``, ``"unknown_kind"``,
    ``"runtime_stopped"``); the message adds context. Backpressure is this
    exception instead of unbounded queue growth.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)


@dataclass(frozen=True)
class JobRequest:
    """A fully JSON-able description of one unit of service work.

    Parameters
    ----------
    kind:
        Name of the handler registered on the runtime (``"valuation"``,
        ``"challenge.leaderboard"``, ...).
    params:
        Handler parameters. Must stay JSON-serializable — the journal
        persists them verbatim for crash recovery.
    tenant:
        Fair-share scheduling and circuit-breaker identity.
    priority:
        Higher runs earlier within a tenant and survives load shedding
        longer; under a full queue, a new job may evict ("shed") the
        lowest-priority queued job of strictly lower priority.
    deadline_s:
        End-to-end budget measured from *submission*. Whatever remains at
        execution time is propagated to the handler (and by the built-in
        valuation handler to the engine's ``deadline_s``), so a job that
        waited too long degrades to a partial result instead of running
        unbounded. ``None`` means no deadline.
    max_retries:
        Handler-failure retry budget for this job (in addition to the
        runtime's backoff policy). Exhaustion is terminal ``failed``.
    dataset_fingerprint:
        First half of the deduplication key — typically
        :func:`repro.obs.quality.fingerprint_frame` of the dataset the job
        reads. Jobs with equal ``(dataset_fingerprint, config
        fingerprint)`` keys share one execution.
    dedup:
        Opt out of deduplication (e.g. for submissions with side effects,
        where each call must really run).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    priority: int = 0
    deadline_s: float | None = None
    max_retries: int = 0
    dataset_fingerprint: str | None = None
    dedup: bool = True

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("kind must be a non-empty handler name")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline_s must be >= 0 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def config_fingerprint(self) -> str:
        """Deterministic digest of everything that shapes the computation.

        Tenant/priority/deadline are deliberately excluded: two tenants
        asking the same question about the same dataset should share one
        run — that *is* the dedup contract.
        """
        return config_fingerprint(
            {"kind": self.kind, "params": dict(self.params)}
        )

    def dedup_key(self) -> tuple[str, str, str]:
        """(kind, dataset-fingerprint, config-fingerprint) sharing key."""
        return (
            self.kind,
            self.dataset_fingerprint or "-",
            self.config_fingerprint(),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "max_retries": self.max_retries,
            "dataset_fingerprint": self.dataset_fingerprint,
            "dedup": self.dedup,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Rebuild from a journal record, ignoring unknown fields."""
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in payload.items() if k in known})


class Job:
    """One tracked execution of a :class:`JobRequest` inside the runtime.

    Holds the mutable lifecycle state, the latest streamed progress
    snapshot, the final result, and the asyncio plumbing that fans one
    running computation out to many subscribers. Jobs are created by the
    runtime — user code receives them from ``submit`` and awaits
    :meth:`wait` or iterates :meth:`stream`.
    """

    def __init__(self, job_id: str, request: JobRequest) -> None:
        self.job_id = job_id
        self.request = request
        self.state = JobState.SUBMITTED
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.attempts = 0
        self.result: Any = None
        self.error: str | None = None
        self.reject_reason: str | None = None
        self.stop_reason: str | None = None
        self.progress: dict[str, Any] | None = None
        self.subscribers = 1  # the submitting caller
        self.recovered = False
        self._done = asyncio.Event()
        self._streams: list[asyncio.Queue] = []

    # -- lifecycle -------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: JobState) -> None:
        """Move to ``state``; terminal states resolve all waiters."""
        if self.done:
            raise RuntimeError(
                f"job {self.job_id} is already terminal ({self.state.value})"
            )
        self.state = state
        if state is JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if self.done:
            self.finished_at = time.time()
            self._done.set()
            for queue in self._streams:
                queue.put_nowait(None)  # sentinel: stream closed

    async def wait(self) -> Any:
        """Block until terminal; return the result or raise the failure.

        A rejected job raises :class:`JobRejected`; a failed one raises
        ``RuntimeError`` with the last handler error. ``completed`` and
        ``degraded`` both return the (possibly partial) result — check
        :attr:`state` / :attr:`stop_reason` to distinguish.
        """
        await self._done.wait()
        if self.state is JobState.REJECTED:
            raise JobRejected(self.reject_reason or "rejected", self.job_id)
        if self.state is JobState.FAILED:
            raise RuntimeError(
                f"job {self.job_id} failed after {self.attempts} attempts: "
                f"{self.error}"
            )
        return self.result

    async def stream(self) -> AsyncIterator[dict[str, Any]]:
        """Yield progress snapshots as they arrive, then stop at terminal.

        Every subscriber gets every snapshot published after it starts
        listening (plus the latest one immediately, so late joiners see
        state without waiting a full wave).
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._streams.append(queue)
        try:
            if self.progress is not None:
                yield dict(self.progress)
            if self.done:
                return
            while True:
                item = await queue.get()
                if item is None:
                    return
                yield item
        finally:
            self._streams.remove(queue)

    def publish_progress(self, snapshot: Mapping[str, Any]) -> None:
        """Record and fan one progress snapshot out to all streams.

        Must be called from the event-loop thread (the runtime bridges
        engine callbacks over ``loop.call_soon_threadsafe``).
        """
        self.progress = dict(snapshot)
        for queue in self._streams:
            queue.put_nowait(dict(snapshot))

    # -- accounting ------------------------------------------------------
    @property
    def queue_wait_s(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def latency_s(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def summary(self) -> dict[str, Any]:
        """JSON-able terminal summary, as journaled and ledger-recorded."""
        return {
            "job_id": self.job_id,
            "kind": self.request.kind,
            "tenant": self.request.tenant,
            "priority": self.request.priority,
            "state": self.state.value,
            "attempts": self.attempts,
            "subscribers": self.subscribers,
            "recovered": self.recovered,
            "stop_reason": self.stop_reason,
            "reject_reason": self.reject_reason,
            "error": self.error,
            "queue_wait_s": self.queue_wait_s,
            "latency_s": self.latency_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.job_id!r}, kind={self.request.kind!r}, "
            f"tenant={self.request.tenant!r}, state={self.state.value})"
        )
