"""Experiment F3 — Figure 3: debug a preprocessing pipeline via provenance.

Paper storyline: build the join-join-filter-UDF-encode pipeline over the
letters scenario, compute Datascope importance over the *source* training
table, remove the 25 lowest-importance source tuples through provenance, and
measure the accuracy change (paper: +0.027 after removing harmful tuples
from error-injected data). Shape to reproduce: the removal does not hurt —
and with injected label errors, it helps — and the provenance shortcut
equals a full pipeline re-run (F3-plan: the query plan renders with all
operators).
"""

import os
import time

import numpy as np

import repro.core as nde
from repro.datasets import generate_hiring_data
from repro.errors import inject_label_errors
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    KNeighborsClassifier,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
    clone,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import execute, plan_summary, render_plan, PipelinePlan
from repro.text import SentenceBertTransformer
from repro.viz import format_records

REMOVE_K = 25


def build_pipeline():
    plan = PipelinePlan()
    train = plan.source("train_df")
    jobs = plan.source("jobdetail_df")
    social = plan.source("social_df")
    encoder = ColumnTransformer(
        [
            (SentenceBertTransformer(n_features=32), "letter_text"),
            (Pipeline([CellImputer(), OneHotEncoder()]), "degree"),
            (StandardScaler(), ["age", "employer_rating"]),
        ]
    )
    return (
        train.join(jobs, on="job_id")
        .join(social, on="person_id")
        .filter(lambda df: df["sector"] == "healthcare", "sector == 'healthcare'")
        .with_column("has_twitter", lambda df: df["twitter"].notnull(), "has_twitter")
        .encode(encoder, label_column="sentiment")
    )


def run_figure3() -> dict:
    data = generate_hiring_data(n=900, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    dirty, __ = inject_label_errors(train, "sentiment", fraction=0.2, seed=5)
    sink = build_pipeline()
    sources = {
        "train_df": dirty,
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }
    train_result = execute(sink, sources, fit=True)
    valid_result = execute(sink, dict(sources, train_df=valid), fit=False)

    importances = nde.datascope(train_result, valid_result, source="train_df")
    lowest = importances.lowest(dirty, REMOVE_K)
    X_clean, y_clean = nde.remove(
        train_result, "train_df", dirty.row_ids[lowest].tolist()
    )
    model = KNeighborsClassifier(5)
    acc_before = (
        clone(model)
        .fit(train_result.X, train_result.y)
        .score(valid_result.X, valid_result.y)
    )
    acc_after = (
        clone(model).fit(X_clean, y_clean).score(valid_result.X, valid_result.y)
    )

    # Cross-check: provenance removal == full pipeline re-run on filtered input.
    keep = ~np.isin(dirty.row_ids, dirty.row_ids[lowest])
    rerun = execute(sink, dict(sources, train_df=dirty.filter(keep)), fit=False)
    provenance_exact = bool(
        np.allclose(X_clean, rerun.X) and np.array_equal(y_clean, rerun.y)
    )

    # F3-task: iterative cleaning through the pipeline (the attendee task of
    # the hands-on session — repairs land on source tuples via provenance).
    from repro.cleaning import CleaningOracle, pipeline_iterative_cleaning

    oracle = CleaningOracle(train)
    curve = pipeline_iterative_cleaning(
        sink,
        sources,
        dict(sources, train_df=valid),
        train_source="train_df",
        oracle=oracle,
        model=KNeighborsClassifier(5),
        batch_size=25,
        n_rounds=3,
    )
    return {
        "plan": render_plan(sink),
        "plan_counts": plan_summary(sink),
        "n_encoded": len(train_result.X),
        "acc_before": float(acc_before),
        "acc_after": float(acc_after),
        "delta": float(acc_after - acc_before),
        "provenance_exact": provenance_exact,
        "cleaning_curve": list(zip(curve.budgets(), curve.accuracies())),
    }


def test_fig3_pipeline_debugging(benchmark, write_report):
    result = benchmark.pedantic(run_figure3, rounds=1, iterations=1)

    table = format_records(
        [
            {"quantity": "encoded training rows", "value": result["n_encoded"]},
            {"quantity": "accuracy before removal", "value": result["acc_before"]},
            {"quantity": f"accuracy after removing {REMOVE_K} tuples",
             "value": result["acc_after"]},
            {"quantity": "accuracy delta (paper: +0.027)", "value": result["delta"]},
            {"quantity": "provenance removal == pipeline re-run",
             "value": str(result["provenance_exact"])},
        ]
    )
    curve_text = "\n".join(
        f"  cleaned {budget:>3} source tuples → validation accuracy {acc:.4f}"
        for budget, acc in result["cleaning_curve"]
    )
    write_report(
        "fig3_pipeline",
        result["plan"] + "\n\n" + table
        + "\n\niterative pipeline cleaning (F3-task):\n" + curve_text,
    )

    counts = result["plan_counts"]
    assert counts == {"source": 3, "join": 2, "filter": 1, "map": 1, "encode": 1}
    assert result["provenance_exact"]
    assert result["delta"] >= -0.01  # removing flagged tuples must not hurt
    curve = result["cleaning_curve"]
    assert curve[-1][1] >= curve[0][1] - 0.02  # cleaning does not hurt


# ---------------------------------------------------------------------------
# Experiment F3-exact — exact PTIME valuation vs Monte-Carlo over the same
# pipeline. Smoke sizes via REPRO_BENCH_EXACT_N / REPRO_BENCH_EXACT_PERMS.
# ---------------------------------------------------------------------------
EXACT_N = int(os.environ.get("REPRO_BENCH_EXACT_N", "600"))
EXACT_PERMS = int(os.environ.get("REPRO_BENCH_EXACT_PERMS", "8"))
EXACT_SMOKE = bool(os.environ.get("REPRO_BENCH_EXACT_N", "").strip())


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Fractional ranks with ties averaged (what Spearman expects)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(len(values), dtype=float)
    __, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    sums = np.zeros(len(counts))
    np.add.at(sums, inverse, ranks)
    return sums[inverse] / counts[inverse]


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    ra, rb = _average_ranks(np.asarray(a)), _average_ranks(np.asarray(b))
    ra, rb = ra - ra.mean(), rb - rb.mean()
    denom = float(np.sqrt((ra**2).sum() * (rb**2).sum()))
    return float((ra * rb).sum() / denom) if denom else 0.0


def bottom_k_overlap(a: np.ndarray, b: np.ndarray, k: int) -> float:
    """Fraction of the k lowest-valued rows (the removal set) shared."""
    bottom_a = set(np.argsort(a, kind="stable")[:k].tolist())
    bottom_b = set(np.argsort(b, kind="stable")[:k].tolist())
    return len(bottom_a & bottom_b) / k


def run_exact_vs_mc() -> dict:
    data = generate_hiring_data(n=EXACT_N, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    dirty, __ = inject_label_errors(train, "sentiment", fraction=0.2, seed=5)
    sink = build_pipeline()
    sources = {
        "train_df": dirty,
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }
    train_result = execute(sink, sources, fit=True)
    valid_result = execute(sink, dict(sources, train_df=valid), fit=False)

    t0 = time.perf_counter()
    exact = nde.datascope(
        train_result, valid_result, source="train_df", k=1, method="exact_knn"
    )
    exact_s = time.perf_counter() - t0

    def mc_run(seed: int):
        t0 = time.perf_counter()
        result = nde.datascope(
            train_result, valid_result, source="train_df",
            method="shapley_mc", model=KNeighborsClassifier(1),
            n_permutations=EXACT_PERMS, seed=seed,
        )
        return result, time.perf_counter() - t0

    mc_a, mc_a_s = mc_run(seed=0)
    mc_b, mc_b_s = mc_run(seed=1)

    rids = sorted(exact.by_row_id)
    assert sorted(mc_a.by_row_id) == rids
    ex = np.asarray([exact.by_row_id[r] for r in rids])
    va = np.asarray([mc_a.by_row_id[r] for r in rids])
    vb = np.asarray([mc_b.by_row_id[r] for r in rids])
    k = max(5, len(rids) // 10)

    compiled = exact.extras["compiled"]
    return {
        "n_source_rows": int(dirty.num_rows),
        "n_players": int(compiled.n_players),
        "n_encoded": int(train_result.n_rows),
        "form": compiled.form,
        "compile_fingerprint": compiled.fingerprint,
        "mc_permutations": EXACT_PERMS,
        "mc_evaluations": int(mc_a.extras["encoded"].extras["n_evaluations"]),
        "exact_s": exact_s,
        "mc_s": mc_a_s,
        "mc_b_s": mc_b_s,
        "speedup": mc_a_s / max(exact_s, 1e-9),
        "spearman_exact_vs_mc": spearman(ex, va),
        "spearman_mc_vs_mc": spearman(va, vb),
        "bottom_k": k,
        "bottom_k_overlap_exact_vs_mc": bottom_k_overlap(ex, va, k),
        "bottom_k_overlap_mc_vs_mc": bottom_k_overlap(va, vb, k),
    }


def test_fig3_exact_vs_mc(benchmark, write_report):
    result = benchmark.pedantic(run_exact_vs_mc, rounds=1, iterations=1)

    table = format_records(
        [
            {"quantity": "players (source rows surviving)",
             "value": result["n_players"]},
            {"quantity": "canonical form", "value": result["form"]},
            {"quantity": "exact valuation wall time (s)",
             "value": f"{result['exact_s']:.4f}"},
            {"quantity": f"MC wall time, {result['mc_permutations']} perms (s)",
             "value": f"{result['mc_s']:.4f}"},
            {"quantity": "speedup (MC / exact)",
             "value": f"{result['speedup']:.1f}x"},
            {"quantity": "Spearman(exact, MC)",
             "value": f"{result['spearman_exact_vs_mc']:.3f}"},
            {"quantity": "Spearman(MC, MC') — MC self-agreement",
             "value": f"{result['spearman_mc_vs_mc']:.3f}"},
            {"quantity": f"bottom-{result['bottom_k']} overlap exact vs MC",
             "value": f"{result['bottom_k_overlap_exact_vs_mc']:.2f}"},
            {"quantity": f"bottom-{result['bottom_k']} overlap MC vs MC'",
             "value": f"{result['bottom_k_overlap_mc_vs_mc']:.2f}"},
        ]
    )
    write_report("exact_knn", table, records=result)

    # Exact is a compile + closed form; MC retrains per marginal. The gap
    # must be wide even on throttled CI hardware — but smoke sizes shrink
    # the MC side too, so condition the gate like the pool benchmarks.
    assert result["speedup"] >= (3.0 if EXACT_SMOKE else 10.0)
    # Equal-or-better rank agreement: the exact values must agree with an
    # MC estimate at least as well as two MC estimates agree with each
    # other — same signal, a fraction of the cost, zero variance.
    assert (
        result["spearman_exact_vs_mc"]
        >= result["spearman_mc_vs_mc"] - 0.05
    )
    assert (
        result["bottom_k_overlap_exact_vs_mc"]
        >= result["bottom_k_overlap_mc_vs_mc"] - 0.15
    )
