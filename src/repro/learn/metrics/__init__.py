"""Quality metrics: correctness, fairness, and stability."""

from .classification import (
    accuracy,
    brier_score,
    confusion_matrix,
    error_rate,
    f1_score,
    log_loss,
    macro_f1,
    precision,
    recall,
)
from .fairness import (
    demographic_parity_difference,
    equalized_odds_difference,
    group_rates,
    predictive_parity_difference,
)
from .stability import disagreement_rate, mean_prediction_entropy, prediction_entropy

__all__ = [
    "accuracy",
    "brier_score",
    "confusion_matrix",
    "error_rate",
    "f1_score",
    "log_loss",
    "macro_f1",
    "precision",
    "recall",
    "demographic_parity_difference",
    "equalized_odds_difference",
    "group_rates",
    "predictive_parity_difference",
    "disagreement_rate",
    "mean_prediction_entropy",
    "prediction_entropy",
]
