"""Tests for Datascope's shared attribution mode (side-table importance)."""

import numpy as np
import pytest

from repro.errors import inject_label_errors
from repro.pipeline import datascope_importance, execute
from tests.pipeline.conftest import build_letters_pipeline


@pytest.fixture()
def results(sources, valid_sources):
    __, sink = build_letters_pipeline()
    train_result = execute(sink, sources, fit=True)
    valid_result = execute(sink, valid_sources, fit=False)
    return train_result, valid_result


class TestSharedAttribution:
    def test_side_table_rows_receive_importance(self, results, hiring_data):
        train_result, valid_result = results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y,
            source="jobdetail_df", attribution="shared",
        )
        aligned = importance.for_frame(hiring_data["jobdetail"])
        assert (aligned != 0).sum() > 0

    def test_shared_preserves_total_mass_per_contributing_row(self, results):
        """A side tuple's value is the sum over the output rows it fed, so
        the per-source totals still sum to the encoded total (every output
        row has exactly one jobdetail ancestor in this pipeline)."""
        train_result, valid_result = results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y,
            source="jobdetail_df", attribution="shared",
        )
        encoded_total = importance.extras["encoded"].values.sum()
        assert sum(importance.by_row_id.values()) == pytest.approx(
            encoded_total, abs=1e-9
        )

    def test_unique_mode_rejects_partially_matched_source(self):
        """Unique attribution needs exactly one ancestor per output row;
        unmatched left-join rows violate that, shared mode handles them."""
        from repro.frame import DataFrame
        from repro.learn import ColumnTransformer, StandardScaler
        from repro.pipeline import PipelinePlan

        rng = np.random.default_rng(0)
        left = DataFrame(
            {
                "k": ["a", "b", "zz", "a"],
                "x": rng.normal(size=4),
                "y": ["p", "n", "p", "n"],
            }
        )
        right = DataFrame({"k": ["a", "b"], "w": [1.0, 2.0]})
        plan = PipelinePlan()
        sink = (
            plan.source("left")
            .join(plan.source("right"), on="k")
            .encode(
                ColumnTransformer([(StandardScaler(), ["x"])]), label_column="y"
            )
        )
        result = execute(sink, {"left": left, "right": right})
        x_valid = rng.normal(size=(3, 1))
        y_valid = np.asarray(["p", "n", "p"])
        with pytest.raises(ValueError):
            datascope_importance(
                result, x_valid, y_valid, source="right", attribution="unique"
            )
        shared = datascope_importance(
            result, x_valid, y_valid, source="right", attribution="shared"
        )
        assert set(shared.by_row_id) <= {0, 1}

    def test_shared_equals_unique_for_base_table(self, results, sources):
        train_result, valid_result = results
        unique = datascope_importance(
            train_result, valid_result.X, valid_result.y,
            source="train_df", attribution="unique",
        )
        shared = datascope_importance(
            train_result, valid_result.X, valid_result.y,
            source="train_df", attribution="shared",
        )
        assert unique.by_row_id.keys() == shared.by_row_id.keys()
        for rid, value in unique.by_row_id.items():
            assert shared.by_row_id[rid] == pytest.approx(value)

    def test_invalid_mode_raises(self, results):
        train_result, valid_result = results
        with pytest.raises(ValueError):
            datascope_importance(
                train_result, valid_result.X, valid_result.y,
                source="train_df", attribution="weighted",
            )

    def test_bad_side_tuple_detected(self, sources, valid_sources, hiring_data):
        """Corrupting one jobdetail row (wrong sector label flips which rows
        survive the filter) is visible in side-table importance: the dirty
        tuple feeds output rows whose labels mismatch the validation signal."""
        __, sink = build_letters_pipeline()
        train_result = execute(sink, sources, fit=True)
        valid_result = execute(sink, valid_sources, fit=False)
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y,
            source="jobdetail_df", attribution="shared",
        )
        # Every healthcare job that feeds the pipeline must carry a value.
        jobdetail = hiring_data["jobdetail"]
        healthcare_ids = set(
            jobdetail.filter(jobdetail["sector"] == "healthcare").row_ids.tolist()
        )
        contributing = set(importance.by_row_id)
        assert contributing <= healthcare_ids
