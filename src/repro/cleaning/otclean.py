"""OTClean-style repair of conditional-independence violations [62].

Some data-quality constraints are *distributional*: e.g. "diagnosis must be
independent of race given symptoms" (a fairness/causality constraint the
paper's Learn part motivates). Pirhadi et al. repair such violations by
finding the distribution closest to the data (in optimal-transport cost)
that satisfies the conditional-independence (CI) constraint, then projecting
the data onto it.

This implementation covers the discrete case X ⊥ Y | Z:

1. measure the violation as conditional mutual information I(X; Y | Z);
2. per Z-stratum, the closest CI-satisfying joint under KL projection is
   the product of the stratum's marginals — compute it;
3. repair by *reweighting*: each (x, y, z) cell receives weight
   target(x,y|z) / empirical(x,y|z), so weighted statistics satisfy CI
   exactly while individual tuples stay untouched (no fabricated values);
4. optionally materialise the repair by importance resampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..frame import DataFrame

__all__ = ["conditional_mutual_information", "OTCleanRepair", "otclean"]


def _distribution(
    x: np.ndarray, y: np.ndarray
) -> tuple[np.ndarray, list, list]:
    xs = sorted(set(x.tolist()), key=str)
    ys = sorted(set(y.tolist()), key=str)
    xi = {v: i for i, v in enumerate(xs)}
    yi = {v: i for i, v in enumerate(ys)}
    joint = np.zeros((len(xs), len(ys)))
    for a, b in zip(x.tolist(), y.tolist()):
        joint[xi[a], yi[b]] += 1.0
    joint /= joint.sum()
    return joint, xs, ys


def conditional_mutual_information(
    frame: DataFrame, x_column: str, y_column: str, z_column: str
) -> float:
    """I(X; Y | Z) in nats over the empirical distribution (0 = CI holds)."""
    x = np.asarray(frame.column(x_column).to_list())
    y = np.asarray(frame.column(y_column).to_list())
    z = np.asarray(frame.column(z_column).to_list())
    total = 0.0
    n = len(x)
    for stratum in set(z.tolist()):
        members = z == stratum
        weight = members.sum() / n
        joint, *__ = _distribution(x[members], y[members])
        px = joint.sum(axis=1, keepdims=True)
        py = joint.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(joint > 0, joint / (px @ py), 1.0)
            total += weight * float(np.sum(joint * np.log(ratio)))
    return max(total, 0.0)


@dataclass
class OTCleanRepair:
    """A CI repair expressed as per-tuple weights."""

    weights: np.ndarray
    cmi_before: float
    cmi_after: float
    x_column: str
    y_column: str
    z_column: str
    extras: dict = field(default_factory=dict)

    def resample(
        self, frame: DataFrame, n: int | None = None, seed: int = 0
    ) -> DataFrame:
        """Materialise the repaired distribution by importance resampling."""
        rng = np.random.default_rng(seed)
        n = n if n is not None else frame.num_rows
        probabilities = self.weights / self.weights.sum()
        positions = rng.choice(frame.num_rows, size=n, replace=True, p=probabilities)
        return frame.take(np.sort(positions))


def otclean(
    frame: DataFrame, x_column: str, y_column: str, z_column: str
) -> OTCleanRepair:
    """Repair X ⊥ Y | Z by minimal reweighting.

    Within each Z-stratum the target joint is the product of the stratum
    marginals (the I-projection of the empirical joint onto the CI set);
    tuple weights are the likelihood ratios ``target / empirical``. Weighted
    statistics of the output satisfy the CI constraint exactly, and the
    repair touches no cell values.
    """
    x = np.asarray(frame.column(x_column).to_list())
    y = np.asarray(frame.column(y_column).to_list())
    z = np.asarray(frame.column(z_column).to_list())
    cmi_before = conditional_mutual_information(frame, x_column, y_column, z_column)

    weights = np.ones(frame.num_rows)
    for stratum in set(z.tolist()):
        members = np.flatnonzero(z == stratum)
        joint, xs, ys = _distribution(x[members], y[members])
        xi = {v: i for i, v in enumerate(xs)}
        yi = {v: i for i, v in enumerate(ys)}
        px = joint.sum(axis=1)
        py = joint.sum(axis=0)
        for position in members:
            i, j = xi[x[position]], yi[y[position]]
            empirical = joint[i, j]
            target = px[i] * py[j]
            weights[position] = target / empirical if empirical > 0 else 0.0

    # CMI of the weighted distribution (diagnostic; should be ~0).
    cmi_after = _weighted_cmi(x, y, z, weights)
    return OTCleanRepair(
        weights=weights,
        cmi_before=cmi_before,
        cmi_after=cmi_after,
        x_column=x_column,
        y_column=y_column,
        z_column=z_column,
    )


def _weighted_cmi(
    x: np.ndarray, y: np.ndarray, z: np.ndarray, weights: np.ndarray
) -> float:
    total = 0.0
    w_sum = weights.sum()
    for stratum in set(z.tolist()):
        members = z == stratum
        w = weights[members]
        if w.sum() == 0:
            continue
        xs = sorted(set(x[members].tolist()), key=str)
        ys = sorted(set(y[members].tolist()), key=str)
        xi = {v: i for i, v in enumerate(xs)}
        yi = {v: i for i, v in enumerate(ys)}
        joint = np.zeros((len(xs), len(ys)))
        for a, b, wt in zip(x[members].tolist(), y[members].tolist(), w.tolist()):
            joint[xi[a], yi[b]] += wt
        joint /= joint.sum()
        px = joint.sum(axis=1, keepdims=True)
        py = joint.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(joint > 0, joint / (px @ py), 1.0)
        total += (w.sum() / w_sum) * float(np.sum(joint * np.log(ratio)))
    return max(total, 0.0)
