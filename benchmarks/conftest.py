"""Shared benchmark fixtures.

Every bench writes its rendered report (the paper-style table or figure) to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference concrete
numbers from the last run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def write_report(results_dir):
    def writer(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return writer
