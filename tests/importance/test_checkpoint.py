"""Checkpoint/resume and budget degradation for valuation runs.

The headline contract: a valuation run killed at any point (including
``kill -9`` of the whole driver process) resumes from its last wave-boundary
snapshot and produces values bit-identical to a run that was never
interrupted — for any worker count — and refuses to resume under a changed
configuration. Budget knobs (``deadline_s``/``max_evals``) degrade to
partial results instead of raising.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.importance import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    SubsetUtility,
    ValuationEngine,
    banzhaf_mc,
    config_fingerprint,
    shapley_mc,
)
from repro.importance.checkpoint import CHECKPOINT_SCHEMA_VERSION


def saturating_game(n: int = 10, seed: int = 3) -> SubsetUtility:
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, n)


# ---------------------------------------------------------------------- #
# store round-trips                                                      #
# ---------------------------------------------------------------------- #

finite_floats = st.floats(allow_nan=False, width=64)
state_values = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    finite_floats,
    st.text(max_size=20),
    st.booleans(),
    st.none(),
    st.lists(finite_floats, max_size=8),
)


class TestCheckpointStore:
    @settings(max_examples=50, deadline=None)
    @given(
        state=st.dictionaries(
            st.text(min_size=1, max_size=12).filter(
                lambda k: k != "schema_version"
            ),
            state_values,
            max_size=6,
        )
    )
    def test_save_load_round_trip_is_exact(self, tmp_path_factory, state):
        path = tmp_path_factory.mktemp("ck") / "snapshot.json"
        store = CheckpointStore(path)
        store.save(state)
        loaded = store.load()
        assert loaded.pop("schema_version") == CHECKPOINT_SCHEMA_VERSION
        assert loaded == state  # IEEE-754 doubles round-trip JSON exactly

    def test_float_accumulators_round_trip_bit_exact(self, tmp_path):
        rng = np.random.default_rng(0)
        totals = rng.normal(size=64) * 1e-12
        store = CheckpointStore(tmp_path / "ck.json")
        store.save({"totals": totals.tolist()})
        restored = np.asarray(store.load()["totals"])
        assert np.array_equal(restored, totals)

    def test_missing_file_loads_as_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "absent.json")
        assert store.load() is None
        assert store.load_matching("permutation", "abc") is None
        assert not store.exists()

    def test_malformed_and_wrong_schema_raise(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointStore(path).load()
        path.write_text(json.dumps({"schema_version": 999, "kind": "permutation"}))
        with pytest.raises(CheckpointError, match="schema"):
            CheckpointStore(path).load()

    def test_kind_and_fingerprint_mismatch_refuse(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save({"kind": "permutation", "fingerprint": "aaa"})
        with pytest.raises(CheckpointMismatchError, match="snapshot"):
            store.load_matching("subset", "aaa")
        with pytest.raises(CheckpointMismatchError, match="fingerprint"):
            store.load_matching("permutation", "bbb")

    def test_clear_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save({"kind": "x"})
        store.clear()
        store.clear()
        assert store.load() is None


class TestConfigFingerprint:
    def test_key_order_does_not_matter(self):
        a = config_fingerprint({"seed": 1, "n": 10})
        b = config_fingerprint({"n": 10, "seed": 1})
        assert a == b

    def test_arrays_and_scalars_hash_stably(self):
        weights = np.linspace(0, 1, 5)
        a = config_fingerprint({"weights": weights, "n": np.int64(3)})
        b = config_fingerprint({"weights": weights.copy(), "n": 3})
        assert a == b
        c = config_fingerprint({"weights": weights * 2, "n": 3})
        assert a != c


# ---------------------------------------------------------------------- #
# engine resume fidelity                                                 #
# ---------------------------------------------------------------------- #


class TestEngineResume:
    def test_budget_stop_then_resume_is_bit_identical(self, tmp_path):
        uninterrupted = ValuationEngine(saturating_game()).run_permutations(
            30, seed=5
        )
        ck = tmp_path / "ck.json"
        partial = ValuationEngine(
            saturating_game(), checkpoint=ck
        ).run_permutations(30, seed=5, max_evals=60)
        assert partial.stop_reason == "eval_budget"
        assert not partial.converged
        assert 0 < partial.n_permutations < 30
        resumed = ValuationEngine(
            saturating_game(), checkpoint=ck, resume=True
        ).run_permutations(30, seed=5)
        assert resumed.resumed_from == partial.n_permutations
        assert resumed.stop_reason == "completed"
        assert np.array_equal(resumed.values(), uninterrupted.values())
        assert np.array_equal(resumed.stderr(), uninterrupted.stderr())

    def test_resume_is_worker_count_invariant(self, tmp_path):
        if __import__("repro.importance.engine", fromlist=["_FORK_CTX"])._FORK_CTX is None:
            pytest.skip("requires a fork-capable platform")
        uninterrupted = ValuationEngine(saturating_game()).run_permutations(
            24, seed=8
        )
        ck = tmp_path / "ck.json"
        ValuationEngine(saturating_game(), checkpoint=ck).run_permutations(
            24, seed=8, max_evals=50
        )
        resumed = ValuationEngine(
            saturating_game(), checkpoint=ck, resume=True, n_workers=3
        ).run_permutations(24, seed=8)
        assert np.array_equal(resumed.values(), uninterrupted.values())

    def test_resume_with_different_config_refuses(self, tmp_path):
        ck = tmp_path / "ck.json"
        ValuationEngine(saturating_game(), checkpoint=ck).run_permutations(
            20, seed=5, max_evals=40
        )
        with pytest.raises(CheckpointMismatchError):
            ValuationEngine(
                saturating_game(), checkpoint=ck, resume=True
            ).run_permutations(20, seed=6)

    def test_budget_knobs_are_not_part_of_the_fingerprint(self, tmp_path):
        """Resuming a budget-stopped run with a *larger* budget is the
        intended workflow and must not trip the fingerprint check."""
        ck = tmp_path / "ck.json"
        ValuationEngine(saturating_game(), checkpoint=ck).run_permutations(
            20, seed=5, max_evals=40
        )
        resumed = ValuationEngine(
            saturating_game(), checkpoint=ck, resume=True
        ).run_permutations(20, seed=5, max_evals=10_000)
        assert resumed.stop_reason == "completed"

    def test_finished_run_resumes_without_reevaluating(self, tmp_path):
        ck = tmp_path / "ck.json"
        first = ValuationEngine(saturating_game(), checkpoint=ck).run_permutations(
            15, seed=4
        )
        game = saturating_game()
        engine = ValuationEngine(game, checkpoint=ck, resume=True)
        again = engine.run_permutations(15, seed=4)
        assert game.n_evaluations == 0
        assert np.array_equal(again.values(), first.values())

    def test_checkpoint_without_resume_overwrites(self, tmp_path):
        ck = tmp_path / "ck.json"
        store = CheckpointStore(ck)
        ValuationEngine(saturating_game(), checkpoint=store).run_permutations(
            10, seed=1
        )
        snapshot = store.load()
        assert snapshot["finished"] is True
        assert snapshot["completed"] == 10


@pytest.mark.slow
def test_kill_minus_nine_then_resume_is_bit_identical(tmp_path):
    """Full-process SIGKILL mid-run: the child driver is killed between wave
    boundaries; resuming from its snapshot reproduces the uninterrupted
    values bit-for-bit (compared via exact float repr across processes)."""
    ck = tmp_path / "ck.json"
    script = textwrap.dedent(
        f"""
        import time
        import numpy as np
        from repro.importance import SubsetUtility, ValuationEngine

        rng = np.random.default_rng(3)
        w = rng.normal(size=8)

        def func(indices):
            time.sleep(0.003)  # slow enough to be killed mid-run
            idx = np.asarray(indices, dtype=int)
            return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

        engine = ValuationEngine(
            SubsetUtility(func, 8), checkpoint={str(ck)!r}
        )
        engine.run_permutations(60, seed=5, check_every=5)
        """
    )
    env = dict(os.environ, PYTHONPATH="src")
    child = subprocess.Popen([sys.executable, "-c", script], env=env)
    deadline = time.monotonic() + 30.0
    while not ck.exists() and time.monotonic() < deadline:
        if child.poll() is not None:
            break
        time.sleep(0.01)
    assert ck.exists(), "child never wrote a checkpoint"
    child.send_signal(signal.SIGKILL)
    child.wait(timeout=30)
    snapshot = CheckpointStore(ck).load()
    assert 0 < snapshot["completed"] <= 60
    if snapshot["completed"] == 60:  # pragma: no cover - timing-dependent
        pytest.skip("child finished before the kill landed")

    rng = np.random.default_rng(3)
    w = rng.normal(size=8)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    uninterrupted = ValuationEngine(SubsetUtility(func, 8)).run_permutations(
        60, seed=5, check_every=5
    )
    resumed = ValuationEngine(
        SubsetUtility(func, 8), checkpoint=ck, resume=True
    ).run_permutations(60, seed=5, check_every=5)
    assert resumed.resumed_from == snapshot["completed"]
    assert np.array_equal(resumed.values(), uninterrupted.values())


# ---------------------------------------------------------------------- #
# budget degradation                                                     #
# ---------------------------------------------------------------------- #


class TestBudgetDegradation:
    def test_deadline_returns_partial_not_raise(self):
        run = ValuationEngine(saturating_game()).run_permutations(
            10_000, seed=5, deadline_s=0.05
        )
        assert run.stop_reason == "deadline"
        assert not run.converged
        assert 0 < run.n_permutations < 10_000
        assert np.all(np.isfinite(run.values()))
        assert np.all(np.isfinite(run.stderr()))

    def test_stderr_shrinks_as_budget_grows(self):
        # Budgets stay well below 2**10 = 1024, the point at which the memo
        # holds every subset of the 10-point game and evaluations stop.
        means = []
        for budget in (60, 200, 600):
            run = ValuationEngine(saturating_game()).run_permutations(
                10_000, seed=5, max_evals=budget
            )
            assert run.stop_reason == "eval_budget"
            assert not run.converged
            means.append(float(run.stderr().mean()))
        assert means[0] > means[1] > means[2]

    def test_partial_prefix_matches_uninterrupted_prefix(self):
        partial = ValuationEngine(saturating_game()).run_permutations(
            100, seed=5, max_evals=80
        )
        exact_prefix = ValuationEngine(saturating_game()).run_permutations(
            partial.n_permutations, seed=5
        )
        assert np.array_equal(partial.values(), exact_prefix.values())

    def test_shapley_mc_budget_surfaces_in_extras(self, tmp_path):
        result = shapley_mc(
            saturating_game(), n_permutations=5_000, seed=5, max_evals=100
        )
        assert result.extras["converged"] is False
        assert result.extras["stop_reason"] == "eval_budget"
        assert result.extras["census"]["n_permutations_target"] == 5_000
        assert len(result.extras["stderr"]) == 10

    def test_validation(self):
        # Negative budgets are caller bugs; zero budgets are a legitimate
        # "already out of budget" state (see TestZeroBudgets below).
        engine = ValuationEngine(saturating_game())
        with pytest.raises(ValueError):
            engine.run_permutations(10, deadline_s=-0.1)
        with pytest.raises(ValueError):
            engine.run_permutations(10, max_evals=-1)


# ---------------------------------------------------------------------- #
# subset-sampling (banzhaf) resume                                       #
# ---------------------------------------------------------------------- #


class TestSubsetResume:
    def test_banzhaf_resume_answers_from_checkpoint(self, tmp_path):
        ck = tmp_path / "ck.json"
        first = banzhaf_mc(saturating_game(), n_samples=40, seed=2, checkpoint=ck)
        game = saturating_game()
        again = banzhaf_mc(game, n_samples=40, seed=2, checkpoint=ck, resume=True)
        assert np.array_equal(first.values, again.values)
        assert game.n_evaluations == 0  # everything came from the snapshot

    def test_partial_subset_checkpoint_resumes_bit_identical(self, tmp_path):
        ck = tmp_path / "ck.json"
        # 30 distinct subsets (bitmask construction), so the fault below
        # genuinely fires mid-run instead of being absorbed by the memo.
        subsets = [[j for j in range(10) if (i >> j) & 1] for i in range(1, 31)]
        config = {"estimator": "test", "n": 10}
        full = ValuationEngine(saturating_game(10)).evaluate_many(subsets)

        class Boom(RuntimeError):
            pass

        game = saturating_game(10)
        original = game.func

        def exploding(indices):
            if game.n_evaluations >= 8:
                raise Boom()
            return original(indices)

        game.func = exploding
        engine = ValuationEngine(game, checkpoint=ck)
        with pytest.raises(Boom):
            engine.evaluate_many(subsets, checkpoint_config=config, wave_size=4)
        snapshot = CheckpointStore(ck).load()
        assert not snapshot["finished"]
        assert snapshot["values"]

        resumed_game = saturating_game(10)
        resumed = ValuationEngine(
            resumed_game, checkpoint=ck, resume=True
        ).evaluate_many(subsets, checkpoint_config=config, wave_size=4)
        assert np.array_equal(resumed, full)
        assert resumed_game.n_evaluations < 30

    def test_subset_fingerprint_mismatch_refuses(self, tmp_path):
        ck = tmp_path / "ck.json"
        banzhaf_mc(saturating_game(), n_samples=20, seed=2, checkpoint=ck)
        with pytest.raises(CheckpointMismatchError):
            banzhaf_mc(
                saturating_game(), n_samples=21, seed=2, checkpoint=ck, resume=True
            )


# ---------------------------------------------------------------------- #
# zero budgets and progress snapshots (service-layer contracts)          #
# ---------------------------------------------------------------------- #


class TestZeroBudgets:
    """`deadline_s=0` / `max_evals=0` return immediately with a well-formed
    empty partial result — the contract the service runtime leans on for
    jobs whose deadline expired while they were queued."""

    def test_zero_deadline_returns_immediately(self):
        calls = []
        game = saturating_game()
        original = game.evaluate

        def counting(indices):
            calls.append(tuple(indices))
            return original(indices)

        game.evaluate = counting
        run = ValuationEngine(game).run_permutations(50, seed=1, deadline_s=0.0)
        assert calls == []  # not a single utility evaluation
        assert run.stop_reason == "deadline"
        assert not run.converged
        assert run.n_permutations == 0
        assert np.array_equal(run.values(), np.zeros(game.n_train))
        assert np.all(np.isfinite(run.stderr()))

    def test_zero_max_evals_returns_immediately(self):
        run = ValuationEngine(saturating_game()).run_permutations(
            50, seed=1, max_evals=0
        )
        assert run.stop_reason == "eval_budget"
        assert run.n_permutations == 0 and run.n_evaluations == 0
        assert np.all(np.isfinite(run.values()))

    def test_zero_budget_with_truncation_skips_anchor_evals(self):
        # truncation_tolerance normally forces a full-coalition anchor
        # evaluation; a zero budget must skip even that.
        run = ValuationEngine(saturating_game()).run_permutations(
            50, seed=1, truncation_tolerance=0.1, max_evals=0
        )
        assert run.n_evaluations == 0
        assert run.stop_reason == "eval_budget"

class TestProgressCallback:
    def test_wave_boundary_snapshots(self):
        snapshots = []
        run = ValuationEngine(saturating_game()).run_permutations(
            20, seed=2, check_every=5, progress_callback=snapshots.append
        )
        completed = [s["completed"] for s in snapshots]
        assert completed == [5, 10, 15, 20]
        assert all(s["target"] == 20 for s in snapshots)
        # The last snapshot matches the final result bit-for-bit.
        assert np.array_equal(snapshots[-1]["values"], run.values())
        assert snapshots[-1]["n_evaluations"] == run.n_evaluations
        evals = [s["n_evaluations"] for s in snapshots]
        assert evals == sorted(evals)

    def test_progress_does_not_perturb_values(self):
        plain = ValuationEngine(saturating_game()).run_permutations(20, seed=2)
        observed = ValuationEngine(saturating_game()).run_permutations(
            20, seed=2, progress_callback=lambda s: None
        )
        assert np.array_equal(plain.values(), observed.values())


# ---------------------------------------------------------------------- #
# retention (keep_last pruning of wave archives)                         #
# ---------------------------------------------------------------------- #


class TestRetention:
    def test_keep_last_bounds_archives(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json", keep_last=2)
        for wave in range(1, 6):
            store.save({"completed": wave * 5, "config_fingerprint": "fp"})
        names = [path.name for path in store.archives()]
        assert names == ["ck.json.wave00000020", "ck.json.wave00000025"]
        assert store.load()["completed"] == 25  # primary is always newest

    def test_resume_unaffected_by_pruning(self, tmp_path):
        ck = tmp_path / "ck.json"
        game = saturating_game()
        interrupted = ValuationEngine(game, checkpoint=CheckpointStore(ck, keep_last=1))
        interrupted.run_permutations(20, seed=7, check_every=5, max_evals=60)
        store = CheckpointStore(ck, keep_last=1)
        assert len(store.archives()) == 1  # superseded waves pruned
        resumed = ValuationEngine(
            saturating_game(), checkpoint=CheckpointStore(ck, keep_last=1),
            resume=True,
        ).run_permutations(20, seed=7, check_every=5)
        uninterrupted = ValuationEngine(saturating_game()).run_permutations(
            20, seed=7, check_every=5
        )
        assert resumed.resumed_from > 0
        assert np.array_equal(resumed.values(), uninterrupted.values())

    def test_clear_removes_archives_too(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json", keep_last=3)
        for wave in range(3):
            store.save({"completed": wave})
        store.clear()
        assert not store.exists() and store.archives() == []
        assert list(tmp_path.iterdir()) == []

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointStore(tmp_path / "ck.json", keep_last=0)

    def test_default_keeps_no_archives(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save({"completed": 1})
        store.save({"completed": 2})
        assert store.archives() == []
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


# ---------------------------------------------------------------------- #
# corruption: quarantine + generation-by-generation archive fallback     #
# ---------------------------------------------------------------------- #


class TestCorruptionFallback:
    def _populate(self, tmp_path, waves=4, keep_last=3):
        store = CheckpointStore(tmp_path / "ck.json", keep_last=keep_last)
        for wave in range(1, waves + 1):
            store.save(
                {"kind": "permutation", "fingerprint": "fp",
                 "completed": wave * 5, "totals": [float(wave)]}
            )
        return store

    def test_corrupt_primary_falls_back_to_newest_archive(self, tmp_path):
        store = self._populate(tmp_path)
        store.path.write_text("{bit rot", encoding="utf-8")
        payload = store.load()
        assert payload["completed"] == 20  # newest retained generation
        assert store.last_recovery["recovered_from"].endswith("wave00000020")
        assert store.last_recovery["completed"] == 20
        # the primary was healed: the next load is clean
        assert store.load()["completed"] == 20
        assert store.last_recovery is None

    def test_crc_mismatch_detected_and_recovered(self, tmp_path):
        store = self._populate(tmp_path)
        text = store.path.read_text(encoding="utf-8")
        # flip payload bytes but keep the line valid JSON: parses fine,
        # fails the CRC — exactly what un-checksummed persistence missed
        store.path.write_text(text.replace('"completed":20', '"completed":99'))
        payload = store.load()
        assert payload["completed"] == 20
        assert "crc_mismatch" in store.last_recovery["primary_error"]

    def test_falls_back_past_corrupt_archives(self, tmp_path):
        store = self._populate(tmp_path)
        store.path.write_text("garbage")
        archives = store.archives()
        archives[-1].write_text("also garbage")  # newest archive is bad too
        payload = store.load()
        assert payload["completed"] == 15  # second-newest generation wins
        assert store.last_recovery["archives_tried"] == 2

    def test_quarantines_corrupt_primary_to_sidecar(self, tmp_path):
        from repro.obs.atomicio import read_jsonl

        store = self._populate(tmp_path)
        store.path.write_text("{bit rot")
        store.load()
        sidecar = tmp_path / "ck.json.corrupt"
        assert sidecar.exists()
        records, report = read_jsonl(sidecar, artifact="quarantine")
        assert report.clean
        assert records[0]["kind"] == "quarantined_record"
        assert records[0]["raw"] == "{bit rot"

    def test_raises_original_error_when_no_archive_survives(self, tmp_path):
        store = self._populate(tmp_path)
        store.path.write_text("{bit rot")
        for archive in store.archives():
            archive.write_text("dead")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load()
        assert store.last_recovery["recovered_from"] is None

    def test_wrong_schema_is_a_fallback_candidate_not_fatal(self, tmp_path):
        store = self._populate(tmp_path)
        store.path.write_text(
            json.dumps({"schema_version": 999, "kind": "permutation"})
        )
        assert store.load()["completed"] == 20

    def test_fallback_emits_metrics_and_warn_alert(self, tmp_path):
        from repro.obs import metrics as obs_metrics
        from repro.obs.atomicio import storage_alerts

        storage_alerts(clear=True)
        store = self._populate(tmp_path)
        store.path.write_text("junk")
        store.load()
        snap = obs_metrics.snapshot()
        assert any(
            name.startswith("storage.checkpoint_fallback")
            and entry["value"] >= 1
            for name, entry in snap.items()
        )
        alerts = storage_alerts()
        fallback = [
            a for a in alerts if a.metric == "storage.checkpoint_fallback"
        ]
        assert fallback and fallback[-1].severity == "warn"

    def test_resume_bit_identical_after_primary_corruption(self, tmp_path):
        ck = tmp_path / "ck.json"
        interrupted = ValuationEngine(
            saturating_game(), checkpoint=CheckpointStore(ck, keep_last=3)
        )
        interrupted.run_permutations(30, seed=5, check_every=5, max_evals=60)
        # rot the primary snapshot after the "crash"
        ck.write_bytes(ck.read_bytes()[:-7] + b"XXXXXXX")
        resumed = ValuationEngine(
            saturating_game(),
            checkpoint=CheckpointStore(ck, keep_last=3),
            resume=True,
        ).run_permutations(30, seed=5, check_every=5)
        uninterrupted = ValuationEngine(saturating_game()).run_permutations(
            30, seed=5, check_every=5
        )
        assert resumed.resumed_from > 0
        assert np.array_equal(resumed.values(), uninterrupted.values())
