"""Experiment — data importance for retrieval-augmented generation [47].

Poison a retrieval corpus with contradicting documents, compute exact
KNN-Shapley importance of every document against a query workload, prune
the lowest-value documents, and re-measure answer accuracy. Shape to
reproduce: the poisoned documents concentrate at the bottom of the ranking
and pruning them recovers accuracy.
"""

import numpy as np

from repro.importance import RetrievalCorpus, rag_importance
from repro.text import TextEmbedder
from repro.viz import format_records

FACTS = [
    ("france", "paris"), ("japan", "tokyo"), ("kenya", "nairobi"),
    ("brazil", "brasilia"), ("canada", "ottawa"), ("norway", "oslo"),
    ("egypt", "cairo"), ("india", "delhi"), ("chile", "santiago"),
    ("ghana", "accra"), ("peru", "lima"), ("spain", "madrid"),
    ("italy", "rome"), ("greece", "athens"), ("poland", "warsaw"),
]
POISONED = [("france", "lyon"), ("japan", "osaka"), ("spain", "seville")]
POISON_COPIES = 2  # two contradicting copies outvote the one true doc at k=3


def run_rag() -> dict:
    documents = [f"the capital city of {c} is {cap}" for c, cap in FACTS]
    answers = [cap for __, cap in FACTS]
    for country, wrong in POISONED:
        for copy in range(POISON_COPIES):
            documents.append(
                f"the capital city of {country} is {wrong}"
                + (" indeed" * copy)  # near-duplicates, not exact ones
            )
            answers.append(wrong)
    corpus = RetrievalCorpus(
        documents, np.asarray(answers), embedder=TextEmbedder(n_features=256)
    )
    queries = [f"what is the capital city of {c}" for c, __ in FACTS]
    truth = [cap for __, cap in FACTS]

    n_poison_docs = len(POISONED) * POISON_COPIES
    accuracy_dirty = corpus.accuracy(queries, truth, k=3)
    importance = rag_importance(corpus, queries, truth, k=3)
    worst = importance.lowest(n_poison_docs)
    poisoned_positions = set(range(len(FACTS), len(FACTS) + n_poison_docs))
    hits = len(set(int(w) for w in worst) & poisoned_positions)

    pruned = corpus.without(worst.tolist())
    accuracy_pruned = pruned.accuracy(queries, truth, k=3)
    return {
        "accuracy_dirty": accuracy_dirty,
        "accuracy_pruned": accuracy_pruned,
        "poison_detection_hits": hits,
        "n_poisoned": n_poison_docs,
        "flagged": worst.tolist(),
    }


def test_rag_importance(benchmark, write_report):
    result = benchmark.pedantic(run_rag, rounds=1, iterations=1)
    report = format_records(
        [
            {"quantity": "answer accuracy with poisoned corpus",
             "value": result["accuracy_dirty"]},
            {"quantity": f"after pruning {result['n_poisoned']} lowest-value docs",
             "value": result["accuracy_pruned"]},
            {"quantity": "poisoned docs among the flagged",
             "value": f"{result['poison_detection_hits']}/{result['n_poisoned']}"},
        ]
    )
    write_report("rag_importance", report)

    assert result["poison_detection_hits"] >= result["n_poisoned"] - 1
    # The duplicated poison actually flips answers; pruning must recover.
    assert result["accuracy_dirty"] < 1.0
    assert result["accuracy_pruned"] > result["accuracy_dirty"]
