"""The data-debugging challenge (paper Section 3.2), played end to end.

A training set with hidden errors, a budgeted cleaning oracle, a hidden test
set, and a leaderboard. Three scripted participants compete:

- ``random-player`` cleans arbitrary tuples,
- ``confident-player`` uses confident learning (no validation data needed),
- ``shapley-player`` uses exact KNN-Shapley against the validation split.

Run with:  python examples/debugging_challenge.py
"""

import numpy as np

from repro.challenge import DebuggingChallenge
from repro.importance import confident_learning, knn_shapley


def main() -> None:
    game = DebuggingChallenge(n=600, cleaning_budget=80, error_seed=21)
    print(
        f"challenge: {game.train.num_rows} training letters with hidden errors, "
        f"budget = {game.cleaning_budget} repairs, baseline accuracy = "
        f"{game.baseline_accuracy:.3f}\n"
    )

    X = game.featurize(game.train)
    y = np.asarray(game.train.column("sentiment").to_list())
    Xv = game.featurize(game.valid)
    yv = np.asarray(game.valid.column("sentiment").to_list())

    rng = np.random.default_rng(0)
    submissions = {
        "random-player": rng.choice(
            game.train.row_ids, size=80, replace=False
        ).tolist(),
        "confident-player": game.train.row_ids[
            confident_learning(X, y, seed=0).lowest(80)
        ].tolist(),
        "shapley-player": game.train.row_ids[
            knn_shapley(X, y, Xv, yv, k=5).lowest(80)
        ].tolist(),
    }

    errors = set(game.reveal_errors().tolist())
    for name, ids in submissions.items():
        result = game.submit(name, ids)
        hits = len(set(int(i) for i in ids) & errors)
        print(
            f"{name:<18} cleaned {result.n_cleaned} tuples "
            f"({hits} true errors) → hidden test accuracy {result.hidden_test_accuracy:.3f}"
        )

    print("\nfinal leaderboard:")
    print(game.leaderboard.render())
    print(
        f"\n(for reference: cleaning exactly the true errors would reach "
        f"{game.oracle_upper_bound():.3f})"
    )


if __name__ == "__main__":
    main()
