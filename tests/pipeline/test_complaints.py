"""Tests for complaint-driven training-data debugging."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.learn import KNeighborsClassifier, LogisticRegression
from repro.pipeline import Complaint, resolve_complaint


@pytest.fixture()
def poisoned_task():
    """A task where one region is poisoned with flipped labels."""
    rng = np.random.default_rng(4)
    X, y = make_classification(n=200, n_features=3, noise=0.1, seed=4)
    Xtr, ytr = X[:150].copy(), y[:150].copy()
    # Poison: flip labels of the 8 points nearest to a chosen query.
    query = Xtr[0] + 0.01
    distances = np.linalg.norm(Xtr - query, axis=1)
    poisoned = np.argsort(distances)[:8]
    true_label = y[0]
    ytr[poisoned] = 1 - true_label
    return Xtr, ytr, query, int(true_label), X[150:], y[150:]


class TestComplaint:
    def test_satisfied_check(self, binary_data):
        Xtr, ytr, *__ = binary_data
        model = LogisticRegression().fit(Xtr, ytr)
        x = Xtr[0]
        prediction = model.predict(x.reshape(1, -1))[0]
        assert Complaint(x, prediction).is_satisfied(model)
        assert not Complaint(x, 1 - prediction).is_satisfied(model)


class TestResolveComplaint:
    def test_already_satisfied_removes_nothing(self, binary_data):
        Xtr, ytr, *__ = binary_data
        model = LogisticRegression().fit(Xtr, ytr)
        x = Xtr[0]
        complaint = Complaint(x, model.predict(x.reshape(1, -1))[0])
        resolution = resolve_complaint(LogisticRegression(), Xtr, ytr, complaint)
        assert resolution.resolved
        assert len(resolution.removed_positions) == 0

    def test_resolves_poisoned_prediction(self, poisoned_task):
        Xtr, ytr, query, true_label, Xte, yte = poisoned_task
        complaint = Complaint(query, true_label)
        model = KNeighborsClassifier(5)
        assert not complaint.is_satisfied(
            KNeighborsClassifier(5).fit(Xtr, ytr)
        ), "sanity: the poisoning must actually break the prediction"
        resolution = resolve_complaint(
            model, Xtr, ytr, complaint, max_removals=25, batch_size=5,
            x_holdout=Xte, y_holdout=yte,
        )
        assert resolution.resolved
        assert 0 < len(resolution.removed_positions) <= 25

    def test_collateral_accuracy_tracked(self, poisoned_task):
        Xtr, ytr, query, true_label, Xte, yte = poisoned_task
        resolution = resolve_complaint(
            KNeighborsClassifier(5), Xtr, ytr, Complaint(query, true_label),
            x_holdout=Xte, y_holdout=yte,
        )
        assert resolution.accuracy_before is not None
        assert resolution.accuracy_after is not None
        # Removing poison should not tank holdout accuracy.
        assert resolution.accuracy_after >= resolution.accuracy_before - 0.1

    def test_gives_up_within_budget(self, binary_data):
        """An impossible complaint (far outlier, hopeless label) terminates."""
        Xtr, ytr, *__ = binary_data
        hopeless = Complaint(np.full(Xtr.shape[1], 50.0), -99)
        resolution = resolve_complaint(
            LogisticRegression(), Xtr, ytr, hopeless, max_removals=10
        )
        assert not resolution.resolved
        assert len(resolution.removed_positions) <= 10

    def test_trace_records_rounds(self, poisoned_task):
        Xtr, ytr, query, true_label, *__ = poisoned_task
        resolution = resolve_complaint(
            KNeighborsClassifier(5), Xtr, ytr, Complaint(query, true_label)
        )
        if resolution.removed_positions.size:
            assert resolution.trace
            assert resolution.trace[-1]["satisfied"] == resolution.resolved
