"""Cross-subsystem integration tests: the tutorial's storylines end to end.

Each test exercises several subsystems together the way the hands-on
session (Section 3) chains them, verifying the *interactions* rather than
any single module.
"""

import numpy as np
import pytest

import repro.core as nde
from repro.challenge import DebuggingChallenge
from repro.cleaning import CleaningOracle, iterative_cleaning, make_strategy
from repro.datasets import generate_hiring_data
from repro.errors import inject_label_errors, inject_missing
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    KNeighborsClassifier,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
    clone,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import (
    PipelinePlan,
    PipelineScreener,
    datascope_importance,
    execute,
)
from repro.text import SentenceBertTransformer
from repro.uncertainty import ZorroTrainer, certain_prediction_report


class TestIdentifyStoryline:
    """Figure 2: inject → measure → rank → clean → recover."""

    def test_full_loop(self):
        train, valid, __ = nde.load_recommendation_letters(n=300, seed=11)
        model = KNeighborsClassifier(5)
        dirty = nde.inject_labelerrors(train, fraction=0.25, seed=1)
        acc_clean = nde.evaluate_model(train, valid, model=model)
        acc_dirty = nde.evaluate_model(dirty, valid, model=model)
        assert acc_dirty < acc_clean + 1e-9

        importances = nde.knn_shapley_values(dirty, validation=valid)
        flagged = np.argsort(importances)[:40]
        oracle = CleaningOracle(train)
        repaired = oracle.clean(dirty, [int(dirty.row_ids[p]) for p in flagged])
        acc_repaired = nde.evaluate_model(repaired, valid, model=model)
        assert acc_repaired >= acc_dirty

    def test_iterative_cleaning_converges_to_clean_baseline(self):
        train, valid, __ = nde.load_recommendation_letters(n=240, seed=5)
        dirty, __ = inject_label_errors(train, "sentiment", fraction=0.3, seed=5)
        oracle = CleaningOracle(train)
        curve = iterative_cleaning(
            dirty, valid, nde.default_featurize, "sentiment", oracle,
            make_strategy("knn_shapley"), KNeighborsClassifier(5),
            batch_size=48, n_rounds=5,
        )
        # Budget covers the whole frame: the final model is the clean model.
        clean_acc = nde.evaluate_model(train, valid, model=KNeighborsClassifier(5))
        assert curve.final_accuracy == pytest.approx(clean_acc, abs=1e-9)


class TestDebugStoryline:
    """Figure 3: source errors found through a provenance-tracked pipeline."""

    def test_pipeline_debug_and_screen(self):
        data = generate_hiring_data(n=500, seed=3)
        train, valid = split_frame(data["letters"], fractions=(0.8, 0.2), seed=0)
        dirty, report = inject_label_errors(train, "sentiment", 0.2, seed=2)

        plan = PipelinePlan()
        encoder = ColumnTransformer(
            [
                (SentenceBertTransformer(n_features=16), "letter_text"),
                (Pipeline([CellImputer(), OneHotEncoder()]), "degree"),
                (StandardScaler(), ["age", "employer_rating"]),
            ]
        )
        sink = (
            plan.source("train_df")
            .join(plan.source("jobdetail_df"), on="job_id")
            .encode(encoder, label_column="sentiment")
        )
        sources = {"train_df": dirty, "jobdetail_df": data["jobdetail"]}
        result = execute(sink, sources, fit=True)
        valid_result = execute(sink, dict(sources, train_df=valid), fit=False)

        # Screening notices the labels are dirty.
        screening = PipelineScreener(fail_at="warning").screen(result)
        assert any(i.check == "label_errors" for i in screening.issues)

        # Datascope importance finds the corrupted source rows.
        importance = datascope_importance(
            result, valid_result.X, valid_result.y, source="train_df"
        )
        flagged = dirty.row_ids[importance.lowest(dirty, report.n_errors)]
        hits = len(set(flagged.tolist()) & set(report.row_ids.tolist()))
        base = report.n_errors / dirty.num_rows
        assert hits / report.n_errors > 1.5 * base

        # Provenance removal improves the model.
        X_clean, y_clean = result.remove_source_rows("train_df", flagged.tolist())
        model = KNeighborsClassifier(5)
        before = clone(model).fit(result.X, result.y).score(
            valid_result.X, valid_result.y
        )
        after = clone(model).fit(X_clean, y_clean).score(
            valid_result.X, valid_result.y
        )
        assert after >= before - 0.02


class TestLearnStoryline:
    """Figure 4: decide between cleaning and uncertainty-aware learning."""

    def test_certainty_informs_cleaning_decision(self):
        train, __, test = nde.load_recommendation_letters(n=300, seed=9)
        light = nde.encode_symbolic(train, missing_percentage=3, seed=2)
        heavy = nde.encode_symbolic(train, missing_percentage=40, seed=2)
        x_test = test.select(["employer_rating", "age"]).to_numpy()

        light_report = certain_prediction_report(light, x_test[:30], k=3)
        heavy_report = certain_prediction_report(heavy, x_test[:30], k=3)
        assert light_report.certain_fraction >= heavy_report.certain_fraction

        light_model = ZorroTrainer(l2=0.5).fit(light)
        heavy_model = ZorroTrainer(l2=0.5).fit(heavy)
        light_cert, __ = light_model.certified_predictions(x_test)
        heavy_cert, __ = heavy_model.certified_predictions(x_test)
        assert light_cert.mean() >= heavy_cert.mean()


class TestChallengeStoryline:
    """Section 3.2: the tools from all three parts compete in the game."""

    def test_importance_guided_submission_flow(self):
        game = DebuggingChallenge(n=240, cleaning_budget=40, error_seed=17)
        X = game.featurize(game.train)
        y = np.asarray(game.train.column("sentiment").to_list())
        Xv = game.featurize(game.valid)
        yv = np.asarray(game.valid.column("sentiment").to_list())

        from repro.importance import knn_shapley

        ranking = knn_shapley(X, y, Xv, yv, k=5).lowest(40)
        submission = game.submit("player", game.train.row_ids[ranking].tolist())
        assert submission.n_cleaned <= 40
        assert game.leaderboard.winner().participant == "player"
        errors = set(game.reveal_errors().tolist())
        hits = len(set(game.train.row_ids[ranking].tolist()) & errors)
        assert hits / 40 > len(errors) / game.train.num_rows
