"""Experiment C1 — the data-debugging challenge leaderboard.

Section 3.2: participants clean a budgeted set of hidden-error tuples; a
leaderboard ranks hidden-test scores. This bench scripts four archetypal
participants (random, confident-learning, KNN-Shapley, and the revealing
oracle) and reports the final leaderboard. Shape to reproduce: the informed
strategies find several times more true errors than the random participant,
and the oracle participant sits at or near the top of the board.
"""

import numpy as np

from repro.challenge import DebuggingChallenge
from repro.importance import confident_learning, knn_shapley
from repro.viz import format_records

BUDGET = 120


def run_challenge() -> dict:
    game = DebuggingChallenge(n=600, cleaning_budget=BUDGET, error_seed=13)
    X = game.featurize(game.train)
    y = np.asarray(game.train.column("sentiment").to_list())
    Xv = game.featurize(game.valid)
    yv = np.asarray(game.valid.column("sentiment").to_list())
    errors = set(game.reveal_errors().tolist())

    picks = {}
    rng = np.random.default_rng(0)
    picks["random-player"] = rng.choice(
        game.train.row_ids, size=BUDGET, replace=False
    ).tolist()
    picks["confident-player"] = game.train.row_ids[
        confident_learning(X, y, seed=0).lowest(BUDGET)
    ].tolist()
    picks["shapley-player"] = game.train.row_ids[
        knn_shapley(X, y, Xv, yv, k=5).lowest(BUDGET)
    ].tolist()
    # The oracle player knows every error; the budget covers them all.
    picks["oracle-player"] = sorted(errors)[:BUDGET]
    assert len(errors) <= BUDGET

    rows = []
    for name, ids in picks.items():
        submission = game.submit(name, ids)
        rows.append(
            {
                "participant": name,
                "true_errors_cleaned": len(set(int(i) for i in ids) & errors),
                "hidden_test_accuracy": submission.hidden_test_accuracy,
            }
        )
    return {
        "rows": rows,
        "baseline": game.baseline_accuracy,
        "board": game.leaderboard.render(),
    }


def test_challenge_leaderboard(benchmark, write_report):
    result = benchmark.pedantic(run_challenge, rounds=1, iterations=1)
    report = (
        f"baseline (no cleaning): {result['baseline']:.4f}\n\n"
        + format_records(result["rows"])
        + "\n\n"
        + result["board"]
    )
    write_report("challenge", report)

    by_name = {r["participant"]: r for r in result["rows"]}
    random_hits = by_name["random-player"]["true_errors_cleaned"]
    assert by_name["shapley-player"]["true_errors_cleaned"] >= 1.5 * max(random_hits, 1)
    assert by_name["confident-player"]["true_errors_cleaned"] >= 1.5 * max(random_hits, 1)
    total_errors = max(r["true_errors_cleaned"] for r in result["rows"])
    assert by_name["oracle-player"]["true_errors_cleaned"] == total_errors
    # The oracle participant must beat the dirty baseline.
    assert by_name["oracle-player"]["hidden_test_accuracy"] >= result["baseline"] - 0.01
