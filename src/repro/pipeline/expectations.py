"""Declarative data validation (Deequ / TFDV / Great-Expectations style).

Section 2.2 cites "data validation for machine learning" (Polyzotis et al.
[64]): production pipelines guard their inputs with *declarative
expectations* — unit tests for data — and with schemas inferred from a
reference dataset and enforced on every new batch. This module provides
both:

- :class:`Expectation`\\ s: composable column constraints (completeness,
  uniqueness, ranges, value sets, patterns, statistics) evaluated into a
  :class:`ValidationReport`;
- :func:`infer_schema` / :func:`validate_schema`: TFDV-style schema
  inference from a clean reference frame and drift-tolerant enforcement.

Both plug into :class:`repro.pipeline.screening.PipelineScreener` via
``extra_checks`` so a pipeline can be gated on its *input* contracts, not
only its output statistics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..frame import DataFrame
from .inspections import Issue

__all__ = [
    "Expectation",
    "ExpectationResult",
    "ValidationReport",
    "run_expectations",
    "expect_complete",
    "expect_unique",
    "expect_in_range",
    "expect_in_set",
    "expect_matches",
    "expect_column_mean_between",
    "Schema",
    "infer_schema",
    "validate_schema",
]


@dataclass
class ExpectationResult:
    """Outcome of evaluating one expectation on one frame."""

    name: str
    column: str
    passed: bool
    observed: Any
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}({self.column}): {self.detail}"


@dataclass
class Expectation:
    """A named predicate over one column of a frame."""

    name: str
    column: str
    check: Callable[[DataFrame], ExpectationResult]

    def evaluate(self, frame: DataFrame) -> ExpectationResult:
        if self.column not in frame:
            return ExpectationResult(
                name=self.name,
                column=self.column,
                passed=False,
                observed=None,
                detail=f"column {self.column!r} is missing from the frame",
            )
        return self.check(frame)


@dataclass
class ValidationReport:
    """All expectation results for one frame."""

    results: list[ExpectationResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def failures(self) -> list[ExpectationResult]:
        return [r for r in self.results if not r.passed]

    def render(self) -> str:
        header = "validation: " + ("PASS" if self.passed else "FAIL")
        return "\n".join([header] + [f"  {r}" for r in self.results])

    def as_issues(self) -> list[Issue]:
        """Adapt failures into screening issues (for PipelineScreener)."""
        return [
            Issue(
                check=f"expectation:{r.name}",
                severity="error",
                message=f"{r.column}: {r.detail}",
                details={"observed": r.observed},
            )
            for r in self.failures()
        ]


def run_expectations(
    frame: DataFrame, expectations: Sequence[Expectation]
) -> ValidationReport:
    """Evaluate every expectation against one frame."""
    return ValidationReport([e.evaluate(frame) for e in expectations])


# ----------------------------------------------------------------------
# Expectation constructors
# ----------------------------------------------------------------------
def expect_complete(column: str, min_fraction: float = 1.0) -> Expectation:
    """At least ``min_fraction`` of the cells must be present."""

    def check(frame: DataFrame) -> ExpectationResult:
        col = frame.column(column)
        fraction = 1.0 - col.null_count() / max(len(col), 1)
        return ExpectationResult(
            "complete", column, fraction >= min_fraction, fraction,
            f"completeness {fraction:.1%} (required ≥ {min_fraction:.0%})",
        )

    return Expectation("complete", column, check)


def expect_unique(column: str) -> Expectation:
    """No present value may repeat (a key constraint)."""

    def check(frame: DataFrame) -> ExpectationResult:
        col = frame.column(column)
        present = [v for v in col.to_list() if v is not None]
        duplicates = len(present) - len(set(present))
        return ExpectationResult(
            "unique", column, duplicates == 0, duplicates,
            f"{duplicates} duplicated values",
        )

    return Expectation("unique", column, check)


def expect_in_range(
    column: str, minimum: float | None = None, maximum: float | None = None
) -> Expectation:
    """Every present numeric value must lie inside [minimum, maximum]."""

    def check(frame: DataFrame) -> ExpectationResult:
        col = frame.column(column)
        if not col.is_numeric:
            return ExpectationResult(
                "in_range", column, False, col.dtype_kind, "column is not numeric"
            )
        values = col.to_numpy(fill=np.nan).astype(float)
        values = values[~np.isnan(values)]
        violations = 0
        if minimum is not None:
            violations += int(np.sum(values < minimum))
        if maximum is not None:
            violations += int(np.sum(values > maximum))
        return ExpectationResult(
            "in_range", column, violations == 0, violations,
            f"{violations} values outside [{minimum}, {maximum}]",
        )

    return Expectation("in_range", column, check)


def expect_in_set(column: str, allowed: Sequence[Any]) -> Expectation:
    """Every present value must come from the allowed set."""
    allowed_set = set(allowed)

    def check(frame: DataFrame) -> ExpectationResult:
        col = frame.column(column)
        outside = sorted(
            {v for v in col.to_list() if v is not None and v not in allowed_set},
            key=str,
        )
        return ExpectationResult(
            "in_set", column, not outside, outside,
            f"{len(outside)} unexpected values: {outside[:5]}",
        )

    return Expectation("in_set", column, check)


def expect_matches(column: str, pattern: str) -> Expectation:
    """Every present string must match the regular expression."""
    compiled = re.compile(pattern)

    def check(frame: DataFrame) -> ExpectationResult:
        col = frame.column(column)
        mismatches = [
            v for v in col.to_list()
            if v is not None and not compiled.fullmatch(str(v))
        ]
        return ExpectationResult(
            "matches", column, not mismatches, len(mismatches),
            f"{len(mismatches)} values do not match {pattern!r}",
        )

    return Expectation("matches", column, check)


def expect_column_mean_between(
    column: str, minimum: float, maximum: float
) -> Expectation:
    """The column mean must fall inside [minimum, maximum] (a Deequ metric)."""

    def check(frame: DataFrame) -> ExpectationResult:
        col = frame.column(column)
        if not col.is_numeric:
            return ExpectationResult(
                "mean_between", column, False, col.dtype_kind, "column is not numeric"
            )
        mean = col.mean()
        ok = bool(minimum <= mean <= maximum)
        return ExpectationResult(
            "mean_between", column, ok, mean,
            f"mean {mean:.4g} (required in [{minimum}, {maximum}])",
        )

    return Expectation("mean_between", column, check)


# ----------------------------------------------------------------------
# TFDV-style schema inference
# ----------------------------------------------------------------------
@dataclass
class ColumnSchema:
    kind: str
    completeness: float
    categories: list | None  # for string columns (None when too many)
    minimum: float | None  # for numeric columns
    maximum: float | None


@dataclass
class Schema:
    """Per-column contracts inferred from a reference frame."""

    columns: dict[str, ColumnSchema]

    def expectations(
        self,
        completeness_slack: float = 0.05,
        range_slack: float = 0.1,
    ) -> list[Expectation]:
        """Compile the schema into checkable expectations.

        Slack parameters tolerate benign batch-to-batch variation, following
        TFDV's "environment" idea: ranges widen by ``range_slack`` of the
        observed span, completeness requirements loosen additively.
        """
        out: list[Expectation] = []
        for name, spec in self.columns.items():
            out.append(
                expect_complete(name, max(0.0, spec.completeness - completeness_slack))
            )
            if spec.categories is not None:
                out.append(expect_in_set(name, spec.categories))
            if spec.minimum is not None and spec.maximum is not None:
                span = (spec.maximum - spec.minimum) or 1.0
                out.append(
                    expect_in_range(
                        name,
                        spec.minimum - range_slack * span,
                        spec.maximum + range_slack * span,
                    )
                )
        return out


def infer_schema(frame: DataFrame, max_categories: int = 25) -> Schema:
    """Infer per-column kinds, completeness, domains, and numeric ranges."""
    columns: dict[str, ColumnSchema] = {}
    for name in frame.columns:
        col = frame.column(name)
        completeness = 1.0 - col.null_count() / max(len(col), 1)
        categories = None
        minimum = maximum = None
        if col.dtype_kind == "string":
            uniques = col.unique()
            # An empty domain is no evidence, not a constraint: a schema
            # inferred from a zero-row (or all-missing) column must not
            # reject every value a later batch presents.
            if uniques and len(uniques) <= max_categories:
                categories = uniques
        elif col.is_numeric:
            minimum = float(col.min()) if col.min() is not None else None
            maximum = float(col.max()) if col.max() is not None else None
        columns[name] = ColumnSchema(
            kind=col.dtype_kind,
            completeness=completeness,
            categories=categories,
            minimum=minimum,
            maximum=maximum,
        )
    return Schema(columns=columns)


def validate_schema(
    frame: DataFrame,
    schema: Schema,
    completeness_slack: float = 0.05,
    range_slack: float = 0.1,
) -> ValidationReport:
    """Check a new batch against an inferred schema (TFDV's core loop).

    Also fails on columns that disappeared or changed kind — the structural
    breakages that silently poison downstream feature encoders.
    """
    report = run_expectations(
        frame, schema.expectations(completeness_slack, range_slack)
    )
    for name, spec in schema.columns.items():
        if name not in frame:
            continue  # already reported by the compiled expectation
        kind = frame.column(name).dtype_kind
        numeric_kinds = {"int", "float", "bool"}
        compatible = kind == spec.kind or (
            kind in numeric_kinds and spec.kind in numeric_kinds
        )
        if not compatible:
            report.results.append(
                ExpectationResult(
                    "kind", name, False, kind,
                    f"column kind changed: {spec.kind} → {kind}",
                )
            )
    return report
