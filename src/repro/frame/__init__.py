"""Column-oriented DataFrame substrate with stable row identity.

The frame package stands in for pandas in this reproduction: it provides the
relational operators (join, filter, project, group-by) that real-world ML
preprocessing pipelines are built from, plus stable per-row identifiers that
the provenance machinery in :mod:`repro.pipeline` relies on.
"""

from .column import Column
from .frame import DataFrame, GroupBy
from .io import from_csv_string, read_csv, to_csv_string, write_csv

__all__ = [
    "Column",
    "DataFrame",
    "GroupBy",
    "read_csv",
    "write_csv",
    "to_csv_string",
    "from_csv_string",
]
