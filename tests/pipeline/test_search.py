"""Tests for DiffPrep/SAGA-style preprocessing search."""

import numpy as np
import pytest

from repro.frame import DataFrame
from repro.learn import ColumnTransformer, SimpleImputer, StandardScaler
from repro.learn.preprocessing import Pipeline as FeaturePipeline
from repro.pipeline import SearchDimension, greedy_search, grid_search


@pytest.fixture()
def searchable_task():
    """A task where the right configuration is knowable: values above the
    threshold carry the label signal, so filtering low rows helps."""
    rng = np.random.default_rng(3)
    n = 300
    x1 = rng.normal(size=n)
    noise_zone = x1 < -0.5  # rows where the label is pure noise
    label = np.where(
        noise_zone, rng.choice(["p", "n"], size=n), np.where(x1 > 0.3, "p", "n")
    )
    frame = DataFrame({"x1": x1, "x2": rng.normal(size=n), "label": label.astype(str)})
    return frame


def build(plan, config, shared):
    if "source" not in shared:
        shared["source"] = plan.source("t")
    node = shared["source"]
    if config["filter"] == "drop_noise":
        key = ("filtered",)
        if key not in shared:
            shared[key] = node.filter(lambda df: df["x1"] >= -0.5, "x1 >= -0.5")
        node = shared[key]
    encoder = ColumnTransformer(
        [
            (
                FeaturePipeline([SimpleImputer("mean"), StandardScaler()]),
                ["x1", "x2"],
            )
        ]
    )
    return node.encode(encoder, label_column="label")


def evaluate_factory():
    from repro.learn import KNeighborsClassifier

    def evaluate(result):
        # In-sample 5-NN accuracy as a cheap quality proxy for the test.
        model = KNeighborsClassifier(5).fit(result.X, result.y)
        return model.score(result.X, result.y)

    return evaluate


DIMENSIONS = [
    SearchDimension("filter", {"keep_all": None, "drop_noise": None}),
]


class TestGridSearch:
    def test_finds_noise_dropping_config(self, searchable_task):
        result = grid_search(
            DIMENSIONS, build, {"t": searchable_task}, evaluate_factory()
        )
        assert result.best_config["filter"] == "drop_noise"
        assert result.n_evaluated == 2

    def test_evaluations_record_scores(self, searchable_task):
        result = grid_search(
            DIMENSIONS, build, {"t": searchable_task}, evaluate_factory()
        )
        assert all("score" in record for record in result.evaluations)
        assert result.best_score == max(r["score"] for r in result.evaluations)

    def test_shared_prefix_counted(self, searchable_task):
        result = grid_search(
            DIMENSIONS, build, {"t": searchable_task}, evaluate_factory()
        )
        # Both configs share the source node: 3 naive ops (1 + 2), fewer run.
        assert result.executed_operators < result.naive_operators

    def test_render_mentions_best(self, searchable_task):
        result = grid_search(
            DIMENSIONS, build, {"t": searchable_task}, evaluate_factory()
        )
        assert "drop_noise" in result.render()


class TestGreedySearch:
    def test_matches_grid_on_single_dimension(self, searchable_task):
        grid = grid_search(DIMENSIONS, build, {"t": searchable_task}, evaluate_factory())
        greedy = greedy_search(
            DIMENSIONS, build, {"t": searchable_task}, evaluate_factory()
        )
        assert greedy.best_config == grid.best_config

    def test_multi_dimension_fewer_evals_than_grid(self, searchable_task):
        dimensions = DIMENSIONS + [
            SearchDimension("impute", {"mean": None, "median": None, "constant": None}),
            SearchDimension("dummy", {"a": None, "b": None, "c": None}),
        ]

        def build3(plan, config, shared):
            return build(plan, {"filter": config["filter"]}, shared)

        greedy = greedy_search(
            dimensions, build3, {"t": searchable_task}, evaluate_factory(), n_rounds=1
        )
        assert greedy.n_evaluated <= 2 + 3 + 3  # Σ|options| per round
        assert greedy.best_config["filter"] == "drop_noise"

    def test_empty_dimension_raises(self):
        with pytest.raises(ValueError):
            SearchDimension("broken", {})
