"""Experiment F2 — Figure 2: identify data errors via KNN-Shapley.

Paper storyline: inject 10% label errors into the recommendation-letters
training set, measure accuracy (paper: 0.76), clean the 25 lowest-importance
records, measure again (paper: 0.79). Shape to reproduce: *dirty < cleaned*,
and cleaning moves accuracy toward the clean-data ceiling.

The absolute numbers differ (our data and embedder are re-synthesised), but
the report prints the same three-row summary the hands-on session shows.
"""

import numpy as np

import repro.core as nde
from repro.cleaning import CleaningOracle
from repro.learn import KNeighborsClassifier
from repro.viz import format_records

N_LETTERS = 400
ERROR_FRACTION = 0.2
CLEAN_K = 40
MODEL = KNeighborsClassifier(5)


def run_figure2() -> dict:
    train, valid, test = nde.load_recommendation_letters(n=N_LETTERS, seed=7)
    dirty = nde.inject_labelerrors(train, fraction=ERROR_FRACTION, seed=3)

    acc_dirty = nde.evaluate_model(dirty, valid, model=MODEL)
    importances = nde.knn_shapley_values(dirty, validation=valid)
    lowest = np.argsort(importances)[:CLEAN_K]
    oracle = CleaningOracle(train)
    cleaned = oracle.clean(dirty, [int(dirty.row_ids[p]) for p in lowest])
    acc_cleaned = nde.evaluate_model(cleaned, valid, model=MODEL)
    acc_clean_ceiling = nde.evaluate_model(train, valid, model=MODEL)
    return {
        "acc_dirty": acc_dirty,
        "acc_cleaned": acc_cleaned,
        "acc_clean_ceiling": acc_clean_ceiling,
    }


def test_fig2_identify(benchmark, write_report):
    result = benchmark.pedantic(run_figure2, rounds=1, iterations=1)

    report = format_records(
        [
            {"setting": "with injected label errors (paper: 0.76)",
             "accuracy": result["acc_dirty"]},
            {"setting": f"after cleaning {CLEAN_K} lowest-Shapley records (paper: 0.79)",
             "accuracy": result["acc_cleaned"]},
            {"setting": "clean-data ceiling",
             "accuracy": result["acc_clean_ceiling"]},
        ]
    )
    write_report("fig2_identify", report)

    # Shape assertions (who wins, direction of the effect).
    assert result["acc_cleaned"] >= result["acc_dirty"]
    assert result["acc_clean_ceiling"] >= result["acc_dirty"]
