"""Low-latency machine unlearning.

Section 2.4 of the paper highlights the link between data debugging and
machine unlearning [17, 75]: debugging techniques repeatedly *remove* points
from a model, and regulation (GDPR/CCPA deletion requests) demands that
removal be fast. This module provides two unlearning strategies:

- :class:`RemovalAwareKNN` — exact O(1) deletion for KNN (the model *is*
  the data, so forgetting is masking; the HedgeCut idea of maintaining a
  deletion-ready structure, in its simplest instance);
- :func:`newton_unlearn` — approximate one-shot unlearning for logistic
  regression via a single Newton step on the reduced objective, with the
  gradient-norm residual reported as a quality certificate and automatic
  fall-back to full retraining when the certificate fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from ..importance.influence import _hessian, per_sample_gradients
from ..learn.base import clone
from ..learn.models.knn import KNeighborsClassifier
from ..learn.models.logistic import LogisticRegression

__all__ = ["RemovalAwareKNN", "UnlearningReport", "newton_unlearn"]


class RemovalAwareKNN(KNeighborsClassifier):
    """KNN with constant-time forgetting.

    ``forget(positions)`` masks training points out of the neighbour search
    without copying the dataset; the prediction afterwards is *exactly* the
    prediction of a KNN retrained without those points.
    """

    def fit(self, X: Any, y: Any) -> "RemovalAwareKNN":
        super().fit(X, y)
        self.active_ = np.ones(len(self.y_), dtype=bool)
        return self

    @property
    def n_active(self) -> int:
        return int(self.active_.sum())

    def forget(self, positions: Iterable[int]) -> "RemovalAwareKNN":
        """Remove training points by original position (idempotent)."""
        self._require_fitted()
        positions = np.asarray(list(positions), dtype=np.int64)
        self.active_[positions] = False
        if not self.active_.any():
            raise ValueError("cannot forget the entire training set")
        return self

    def kneighbors(self, X: Any, n_neighbors: int | None = None):
        self._require_fitted()
        from ..learn.models.knn import pairwise_distances
        from ..learn.base import check_matrix

        active_idx = np.flatnonzero(self.active_)
        k = min(n_neighbors or self.n_neighbors, len(active_idx))
        distances = pairwise_distances(check_matrix(X), self.X_[active_idx], self.metric)
        order = np.argsort(distances, axis=1, kind="stable")[:, :k]
        rows = np.arange(len(distances))[:, None]
        return distances[rows, order], active_idx[order]

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        __, neighbors = self.kneighbors(X)
        votes = self.y_[neighbors]
        probs = np.zeros((len(votes), len(self.classes_)))
        for j, cls in enumerate(self.classes_):
            probs[:, j] = np.mean(votes == cls, axis=1)
        return probs


@dataclass
class UnlearningReport:
    """Outcome of an unlearning request."""

    method: str  # "newton" or "retrain"
    residual_norm: float  # ‖∇L_remaining(θ')‖ — 0 means exact optimum
    n_removed: int
    certified: bool


def newton_unlearn(
    model: LogisticRegression,
    X: Any,
    y: Any,
    remove_positions: Iterable[int],
    tolerance: float = 1e-3,
    damping: float = 1e-4,
) -> tuple[LogisticRegression, UnlearningReport]:
    """One-shot approximate unlearning for logistic regression.

    Takes a model fitted on (X, y) and a set of points to forget. Performs a
    single Newton step of the *remaining-data* objective starting from the
    current parameters:

        θ' = θ − H_remaining(θ)⁻¹ · ∇L_remaining(θ)

    and certifies the result by the gradient norm at θ'. When the residual
    exceeds ``tolerance`` (removal was too influential for one step), falls
    back to exact retraining — the slow path that unlearning systems try to
    avoid but must keep for correctness.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    remove = np.asarray(list(remove_positions), dtype=np.int64)
    keep = np.ones(len(y), dtype=bool)
    keep[remove] = False
    X_keep, y_keep = X[keep], y[keep]
    if len(np.unique(y_keep)) < 2:
        raise ValueError("cannot unlearn down to a single-class dataset")

    model._require_fitted()
    n_keep = len(y_keep)
    # Mean gradient of the remaining objective at the current parameters
    # (per-sample loss gradients + L2 term).
    grads = per_sample_gradients(model, X_keep, y_keep)
    W = np.column_stack([model.coef_, model.intercept_])
    l2_term = np.column_stack(
        [model.l2 * model.coef_, np.zeros(len(model.classes_))]
    ).reshape(-1)
    gradient = grads.mean(axis=0) + l2_term
    H = _hessian(model, X_keep, y_keep, damping)
    step = np.linalg.solve(H, gradient)
    W_new = W.reshape(-1) - step

    unlearned = clone(model)
    unlearned.classes_ = model.classes_.copy()
    d = X.shape[1]
    W_new = W_new.reshape(len(model.classes_), d + 1)
    unlearned.coef_ = W_new[:, :d]
    unlearned.intercept_ = W_new[:, d]

    residual_grads = per_sample_gradients(unlearned, X_keep, y_keep)
    residual_l2 = np.column_stack(
        [unlearned.l2 * unlearned.coef_, np.zeros(len(model.classes_))]
    ).reshape(-1)
    residual = float(np.linalg.norm(residual_grads.mean(axis=0) + residual_l2))

    if residual <= tolerance:
        report = UnlearningReport(
            method="newton", residual_norm=residual, n_removed=len(remove), certified=True
        )
        return unlearned, report

    retrained = clone(model).fit(X_keep, y_keep)
    final_grads = per_sample_gradients(retrained, X_keep, y_keep)
    final_l2 = np.column_stack(
        [retrained.l2 * retrained.coef_, np.zeros(len(retrained.classes_))]
    ).reshape(-1)
    final_residual = float(np.linalg.norm(final_grads.mean(axis=0) + final_l2))
    report = UnlearningReport(
        method="retrain",
        residual_norm=final_residual,
        n_removed=len(remove),
        certified=True,
    )
    return retrained, report
