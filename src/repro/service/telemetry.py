"""Zero-dependency HTTP telemetry endpoint for :class:`JobRuntime`.

A tiny asyncio HTTP/1.1 server — no frameworks, stdlib only — exposing
the operational surface a production deployment scrapes and probes:

``/metrics``
    OpenMetrics text (:func:`repro.obs.export.render_openmetrics`) over
    the process metrics registry merged with the runtime's per-tenant SLO
    series, so tenant-labeled latency histograms are present even when
    tracing is off.
``/healthz``
    JSON liveness/readiness from :meth:`JobRuntime.health`; HTTP 200 while
    serving, 503 while draining or stopped — the signal load balancers key
    on during rolling restarts.
``/jobs``
    Runtime counters plus recent job summaries.
``/slo``
    The SLO policy, per-tenant snapshot, and current burn-rate/latency
    alerts.

Usage::

    async with JobRuntime(...) as runtime:
        async with TelemetryServer(runtime) as server:
            print(f"curl http://{server.host}:{server.port}/metrics")
            ...

The server binds port 0 by default (ephemeral), reads one request per
connection, and always closes it — deliberately boring HTTP that cannot
wedge the event loop the runtime's workers share.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from ..obs import metrics as _obs_metrics
from ..obs.export import CONTENT_TYPE, render_openmetrics

__all__ = ["TelemetryServer"]

#: Hard ceilings keeping a malicious/buggy client from wedging the server.
_REQUEST_TIMEOUT_S = 5.0
_MAX_HEADER_LINES = 64
_MAX_JOBS_LISTED = 200


class TelemetryServer:
    """Serve a :class:`~repro.service.runtime.JobRuntime`'s telemetry."""

    def __init__(
        self,
        runtime: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "TelemetryServer":
        if self._server is not None:
            return self
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def __aenter__(self) -> "TelemetryServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- request handling ------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=_REQUEST_TIMEOUT_S
            )
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            for __ in range(_MAX_HEADER_LINES):  # drain headers
                line = await asyncio.wait_for(
                    reader.readline(), timeout=_REQUEST_TIMEOUT_S
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._route(method, target)
            head = method == "HEAD"
            await self._respond(writer, status, content_type, body, head=head)
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _route(self, method: str, target: str) -> tuple[int, str, bytes]:
        path = target.split("?", 1)[0]
        if method not in ("GET", "HEAD"):
            return 405, "text/plain; charset=utf-8", b"method not allowed\n"
        if path == "/metrics":
            return self._metrics()
        if path == "/healthz":
            return self._healthz()
        if path == "/jobs":
            return self._jobs()
        if path == "/slo":
            return self._slo()
        return 404, "text/plain; charset=utf-8", b"not found\n"

    def _metrics(self) -> tuple[int, str, bytes]:
        # Live registry series first, then the SLO tracker's per-tenant
        # series (which exist regardless of the tracing flag). SLO series
        # win name collisions — they are the authoritative service view.
        snapshot = dict(_obs_metrics.snapshot())
        snapshot.update(self.runtime.slo.metrics_snapshot())
        body = render_openmetrics(snapshot).encode("utf-8")
        return 200, CONTENT_TYPE, body

    def _healthz(self) -> tuple[int, str, bytes]:
        health = self.runtime.health()
        status = 200 if health.get("status") == "ok" else 503
        return status, "application/json", _json_bytes(health)

    def _jobs(self) -> tuple[int, str, bytes]:
        jobs = list(self.runtime.jobs.values())[-_MAX_JOBS_LISTED:]
        payload = {
            "counts": self.runtime.stats(),
            "jobs": [job.summary() for job in jobs],
        }
        return 200, "application/json", _json_bytes(payload)

    def _slo(self) -> tuple[int, str, bytes]:
        return 200, "application/json", _json_bytes(self.runtime.slo.to_dict())

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        head: bool = False,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed", 503: "Service Unavailable"}.get(
            status, "OK"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        if not head:
            writer.write(body)
        await writer.drain()


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, default=repr, sort_keys=True) + "\n").encode(
        "utf-8"
    )
