"""Shared-memory data plane for the valuation engine's worker pool.

The fork-per-run fan-out this module replaces paid its dataset tax on
every call: each forked fleet inherited (copy-on-write) the training and
validation arrays, the utility closure, and a snapshot of the subset
cache, and a *restarted* worker re-forked the whole address space again.
:class:`SharedArrayBundle` moves the immutable arrays out of any single
process's address space into named POSIX shared memory
(:mod:`multiprocessing.shared_memory`), where they are published exactly
once per pool:

- the **owner** (the driver) calls :meth:`SharedArrayBundle.create` with a
  mapping of named numpy arrays; the arrays are packed, 64-byte aligned,
  into one segment and the owner keeps zero-copy views over it;
- **workers** call :meth:`SharedArrayBundle.attach` with the picklable
  :meth:`spec` (segment name + per-array dtype/shape/offset) and get
  read-only zero-copy views — a worker *replacement* re-attaches to the
  same segment instead of re-copying or re-inheriting the dataset;
- the views are marked non-writable on both sides, so no process can
  scribble on the shared plane by accident.

Lifecycle safety is the other half of the contract. Named segments outlive
their creator unless explicitly unlinked, so every owner registers both a
``weakref.finalize`` (covers garbage collection and interpreter shutdown)
and an ``atexit`` hook (covers leaked references) that close and unlink the
segment; attachers register close-only finalizers. Segment names embed the
owner's provenance — PID plus, on reapable platforms, a boot/PID-namespace
token and the owner's process start time
(``repro-shm-<pid>-<node>-<start>-<token>``) — so
:func:`reap_stale_segments` can sweep segments whose owner died without
running cleanup (``kill -9``) while never confusing a recycled PID or a
live process in a foreign namespace for the owner: pool construction calls
it, making any crashed run's segments reclaimed by the next pool instead
of accumulating in ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import secrets
import weakref
from typing import Any, Iterable, Mapping

import numpy as np

try:  # pragma: no cover - import guard exercised indirectly
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - py>=3.8 always has it
    _shared_memory = None

__all__ = [
    "SHM_AVAILABLE",
    "SEGMENT_PREFIX",
    "SharedArrayBundle",
    "shareable_arrays",
    "reap_stale_segments",
]

#: Whether named shared memory is available on this interpreter/platform.
SHM_AVAILABLE = _shared_memory is not None

#: Prefix of every segment this module creates; the reaper only ever
#: touches names carrying it, so foreign segments are never at risk.
SEGMENT_PREFIX = "repro-shm-"

#: Byte alignment of each packed array, so every view starts on a cache
#: line and dtype alignment requirements are met for any element type.
_ALIGN = 64

#: Where POSIX shared memory appears as files (Linux). Reaping is a no-op
#: on platforms that do not expose segments here.
_SHM_DIR = "/dev/shm"


def _attach_segment(name: str) -> Any:
    """Open an existing segment without claiming cleanup responsibility.

    Python < 3.13 registers every :class:`SharedMemory` — even attach-only
    handles — with the resource tracker, which then unlinks the segment
    when *any* process exits and complains about "leaks" the owner is
    already responsible for. On 3.13+ ``track=False`` opts out directly;
    earlier interpreters get the registration suppressed for the duration
    of the constructor (attach happens on a single thread, before a worker
    takes any task, so the brief patch races nothing).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # ``track=`` is 3.13+
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(res_name: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - defensive
                original(res_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def shareable_arrays(arrays: Mapping[str, Any]) -> bool:
    """Whether every value is a numpy array a segment can hold.

    Object-dtype arrays hold pointers private to one address space and can
    never cross a shared-memory boundary; everything with a fixed itemsize
    (numerics, bools, fixed-width strings/bytes) can.
    """
    if not SHM_AVAILABLE:
        return False
    for value in arrays.values():
        if not isinstance(value, np.ndarray):
            return False
        if value.dtype.hasobject:
            return False
    return True


class SharedArrayBundle:
    """A set of named numpy arrays packed into one shared-memory segment.

    Use :meth:`create` in the owner and :meth:`attach` (with the owner's
    :meth:`spec`) everywhere else; both sides read the arrays through
    :attr:`arrays`, a dict of zero-copy read-only views. The owner unlinks
    the segment on :meth:`close` (or at interpreter exit / GC, whichever
    comes first); attachers only drop their mapping.
    """

    def __init__(self, shm: Any, layout: dict, owner: bool) -> None:
        self._shm = shm
        self._layout = layout
        self.owner = bool(owner)
        self.name = layout["name"]
        self.nbytes = int(layout["nbytes"])
        self._closed = False
        self._views: dict[str, np.ndarray] = {}
        for key, meta in layout["arrays"].items():
            view = np.frombuffer(
                shm.buf,
                dtype=np.dtype(meta["dtype"]),
                count=int(np.prod(meta["shape"], dtype=np.int64)),
                offset=int(meta["offset"]),
            ).reshape(meta["shape"])
            view.flags.writeable = False
            self._views[key] = view
        # GC-ordering safety: the finalizer holds only what cleanup needs,
        # never ``self``, so the bundle itself stays collectable.
        self._finalizer = weakref.finalize(
            self, _cleanup_segment, shm, self.owner
        )
        if self.owner:
            atexit.register(self._finalizer)

    # ------------------------------------------------------------------ #
    # construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], reap: bool = True
    ) -> "SharedArrayBundle":
        """Publish ``arrays`` into a fresh segment; returns the owner handle.

        ``reap=True`` first sweeps segments left behind by crashed owners
        (see :func:`reap_stale_segments`), so long-lived services never
        accumulate orphans.
        """
        if not SHM_AVAILABLE:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if not arrays:
            raise ValueError("cannot publish an empty array bundle")
        if not shareable_arrays(arrays):
            raise ValueError(
                "arrays must all be numpy arrays without object dtype"
            )
        if reap:
            reap_stale_segments()
        packed = {
            key: np.ascontiguousarray(value) for key, value in arrays.items()
        }
        offsets: dict[str, int] = {}
        cursor = 0
        for key, value in packed.items():
            cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
            offsets[key] = cursor
            cursor += value.nbytes
        name = _segment_name()
        shm = _shared_memory.SharedMemory(
            create=True, size=max(1, cursor), name=name
        )
        layout = {
            "name": name,
            "nbytes": max(1, cursor),
            "arrays": {
                key: {
                    "dtype": value.dtype.str,
                    "shape": list(value.shape),
                    "offset": offsets[key],
                }
                for key, value in packed.items()
            },
        }
        for key, value in packed.items():
            target = np.frombuffer(
                shm.buf,
                dtype=value.dtype,
                count=value.size,
                offset=offsets[key],
            )
            target[:] = value.reshape(-1)
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, spec: Mapping[str, Any]) -> "SharedArrayBundle":
        """Map an existing segment read-only from its picklable ``spec``."""
        if not SHM_AVAILABLE:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        layout = {
            "name": spec["name"],
            "nbytes": spec["nbytes"],
            "arrays": {
                key: dict(meta) for key, meta in spec["arrays"].items()
            },
        }
        return cls(_attach_segment(spec["name"]), layout, owner=False)

    # ------------------------------------------------------------------ #
    # access                                                             #
    # ------------------------------------------------------------------ #

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        """Zero-copy read-only views over the packed arrays."""
        if self._closed:
            raise RuntimeError("bundle is closed")
        return dict(self._views)

    def spec(self) -> dict:
        """Picklable attachment recipe (segment name + array layout)."""
        return {
            "name": self.name,
            "nbytes": self.nbytes,
            "arrays": {
                key: dict(meta)
                for key, meta in self._layout["arrays"].items()
            },
        }

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drop views and the mapping; the owner also unlinks. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._views = {}
        if self.owner:
            atexit.unregister(self._finalizer)
        self._finalizer()

    def unlink(self) -> None:
        """Owner-side alias for :meth:`close` (segment removal included)."""
        if not self.owner:
            raise RuntimeError("only the owning bundle may unlink its segment")
        self.close()

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        state = "closed" if self._closed else "open"
        return (
            f"SharedArrayBundle({self.name!r}, {role}, {state}, "
            f"{len(self._layout['arrays'])} arrays, {self.nbytes} bytes)"
        )


def _cleanup_segment(shm: Any, owner: bool) -> None:
    """Module-level so finalizers never resurrect the bundle."""
    try:
        shm.close()
    except BufferError:
        # Someone still holds a view. Drop our handles instead: the
        # mapping lives exactly until the last view dies (then the mmap's
        # own GC releases it), and disarming the handle keeps the stdlib
        # ``__del__`` from retrying the failing close at collection time.
        # The unlink below still runs, so the *name* cannot leak. The
        # attributes are CPython-stdlib internals, so any that are
        # missing or renamed simply leave the handle to GC.
        try:
            if shm._fd >= 0:
                os.close(shm._fd)
                shm._fd = -1
        except (AttributeError, OSError):  # pragma: no cover - fallback
            pass
        try:
            shm._buf = None
            shm._mmap = None
        except AttributeError:  # pragma: no cover - non-CPython layout
            pass
    except OSError:  # pragma: no cover - already torn down
        pass
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform quirks
            pass


_NODE_TOKEN: str | None = None


def _node_token() -> str:
    """8-hex digest identifying this boot + PID namespace.

    A segment named under a different boot or PID namespace (a container
    sharing ``/dev/shm``) carries a different token: its owner PID is
    meaningless in our namespace, so the reaper must treat it as alive.
    """
    global _NODE_TOKEN
    if _NODE_TOKEN is None:
        parts = []
        try:
            with open("/proc/sys/kernel/random/boot_id") as fh:
                parts.append(fh.read().strip())
        except OSError:  # pragma: no cover - non-Linux
            pass
        try:
            parts.append(str(os.stat("/proc/self/ns/pid").st_ino))
        except OSError:  # pragma: no cover - non-Linux
            pass
        digest = hashlib.sha256("|".join(parts).encode()).hexdigest()
        _NODE_TOKEN = digest[:8]
    return _NODE_TOKEN


def _pid_start(pid: int) -> int | None:
    """Process start time (clock ticks since boot), or None off-Linux.

    Field 22 of ``/proc/<pid>/stat``; the comm field may itself contain
    spaces and parentheses, so parse after the *last* ``)``.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            stat = fh.read().decode("ascii", "replace")
        return int(stat.rsplit(")", 1)[1].split()[19])
    except (OSError, IndexError, ValueError):
        return None


def _segment_name() -> str:
    """Fresh segment name carrying owner provenance where reapable.

    Where segments surface in :data:`_SHM_DIR` (the only place
    :func:`reap_stale_segments` works) the name embeds a node token and
    the owner's start time besides its PID, so the reaper can tell a dead
    owner from a recycled PID or a foreign-namespace process. Elsewhere
    (e.g. macOS, whose shm names are length-capped and never reaped) the
    short PID-only form is kept.
    """
    pid = os.getpid()
    suffix = secrets.token_hex(4)
    if not os.path.isdir(_SHM_DIR):
        return f"{SEGMENT_PREFIX}{pid}-{suffix}"
    return (
        f"{SEGMENT_PREFIX}{pid}-{_node_token()}-"
        f"{_pid_start(pid) or 0}-{suffix}"
    )


def _parse_segment(
    filename: str,
) -> tuple[int, str | None, int | None] | None:
    """``(pid, node_token, start_ticks)`` parsed from a segment filename.

    Names without provenance fields (the short non-reapable form, or
    fabricated test names) parse with ``None`` provenance; names without
    a leading PID are not ours and parse to None.
    """
    if not filename.startswith(SEGMENT_PREFIX):
        return None
    parts = filename[len(SEGMENT_PREFIX):].split("-")
    try:
        pid = int(parts[0])
    except (IndexError, ValueError):
        return None
    if len(parts) >= 4:
        try:
            return pid, parts[1], int(parts[2])
        except ValueError:
            return pid, None, None
    return pid, None, None


def _owner_alive(pid: int, node: str | None, start: int | None) -> bool:
    """Conservative owner liveness for the reaper.

    Unresolvable provenance — no node token, or one minted under another
    boot / PID namespace — means ``os.kill(pid, 0)`` would probe an
    unrelated process, so the owner is reported alive. Within our own
    namespace, a live PID whose start time no longer matches the one
    baked into the name was recycled: the real owner is gone.
    """
    if node is None or node != _node_token():
        return True
    if not _pid_alive(pid):
        return False
    if start:
        current = _pid_start(pid)
        if current is not None and current != start:
            return False
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    except OSError:  # pragma: no cover - conservative default
        return True
    return True


def reap_stale_segments(
    shm_dir: str = _SHM_DIR, pids_alive: Iterable[int] | None = None
) -> list[str]:
    """Unlink segments whose owner process is dead; returns reaped names.

    Only names carrying :data:`SEGMENT_PREFIX` are candidates, and only
    when their provenance proves the owner gone — named under this boot
    and PID namespace, and the PID either no longer exists or was
    recycled by a process with a different start time. A ``kill -9``'d
    driver cannot run its atexit hooks, so the *next* pool (or an
    explicit call) reclaims what it left behind; segments whose owner
    cannot be resolved (foreign namespace or boot, missing provenance)
    are conservatively left alone. ``pids_alive`` overrides all liveness
    checks for tests.
    """
    if not SHM_AVAILABLE or not os.path.isdir(shm_dir):
        return []
    alive = set(pids_alive) if pids_alive is not None else None
    reaped: list[str] = []
    try:
        entries = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - permissions
        return []
    for filename in entries:
        parsed = _parse_segment(filename)
        if parsed is None:
            continue
        pid, node, start = parsed
        if pid == os.getpid():
            continue
        if alive is not None:
            if pid in alive:
                continue
        elif _owner_alive(pid, node, start):
            continue
        try:
            os.unlink(os.path.join(shm_dir, filename))
            reaped.append(filename)
        except OSError:  # pragma: no cover - concurrent reap
            pass
    return reaped
