"""Unit tests for scalers, encoders, imputers, and composition."""

import numpy as np
import pytest

from repro.frame import Column, DataFrame
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    FunctionTransformer,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)


class TestScalers:
    def test_standard_scaler_zero_mean_unit_var(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_column_safe(self):
        X = np.ones((5, 1))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z, 0.0)

    def test_standard_scaler_ignores_nan_in_fit(self):
        X = np.asarray([[1.0], [np.nan], [3.0]])
        scaler = StandardScaler().fit(X)
        assert scaler.mean_[0] == 2.0

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(size=(50, 2))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_minmax_range(self, rng):
        X = rng.normal(size=(100, 2))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0


class TestOneHotEncoder:
    def test_basic_encoding(self):
        enc = OneHotEncoder().fit(["b", "a", "b"])
        out = enc.transform(["a", "b"])
        assert enc.categories_ == ["a", "b"]
        assert out.tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_unknown_category_is_zero_row(self):
        enc = OneHotEncoder().fit(["a", "b"])
        assert enc.transform(["zzz"]).tolist() == [[0.0, 0.0]]

    def test_missing_is_zero_row(self):
        enc = OneHotEncoder().fit(["a", "b"])
        assert enc.transform([None]).tolist() == [[0.0, 0.0]]

    def test_accepts_column_input(self):
        enc = OneHotEncoder().fit(Column(["a", None, "b"]))
        assert enc.categories_ == ["a", "b"]

    def test_feature_names(self):
        enc = OneHotEncoder().fit(["x", "y"])
        assert enc.feature_names("deg_") == ["deg_x", "deg_y"]


class TestOrdinalEncoder:
    def test_learned_order(self):
        enc = OrdinalEncoder().fit(["b", "a", "c"])
        assert enc.transform(["a", "b", "c"]).ravel().tolist() == [0.0, 1.0, 2.0]

    def test_explicit_order(self):
        enc = OrdinalEncoder(order=["low", "mid", "high"]).fit(None)
        assert enc.transform(["high", "low"]).ravel().tolist() == [2.0, 0.0]

    def test_unknown_is_minus_one(self):
        enc = OrdinalEncoder().fit(["a"])
        assert enc.transform(["zzz", None]).ravel().tolist() == [-1.0, -1.0]


class TestImputers:
    def test_mean_imputation(self):
        X = np.asarray([[1.0], [np.nan], [3.0]])
        out = SimpleImputer("mean").fit_transform(X)
        assert out.ravel().tolist() == [1.0, 2.0, 3.0]

    def test_median_imputation(self):
        X = np.asarray([[1.0], [np.nan], [9.0], [2.0]])
        out = SimpleImputer("median").fit_transform(X)
        assert out[1, 0] == 2.0

    def test_most_frequent(self):
        X = np.asarray([[1.0], [1.0], [5.0], [np.nan]])
        assert SimpleImputer("most_frequent").fit_transform(X)[3, 0] == 1.0

    def test_constant(self):
        X = np.asarray([[np.nan]])
        assert SimpleImputer("constant", fill_value=-7).fit_transform(X)[0, 0] == -7.0

    def test_all_missing_column_uses_fill(self):
        X = np.asarray([[np.nan], [np.nan]])
        assert np.all(SimpleImputer("mean").fit_transform(X) == 0.0)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            SimpleImputer("magic")

    def test_cell_imputer_categorical(self):
        imp = CellImputer().fit(["a", "a", "b", None])
        assert imp.transform([None, "b"]) == ["a", "b"]

    def test_cell_imputer_mean(self):
        imp = CellImputer("mean").fit([1.0, 3.0, None])
        assert imp.transform([None]) == [2.0]

    def test_transform_preserves_present_values(self):
        X = np.asarray([[1.0, np.nan], [3.0, 4.0]])
        out = SimpleImputer("mean").fit_transform(X)
        assert out[0, 0] == 1.0 and out[1, 1] == 4.0


class TestComposition:
    def test_pipeline_chains(self):
        pipe = Pipeline([CellImputer(), OneHotEncoder()])
        out = pipe.fit_transform(["a", None, "a", "b"])
        assert out.shape == (4, 2)
        assert out[1].tolist() == [1.0, 0.0]  # imputed to most frequent 'a'

    def test_function_transformer(self):
        ft = FunctionTransformer(lambda X: np.asarray(X) * 2)
        assert ft.fit_transform(np.ones((2, 2))).tolist() == [[2.0, 2.0], [2.0, 2.0]]

    def test_column_transformer_shapes(self):
        frame = DataFrame(
            {"cat": ["a", "b", "a"], "num1": [1.0, 2.0, 3.0], "num2": [0.0, 0.0, 1.0]}
        )
        ct = ColumnTransformer(
            [(OneHotEncoder(), "cat"), (StandardScaler(), ["num1", "num2"])]
        )
        out = ct.fit_transform(frame)
        assert out.shape == (3, 4)
        assert ct.n_features_out_ == 4

    def test_column_transformer_passthrough(self):
        frame = DataFrame({"cat": ["a", "b"], "extra": [1.0, 2.0]})
        ct = ColumnTransformer([(OneHotEncoder(), "cat")], remainder="passthrough")
        assert ct.fit_transform(frame).shape == (2, 3)
        assert ct.passthrough_ == ["extra"]

    def test_column_transformer_transform_after_fit(self):
        frame = DataFrame({"cat": ["a", "b", "a"]})
        ct = ColumnTransformer([(OneHotEncoder(), "cat")])
        ct.fit(frame)
        out = ct.transform(DataFrame({"cat": ["b"]}))
        assert out.tolist() == [[0.0, 1.0]]

    def test_column_transformer_requires_frame(self):
        ct = ColumnTransformer([(OneHotEncoder(), "cat")])
        with pytest.raises(TypeError):
            ct.fit_transform(np.zeros((2, 2)))

    def test_column_transformer_unfitted_transform_raises(self):
        ct = ColumnTransformer([(OneHotEncoder(), "cat")])
        with pytest.raises(RuntimeError):
            ct.transform(DataFrame({"cat": ["a"]}))

    def test_bad_remainder_raises(self):
        with pytest.raises(ValueError):
            ColumnTransformer([], remainder="keep")
