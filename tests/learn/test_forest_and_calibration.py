"""Tests for the random forest and probability calibration."""

import numpy as np
import pytest

from repro.datasets import make_classification, make_moons
from repro.learn import (
    DecisionTreeClassifier,
    LogisticRegression,
    PlattCalibrator,
    RandomForestClassifier,
    expected_calibration_error,
    reliability_table,
)


class TestRandomForest:
    def test_matches_single_tree_on_nonlinear_task(self):
        # With only 2 features, subsampling would starve the trees: use all.
        X, y = make_moons(n=400, noise=0.25, seed=1)
        Xtr, ytr, Xte, yte = X[:300], y[:300], X[300:], y[300:]
        tree = DecisionTreeClassifier(max_depth=4).fit(Xtr, ytr)
        forest = RandomForestClassifier(
            n_trees=25, max_depth=4, max_features=1.0, seed=0
        ).fit(Xtr, ytr)
        assert forest.score(Xte, yte) >= tree.score(Xte, yte) - 0.02

    def test_learns_separable_task(self):
        X, y = make_classification(n=300, n_features=5, seed=6)
        forest = RandomForestClassifier(n_trees=20, seed=0).fit(X[:220], y[:220])
        assert forest.score(X[220:], y[220:]) > 0.8

    def test_predict_proba_valid(self):
        X, y = make_classification(n=200, seed=2)
        forest = RandomForestClassifier(n_trees=10, seed=1).fit(X, y)
        probs = forest.predict_proba(X[:20])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all((0.0 <= probs) & (probs <= 1.0))

    def test_deterministic_by_seed(self):
        X, y = make_classification(n=150, seed=3)
        a = RandomForestClassifier(n_trees=8, seed=5).fit(X, y).predict(X[:30])
        b = RandomForestClassifier(n_trees=8, seed=5).fit(X, y).predict(X[:30])
        assert np.array_equal(a, b)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(ValueError):
            RandomForestClassifier(max_features=0.0)

    def test_feature_subsampling_bounds(self):
        X, y = make_classification(n=100, n_features=5, seed=4)
        forest = RandomForestClassifier(n_trees=5, max_features=0.4, seed=0).fit(X, y)
        for columns in forest.feature_sets_:
            assert len(columns) == 2  # round(0.4 * 5)


class TestECE:
    def test_perfectly_calibrated_is_zero(self):
        rng = np.random.default_rng(0)
        probs = rng.random(5000)
        outcomes = (rng.random(5000) < probs).astype(int)
        assert expected_calibration_error(outcomes, probs, positive=1) < 0.03

    def test_overconfident_scores_high(self):
        # Always predicts 0.95 but is right only half the time.
        probs = np.full(200, 0.95)
        outcomes = np.asarray([1, 0] * 100)
        assert expected_calibration_error(outcomes, probs, positive=1) > 0.4

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            expected_calibration_error([1], [0.5, 0.5], positive=1)

    def test_reliability_table_counts_sum(self):
        rng = np.random.default_rng(1)
        probs = rng.random(300)
        outcomes = rng.integers(0, 2, size=300)
        table = reliability_table(outcomes, probs, positive=1)
        assert sum(r["count"] for r in table) == 300


class TestPlattCalibrator:
    @pytest.fixture(scope="class")
    def overconfident_setup(self):
        """A logistic model trained on noise-free labels becomes
        overconfident when deployed on noisier data."""
        rng = np.random.default_rng(5)
        n = 900
        X = rng.normal(size=(n, 3))
        scores = X @ np.asarray([2.0, -1.5, 1.0])
        clean = (scores > 0).astype(int)
        noisy = np.where(rng.random(n) < 0.25, 1 - clean, clean)
        model = LogisticRegression(l2=1e-4).fit(X[:300], clean[:300])
        return model, X, noisy

    def test_calibration_reduces_ece(self, overconfident_setup):
        model, X, noisy = overconfident_setup
        calibrator = PlattCalibrator(model, positive=1).fit(
            X[300:600], noisy[300:600]
        )
        raw = model.predict_proba(X[600:])[:, list(model.classes_).index(1)]
        calibrated = calibrator.predict_proba(X[600:])
        ece_raw = expected_calibration_error(noisy[600:], raw, positive=1)
        ece_cal = expected_calibration_error(noisy[600:], calibrated, positive=1)
        assert ece_cal < ece_raw

    def test_probabilities_in_unit_interval(self, overconfident_setup):
        model, X, noisy = overconfident_setup
        calibrator = PlattCalibrator(model, positive=1).fit(X[:200], noisy[:200])
        probs = calibrator.predict_proba(X[200:260])
        assert np.all((0.0 <= probs) & (probs <= 1.0))

    def test_predict_thresholds_at_half(self, overconfident_setup):
        model, X, noisy = overconfident_setup
        calibrator = PlattCalibrator(model, positive=1).fit(X[:200], noisy[:200])
        probs = calibrator.predict_proba(X[200:260])
        labels = calibrator.predict(X[200:260])
        assert np.array_equal(labels == 1, probs >= 0.5)

    def test_unfitted_raises(self, overconfident_setup):
        model, X, __ = overconfident_setup
        with pytest.raises(RuntimeError):
            PlattCalibrator(model, positive=1).predict_proba(X[:5])

    def test_unknown_positive_raises(self, overconfident_setup):
        model, X, noisy = overconfident_setup
        with pytest.raises(ValueError):
            PlattCalibrator(model, positive="zebra").fit(X[:50], noisy[:50])
