"""ASCII rendering of trace spans: tree/flame view, summary, metrics.

Consumes the :class:`repro.obs.Span` objects recorded by the observability
layer (anything with ``span_id``/``parent_id``/``name``/``duration``/
``attrs`` works) and renders the views ``TraceReport.render`` composes:

- :func:`format_trace` — the span tree with a duration bar per span (a
  collapsed flame graph: bar length ∝ share of the window's wall-clock);
- :func:`format_span_summary` — one aggregate row per span name;
- :func:`format_metrics` — the metric deltas of a tracing window.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from .table import format_records

__all__ = ["format_trace", "format_span_summary", "format_metrics"]

_BAR_WIDTH = 24


def _format_duration(seconds: float | None) -> str:
    if seconds is None:
        return "(open)"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _format_attrs(attrs: Mapping[str, Any], max_attrs: int) -> str:
    if not attrs or max_attrs <= 0:
        return ""
    parts = []
    for key, value in list(attrs.items())[:max_attrs]:
        if isinstance(value, float):
            value = f"{value:.4g}"
        text = str(value)
        if len(text) > 24:
            text = text[:21] + "…"
        parts.append(f"{key}={text}")
    if len(attrs) > max_attrs:
        parts.append("…")
    return "  " + " ".join(parts)


def format_trace(spans: Sequence[Any], max_attrs: int = 4) -> str:
    """Render spans as an indented tree with duration bars.

    Spans are expected in recording (pre-)order; children are grouped under
    their parent whatever interleaving threads produced.
    """
    if not spans:
        return "(no spans recorded)"
    by_parent: dict[Any, list[Any]] = {}
    ids = {s.span_id for s in spans}
    for s in spans:
        parent = s.parent_id if s.parent_id in ids else None
        by_parent.setdefault(parent, []).append(s)
    total = sum(s.duration or 0.0 for s in by_parent.get(None, ())) or 1.0
    name_width = min(48, max(len(s.name) for s in spans) + 2)

    lines: list[str] = []

    def emit(span: Any, prefix: str, child_prefix: str) -> None:
        share = (span.duration or 0.0) / total
        bar = "█" * max(1 if (span.duration or 0) > 0 else 0, round(share * _BAR_WIDTH))
        label = prefix + span.name
        lines.append(
            f"{label:<{name_width + len(child_prefix)}} "
            f"{_format_duration(span.duration):>8}  "
            f"{bar:<{_BAR_WIDTH}}"
            f"{_format_attrs(span.attrs, max_attrs)}".rstrip()
        )
        children = by_parent.get(span.span_id, [])
        for i, child in enumerate(children):
            last = i == len(children) - 1
            emit(
                child,
                child_prefix + ("└─ " if last else "├─ "),
                child_prefix + ("   " if last else "│  "),
            )

    for root in by_parent.get(None, []):
        emit(root, "", "")
    return "\n".join(lines)


def format_span_summary(rows: Sequence[Mapping[str, Any]]) -> str:
    """Aggregate table produced from ``TraceReport.summary()`` rows."""
    if not rows:
        return "(no spans recorded)"
    display = [
        {
            "span": row["name"],
            "calls": row["calls"],
            "total": _format_duration(row["total_s"]),
            "mean": _format_duration(row["mean_s"]),
            "max": _format_duration(row["max_s"]),
            "self": _format_duration(row["self_s"]),
        }
        for row in rows
    ]
    return format_records(display)


def format_metrics(metrics: Mapping[str, Mapping[str, Any]]) -> str:
    """Render a metrics snapshot/delta (``TraceReport.metrics``) as a table."""
    if not metrics:
        return "(no metrics recorded)"
    rows = []
    for name, snap in sorted(metrics.items()):
        kind = snap.get("type", "?")
        if kind == "histogram":
            count = snap.get("count", 0)
            mean = (snap.get("sum", 0.0) / count) if count else 0.0
            value = f"n={count} mean={mean:.4g}"
            if snap.get("p95") is not None:
                value += f" p95={snap['p95']:.4g}"
        else:
            value = f"{snap.get('value', 0.0):.6g}"
        rows.append({"metric": name, "kind": kind, "value": value})
    return format_records(rows)
