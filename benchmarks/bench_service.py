"""Valuation-as-a-service under load: latency, backpressure, zero lost jobs.

A seeded load generator drives the job runtime the way a production
deployment would be driven: several tenants submitting bursts of valuation
jobs concurrently, one chaos-slowed "noisy" tenant, seeded mid-job crashes
(recovered by per-job retry budgets), a cohort of identical requests that
must dedup into one execution, and a cohort with already-expired deadlines
that must degrade instead of running. Bursts are submitted without
yielding the event loop, so admission control — not scheduling luck —
decides who queues, who is shed, and who is rejected.

Reported: p50/p99 end-to-end latency for admitted-and-completed traffic
vs time-to-rejection for shed traffic, per-tenant p50/p99 and burn rate
straight from the runtime's :class:`~repro.obs.slo.SLOTracker` (the same
histograms the ``/metrics`` and ``/slo`` endpoints serve), terminal-state
counts, retry and dedup counts, and the hard invariants (bounded queue
depth, every submitted job terminal, empty recovery set afterwards — zero
lost jobs).

Environment knobs (CI smoke sizes): ``REPRO_BENCH_SVC_ROUNDS`` (burst
rounds), ``REPRO_BENCH_SVC_JOBS`` (jobs per tenant per burst),
``REPRO_BENCH_SVC_DEPTH`` (queue bound), ``REPRO_BENCH_SVC_CONC``
(worker concurrency), ``REPRO_BENCH_SVC_DELAY`` (per-eval sleep),
``REPRO_BENCH_SVC_CRASH_RATE`` (seeded job crash probability; smoke
sizes raise it so at least one crash fires in a short run).
"""

from __future__ import annotations

import asyncio
import os
import time
from tempfile import TemporaryDirectory

import numpy as np
import pytest

from repro.errors import ChaosMonkey
from repro.importance import SubsetUtility, ValuationEngine
from repro.service import (
    AdmissionPolicy,
    JobJournal,
    JobRejected,
    JobRequest,
    JobRuntime,
    JobState,
    RetryPolicy,
    register_valuation,
)
from repro.viz import format_records

ROUNDS = int(os.environ.get("REPRO_BENCH_SVC_ROUNDS", "3"))
JOBS_PER_TENANT = int(os.environ.get("REPRO_BENCH_SVC_JOBS", "4"))
DEPTH = int(os.environ.get("REPRO_BENCH_SVC_DEPTH", "6"))
CONCURRENCY = int(os.environ.get("REPRO_BENCH_SVC_CONC", "2"))
DELAY = float(os.environ.get("REPRO_BENCH_SVC_DELAY", "0.0005"))
CRASH_RATE = float(os.environ.get("REPRO_BENCH_SVC_CRASH_RATE", "0.15"))
GAME_N = 8
PERMS = 5
#: tenant -> priority. The noisy (chaos-slowed) tenant outranks part of the
#: field so its jobs actually execute and the slow-tenant fault fires.
TENANTS = {"alpha": 0, "beta": 1, "gamma": 2, "noisy": 2}


def make_engine(params: dict) -> ValuationEngine:
    rng = np.random.default_rng(3)
    w = rng.normal(size=GAME_N)

    def func(indices):
        if DELAY:
            time.sleep(DELAY)
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return ValuationEngine(SubsetUtility(func, GAME_N))


def percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else float("nan")


async def drive(journal_path: str, checkpoint_dir: str) -> dict:
    chaos = ChaosMonkey(
        seed=11,
        job_crash_rate=CRASH_RATE,
        slow_tenants=["noisy"],
        tenant_delay_s=0.01,
    )
    runtime = JobRuntime(
        journal=journal_path,
        checkpoint_dir=checkpoint_dir,
        policy=AdmissionPolicy(max_queue_depth=DEPTH),
        retry=RetryPolicy(backoff_base_s=0.002, max_backoff_s=0.01),
        max_concurrency=CONCURRENCY,
        chaos=chaos,
    )
    register_valuation(runtime, make_engine)

    submitted = 0
    seed = 0
    async with runtime:
        for round_index in range(ROUNDS):
            # One burst, submitted without yielding: admission control
            # alone decides the fate of everything past the queue bound.
            for tenant, tenant_priority in TENANTS.items():
                for job_index in range(JOBS_PER_TENANT):
                    seed += 1
                    expired = job_index == JOBS_PER_TENANT - 1
                    request = JobRequest(
                        kind="valuation",
                        params={
                            "n_permutations": PERMS,
                            "seed": seed,
                            "check_every": PERMS,
                        },
                        tenant=tenant,
                        priority=tenant_priority,
                        # Last job per tenant: deadline already spent at
                        # submission -> must degrade, not run or vanish.
                        deadline_s=0.0 if expired else None,
                        max_retries=1,  # absorbs seeded attempt-0 crashes
                        dedup=False,
                    )
                    submitted += 1
                    try:
                        runtime.submit(request)
                    except JobRejected:
                        pass  # accounted in runtime.counts
            # Dedup cohort: identical requests from every tenant fan into
            # one execution (tenant is excluded from the dedup key).
            for tenant in TENANTS:
                submitted += 1
                try:
                    runtime.submit(
                        JobRequest(
                            kind="valuation",
                            params={
                                "n_permutations": PERMS,
                                "seed": 999_000 + round_index,
                                "check_every": PERMS,
                            },
                            tenant=tenant,
                            priority=5,  # outranks the storm: always admitted
                            max_retries=1,
                            dataset_fingerprint="shared-dataset",
                        )
                    )
                except JobRejected:
                    pass
            await runtime.drain()  # absorb the burst before the next one

    jobs = list(runtime.jobs.values())
    rejected = [j.latency_s for j in jobs if j.state is JobState.REJECTED]
    stats = runtime.stats()
    # Per-tenant latency comes from the runtime's SLO tracker — the same
    # windowed histograms the /metrics and /slo endpoints serve — rather
    # than re-deriving it from raw job records here.
    slo_snapshot = runtime.slo.snapshot()
    tenants = {}
    for tenant in runtime.slo.tenants():
        quantiles = runtime.slo.quantiles(tenant, kind="valuation")
        tenants[tenant] = {
            "p50_ms": round(1e3 * (quantiles["p50_s"] or 0.0), 2),
            "p99_ms": round(1e3 * (quantiles["p99_s"] or 0.0), 2),
            "observed": quantiles["count"],
            "burn_rate": round(slo_snapshot[tenant]["burn_rate"], 3),
            "deadline_hit_ratio": round(
                slo_snapshot[tenant]["deadline_hit_ratio"], 3
            ),
            "shed_ratio": round(slo_snapshot[tenant]["shed_ratio"], 3),
        }
    fleet_completed = [
        j.latency_s for j in jobs if j.state is JobState.COMPLETED
    ]
    return {
        "offered_load": submitted,
        "counts": {k: stats[k] for k in (
            "submitted", "admitted", "deduplicated", "rejected", "shed",
            "completed", "degraded", "failed", "retries",
        )},
        "tenants": tenants,
        "slo_jobs_observed": sum(
            snap["jobs"] for snap in slo_snapshot.values()
        ),
        "slo_alerts": [a.to_dict() for a in runtime.slo.alerts()],
        "latency": {
            "completed_p50_ms": round(1e3 * percentile(fleet_completed, 50), 2),
            "completed_p99_ms": round(1e3 * percentile(fleet_completed, 99), 2),
            "rejected_p99_ms": round(1e3 * percentile(rejected, 99), 2),
        },
        "max_queue_depth_seen": stats["max_queue_depth_seen"],
        "queue_bound": DEPTH,
        "chaos_job_crashes": sum(
            1 for f in chaos.triggered if f.kind == "job_crash"
        ),
        "chaos_slow_tenant_hits": sum(
            1 for f in chaos.triggered if f.kind == "slow_tenant"
        ),
        "slow_tenant_exercised": any(
            f.kind == "slow_tenant" for f in chaos.triggered
        ),
        "non_terminal_jobs": sum(1 for j in jobs if not j.done),
        "journal_in_flight_after": len(JobJournal(journal_path).in_flight()),
    }


def run_service_load() -> dict:
    with TemporaryDirectory() as tmp:
        return asyncio.run(
            drive(os.path.join(tmp, "journal.jsonl"), os.path.join(tmp, "ck"))
        )


@pytest.mark.benchmark(group="service")
def test_service_load(benchmark, write_report):
    result = benchmark.pedantic(run_service_load, rounds=1, iterations=1)
    counts = result["counts"]

    # Zero lost jobs: every submission is accounted for by an explicit
    # terminal state, and nothing is left for crash recovery to find.
    assert result["non_terminal_jobs"] == 0
    assert result["journal_in_flight_after"] == 0
    assert counts["failed"] == 0  # every seeded crash was retried away
    terminal = (
        counts["completed"] + counts["degraded"]
        + counts["rejected"] + counts["shed"]
    )
    assert terminal + counts["deduplicated"] == counts["submitted"]
    assert counts["submitted"] == result["offered_load"]

    # Backpressure: the queue bound held throughout the storm.
    assert result["max_queue_depth_seen"] <= result["queue_bound"]
    # The load generator genuinely overloaded the runtime and the fault
    # injection genuinely fired.
    assert counts["rejected"] + counts["shed"] > 0
    assert counts["degraded"] > 0
    assert counts["deduplicated"] > 0
    assert counts["retries"] >= result["chaos_job_crashes"] > 0
    assert result["slow_tenant_exercised"]

    # The SLO tracker observed every terminal job the runtime produced.
    assert result["slo_jobs_observed"] == terminal
    assert set(result["tenants"]) == set(TENANTS)
    for tenant_stats in result["tenants"].values():
        assert tenant_stats["observed"] > 0

    rows = [
        {"metric": "offered jobs", "value": result["offered_load"]},
        {"metric": "completed", "value": counts["completed"]},
        {"metric": "degraded (deadline)", "value": counts["degraded"]},
        {"metric": "rejected + shed", "value": counts["rejected"] + counts["shed"]},
        {"metric": "deduplicated", "value": counts["deduplicated"]},
        {"metric": "retries (chaos crashes)", "value": counts["retries"]},
        {"metric": "max queue depth / bound",
         "value": f"{result['max_queue_depth_seen']}/{result['queue_bound']}"},
        {"metric": "completed p50 (ms)",
         "value": result["latency"]["completed_p50_ms"]},
        {"metric": "completed p99 (ms)",
         "value": result["latency"]["completed_p99_ms"]},
        {"metric": "rejected p99 (ms)",
         "value": result["latency"]["rejected_p99_ms"]},
    ]
    for tenant, tenant_stats in sorted(result["tenants"].items()):
        rows.append({
            "metric": f"tenant {tenant} p50/p99 (ms, SLO tracker)",
            "value": f"{tenant_stats['p50_ms']}/{tenant_stats['p99_ms']}"
                     f" burn={tenant_stats['burn_rate']}",
        })
    text = "valuation service under burst load (chaos: crashes + noisy tenant)\n"
    text += format_records(rows)
    write_report("service", text, records=result)
    print()
    print(text)
