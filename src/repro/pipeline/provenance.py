"""Fine-grained why-provenance for pipeline outputs.

Following the semiring framework of Green et al. [27], each output row of a
pipeline carries the *set of source tuples* that produced it (why-
provenance: the additive structure collapses because our pipelines are
select-project-join, not aggregating). A source tuple is identified by
``(source_name, row_id)`` with row ids taken from
:attr:`repro.frame.DataFrame.row_ids`.

This is what makes pipeline-aware debugging possible: importance computed on
*encoded training matrices* can be pushed back through joins and filters to
the raw input tables where errors actually live (Section 2.2 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Provenance"]


class Provenance:
    """Per-output-row sets of contributing source tuples."""

    def __init__(self, tuples: Sequence[frozenset[tuple[str, int]]]) -> None:
        self.tuples: list[frozenset[tuple[str, int]]] = list(tuples)

    # ------------------------------------------------------------------
    # Constructors used by the executor
    # ------------------------------------------------------------------
    @classmethod
    def for_source(cls, name: str, row_ids: np.ndarray) -> "Provenance":
        return cls([frozenset({(name, int(rid))}) for rid in row_ids])

    def take(self, positions: np.ndarray) -> "Provenance":
        return Provenance([self.tuples[int(p)] for p in positions])

    @staticmethod
    def union_rows(left: "Provenance", right: "Provenance") -> "Provenance":
        """Row-wise union (join output: both inputs contributed)."""
        if len(left) != len(right):
            raise ValueError("provenance length mismatch in union")
        return Provenance([a | b for a, b in zip(left.tuples, right.tuples)])

    @staticmethod
    def concat(parts: Sequence["Provenance"]) -> "Provenance":
        out: list[frozenset] = []
        for part in parts:
            out.extend(part.tuples)
        return Provenance(out)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def sources(self) -> set[str]:
        return {name for row in self.tuples for name, __ in row}

    def source_row_ids(self, source: str) -> np.ndarray:
        """Row ids of ``source`` that contribute to *each* output row.

        Requires every output row to descend from exactly one tuple of the
        source (true for the paper's pipelines, where side tables are joined
        onto a training base table); raises otherwise.
        """
        out = np.empty(len(self.tuples), dtype=np.int64)
        for i, row in enumerate(self.tuples):
            matches = [rid for name, rid in row if name == source]
            if len(matches) != 1:
                raise ValueError(
                    f"output row {i} descends from {len(matches)} tuples of "
                    f"{source!r}; expected exactly one"
                )
            out[i] = matches[0]
        return out

    def outputs_of(self, source: str, row_ids: Iterable[int]) -> np.ndarray:
        """Output positions that any of the given source tuples contributed to."""
        wanted = {(source, int(rid)) for rid in row_ids}
        return np.asarray(
            [i for i, row in enumerate(self.tuples) if row & wanted],
            dtype=np.int64,
        )

    def lineage_table(self) -> list[dict]:
        """Readable dump: one record per output row."""
        return [
            {
                "output_row": i,
                "sources": ", ".join(
                    f"{name}[{rid}]" for name, rid in sorted(row)
                ),
            }
            for i, row in enumerate(self.tuples)
        ]
