"""Deterministic hashed bag-of-words features (the hashing trick)."""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

import numpy as np

from .lexicon import SentimentLexicon

__all__ = ["stable_hash", "HashingVectorizer"]


def stable_hash(token: str, seed: int = 0) -> int:
    """Process-independent 32-bit hash (CRC32). Python's ``hash`` is salted."""
    return zlib.crc32(f"{seed}:{token}".encode("utf-8"))


class HashingVectorizer:
    """Map texts to fixed-width token-count vectors via feature hashing.

    Parameters
    ----------
    n_features:
        Output dimensionality (hash buckets).
    ngram_range:
        Inclusive (lo, hi) range of word-n-gram lengths to hash.
    signed:
        Use the hash parity as a sign, which makes collisions cancel in
        expectation (as in scikit-learn's ``HashingVectorizer``).
    """

    def __init__(
        self,
        n_features: int = 128,
        ngram_range: tuple[int, int] = (1, 2),
        signed: bool = True,
    ) -> None:
        if n_features < 1:
            raise ValueError("n_features must be positive")
        lo, hi = ngram_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid ngram_range: {ngram_range}")
        self.n_features = int(n_features)
        self.ngram_range = (int(lo), int(hi))
        self.signed = bool(signed)

    def _ngrams(self, tokens: Sequence[str]) -> Iterable[str]:
        lo, hi = self.ngram_range
        for size in range(lo, hi + 1):
            for start in range(len(tokens) - size + 1):
                yield " ".join(tokens[start : start + size])

    def transform_one(self, text: str) -> np.ndarray:
        vec = np.zeros(self.n_features)
        tokens = SentimentLexicon.tokenize(text)
        for gram in self._ngrams(tokens):
            h = stable_hash(gram)
            bucket = h % self.n_features
            sign = 1.0 if (not self.signed or (h >> 16) & 1 == 0) else -1.0
            vec[bucket] += sign
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def transform(self, texts: Iterable[str]) -> np.ndarray:
        return np.vstack([self.transform_one(t) for t in texts])
