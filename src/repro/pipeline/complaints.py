"""Complaint-driven training-data debugging (Rain: Wu et al. [83], Flokas et al. [20]).

A *complaint* states that a specific prediction is wrong ("this applicant's
letter should have been classified negative"). The debugger searches for a
small set of training tuples whose removal fixes the complaint, using an
importance ranking targeted at the complained-about point as the candidate
order — the interactive-speed strategy of the Rain line of work, with exact
retraining as the verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..learn.base import Estimator, clone
from ..importance.knn_shapley import knn_shapley

__all__ = ["Complaint", "ComplaintResolution", "resolve_complaint"]


@dataclass
class Complaint:
    """One disputed prediction: the model should output ``expected_label``."""

    x: np.ndarray
    expected_label: Any

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float).reshape(-1)

    def is_satisfied(self, model: Estimator) -> bool:
        prediction = model.predict(self.x.reshape(1, -1))[0]
        return bool(prediction == self.expected_label)


@dataclass
class ComplaintResolution:
    """Result of a complaint-debugging session."""

    resolved: bool
    removed_positions: np.ndarray
    n_retrainings: int
    accuracy_before: float | None = None
    accuracy_after: float | None = None
    trace: list[dict] = field(default_factory=list)


def resolve_complaint(
    model: Estimator,
    x_train: Any,
    y_train: Any,
    complaint: Complaint,
    max_removals: int = 25,
    batch_size: int = 5,
    x_holdout: Any = None,
    y_holdout: Any = None,
    k: int = 5,
) -> ComplaintResolution:
    """Remove low-importance training points until the complaint is fixed.

    Candidates are ranked by KNN-Shapley importance *with respect to the
    complaint alone* (validation set = the single disputed point with its
    expected label): tuples that push the model away from the expected label
    get negative values and are removed first, in batches, with a full
    retraining after each batch to verify.

    Returns the removal set (possibly empty if the initial model already
    satisfies the complaint) and, when a holdout set is supplied, the
    collateral accuracy change.
    """
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    fitted = clone(model).fit(x_train, y_train)
    n_retrainings = 1
    accuracy_before = (
        float(fitted.score(np.asarray(x_holdout, float), np.asarray(y_holdout)))
        if x_holdout is not None
        else None
    )
    if complaint.is_satisfied(fitted):
        return ComplaintResolution(
            resolved=True,
            removed_positions=np.empty(0, dtype=np.int64),
            n_retrainings=n_retrainings,
            accuracy_before=accuracy_before,
            accuracy_after=accuracy_before,
        )

    targeted = knn_shapley(
        x_train,
        y_train,
        complaint.x.reshape(1, -1),
        np.asarray([complaint.expected_label]),
        k=k,
    )
    order = np.argsort(targeted.values, kind="stable")  # most harmful first
    trace: list[dict] = []
    removed: list[int] = []
    keep = np.ones(len(y_train), dtype=bool)
    for start in range(0, min(max_removals, len(order)), batch_size):
        batch = order[start : start + batch_size]
        # Only remove points that actively harm the complaint.
        batch = batch[targeted.values[batch] < 0]
        if len(batch) == 0:
            break
        removed.extend(int(b) for b in batch)
        keep[batch] = False
        if len(np.unique(y_train[keep])) < 2:
            keep[batch] = True  # undo: cannot train a one-class model
            break
        fitted = clone(model).fit(x_train[keep], y_train[keep])
        n_retrainings += 1
        satisfied = complaint.is_satisfied(fitted)
        trace.append({"n_removed": len(removed), "satisfied": satisfied})
        if satisfied:
            accuracy_after = (
                float(fitted.score(np.asarray(x_holdout, float), np.asarray(y_holdout)))
                if x_holdout is not None
                else None
            )
            return ComplaintResolution(
                resolved=True,
                removed_positions=np.asarray(removed, dtype=np.int64),
                n_retrainings=n_retrainings,
                accuracy_before=accuracy_before,
                accuracy_after=accuracy_after,
                trace=trace,
            )
    accuracy_after = (
        float(fitted.score(np.asarray(x_holdout, float), np.asarray(y_holdout)))
        if x_holdout is not None
        else None
    )
    return ComplaintResolution(
        resolved=False,
        removed_positions=np.asarray(removed, dtype=np.int64),
        n_retrainings=n_retrainings,
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
        trace=trace,
    )
