"""Synthetic hiring scenario: recommendation letters plus side tables.

This is the dataset the hands-on session (Section 3.1) is built on: "a set
of recommendation letters together with multiple tables of side data such as
demographic information and social media details of the applicants", where
the ML task is to predict letter sentiment. Everything is generated
deterministically from a seed.

Schema
------
``letters`` (the training base table; one row per applicant):
    person_id, name, job_id, letter_text, degree, sex, age, race,
    employer_rating, sentiment (label: "positive"/"negative")
``jobdetail`` (side table keyed by job_id):
    job_id, sector, salary_band, team_size
``social`` (side table keyed by person_id):
    person_id, twitter, followers
"""

from __future__ import annotations

import numpy as np

from ..frame import Column, DataFrame
from ..learn.model_selection import split_frame
from ._phrases import CLOSINGS, NEGATIVE_PHRASES, NEUTRAL_PHRASES, OPENINGS, POSITIVE_PHRASES

__all__ = [
    "generate_hiring_data",
    "load_recommendation_letters",
    "load_sidedata",
    "SECTORS",
    "DEGREES",
]

_FIRST_NAMES = [
    "Alex", "Sam", "Jordan", "Taylor", "Morgan", "Casey", "Riley", "Avery",
    "Quinn", "Rowan", "Emerson", "Finley", "Harper", "Kendall", "Logan",
    "Marley", "Noel", "Parker", "Reese", "Sage", "Skyler", "Tatum",
]
_LAST_NAMES = [
    "Ibarra", "Kowalski", "Nakamura", "Okafor", "Petrov", "Quintana",
    "Ramaswamy", "Silva", "Tran", "Ueda", "Varga", "Whitfield", "Xu",
    "Yilmaz", "Zhang", "Andersen", "Baptiste", "Cordova", "Demir", "Eze",
]

SECTORS = ["healthcare", "finance", "retail", "education", "logistics"]
DEGREES = ["bachelor", "master", "phd", "none"]
_SEXES = ["f", "m"]
_RACES = ["white", "black", "asian", "hispanic", "other"]


def _make_letter(rng: np.random.Generator, name: str, positive: bool) -> str:
    """Compose a letter whose polarity balance matches the target label."""
    main_bank = POSITIVE_PHRASES if positive else NEGATIVE_PHRASES
    off_bank = NEGATIVE_PHRASES if positive else POSITIVE_PHRASES
    n_main = int(rng.integers(2, 5))
    n_off = int(rng.integers(0, max(1, n_main - 1)))  # strictly fewer than main
    n_neutral = int(rng.integers(1, 3))
    parts = [str(rng.choice(OPENINGS))]
    body = (
        [str(p) for p in rng.choice(main_bank, size=n_main, replace=False)]
        + [str(p) for p in rng.choice(off_bank, size=n_off, replace=False)]
        + [str(p) for p in rng.choice(NEUTRAL_PHRASES, size=n_neutral, replace=False)]
    )
    rng.shuffle(body)
    parts.extend(body)
    parts.append(str(rng.choice(CLOSINGS)))
    return " ".join(part.format(name=name).capitalize() + "." if not part.endswith((".", ":", ","))
                    else part.format(name=name) for part in parts)


def generate_hiring_data(
    n: int = 1000, n_jobs: int = 40, seed: int = 7
) -> dict[str, DataFrame]:
    """Generate the full hiring scenario (base table plus side tables)."""
    if n < 4:
        raise ValueError("need at least 4 applicants")
    rng = np.random.default_rng(seed)

    job_ids = np.arange(100, 100 + n_jobs)
    sectors = rng.choice(SECTORS, size=n_jobs, p=[0.42, 0.18, 0.16, 0.14, 0.10])
    jobdetail = DataFrame(
        {
            "job_id": job_ids,
            "sector": sectors.astype(str),
            "salary_band": rng.integers(1, 6, size=n_jobs),
            "team_size": rng.integers(3, 40, size=n_jobs),
        }
    )

    names = [
        f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}" for __ in range(n)
    ]
    positive = rng.random(n) < 0.55
    letters = [_make_letter(rng, name.split()[0], pos) for name, pos in zip(names, positive)]
    ages = rng.integers(21, 66, size=n)
    # Employer rating correlates mildly with sentiment: good letters tend to
    # come from organisations the applicant thrived in.
    employer_rating = np.clip(
        rng.normal(loc=np.where(positive, 3.8, 2.9), scale=0.8), 1.0, 5.0
    ).round(2)

    letters_df = DataFrame(
        {
            "person_id": np.arange(1, n + 1),
            "name": np.asarray(names, dtype=str),
            "job_id": rng.choice(job_ids, size=n),
            "letter_text": np.asarray(letters, dtype=str),
            "degree": rng.choice(DEGREES, size=n, p=[0.45, 0.3, 0.1, 0.15]).astype(str),
            "sex": rng.choice(_SEXES, size=n).astype(str),
            "age": ages,
            "race": rng.choice(_RACES, size=n, p=[0.5, 0.15, 0.15, 0.12, 0.08]).astype(str),
            "employer_rating": employer_rating,
            "sentiment": np.where(positive, "positive", "negative").astype(str),
        }
    )

    has_twitter = rng.random(n) < 0.6
    handles = np.where(
        has_twitter,
        np.asarray([f"@{name.split()[0].lower()}{i}" for i, name in enumerate(names)]),
        "",
    ).astype(str)
    social = DataFrame(
        {
            "person_id": np.arange(1, n + 1),
            # Applicants without a profile have a *missing* handle, not "".
            "twitter": Column(handles, mask=~has_twitter),
            "followers": np.where(has_twitter, rng.integers(10, 5000, size=n), 0),
        }
    )

    return {"letters": letters_df, "jobdetail": jobdetail, "social": social}


def load_recommendation_letters(
    n: int = 1000,
    seed: int = 7,
    fractions: tuple[float, float, float] = (0.6, 0.2, 0.2),
) -> tuple[DataFrame, DataFrame, DataFrame]:
    """Train/valid/test single-table splits (the paper's Figure 2 loader)."""
    data = generate_hiring_data(n=n, seed=seed)
    train, valid, test = split_frame(data["letters"], fractions=fractions, seed=seed)
    return train, valid, test


def load_sidedata(
    n: int = 1000, seed: int = 7
) -> tuple[DataFrame, DataFrame]:
    """The jobdetail and social side tables (the paper's Figure 3 loader)."""
    data = generate_hiring_data(n=n, seed=seed)
    return data["jobdetail"], data["social"]
