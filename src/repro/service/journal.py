"""Durable, crash-safe job journal (append-only JSONL).

The journal is the service's write-ahead log: every lifecycle edge of every
job — submission (with the full JSON request), admission, start, progress
watermarks, retries, and the terminal state — is appended *before* the
in-memory state moves on. Appends go through
:func:`repro.obs.atomicio.atomic_append_line` under the cross-process
advisory lock, so a SIGKILL at any instant leaves either the previous
journal or the previous journal plus one complete line — never a torn
record — and concurrent writers (a second runtime sharing the journal
directory) cannot interleave.

:meth:`JobJournal.replay` folds the event log into one
:class:`JournalEntry` per job. Entries whose last event is non-terminal are
exactly the jobs a restarted runtime must recover: their requests are
reconstructed from the submission record and re-enqueued, and their engine
checkpoints (keyed by the stable job id) take over from the last durable
watermark. Records are schema-versioned and loaded leniently — unknown
fields are ignored, malformed lines skipped — so old readers survive new
writers.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..obs.atomicio import atomic_append_line
from .job import TERMINAL_STATES, JobRequest, JobState

__all__ = ["JOURNAL_SCHEMA_VERSION", "JobJournal", "JournalEntry"]

#: Bump when the event layout changes incompatibly; readers keep ignoring
#: unknown fields either way.
JOURNAL_SCHEMA_VERSION = 1

#: Events that carry a job's terminal state.
_TERMINAL_EVENTS = frozenset(state.value for state in TERMINAL_STATES)


@dataclass
class JournalEntry:
    """Folded view of one job after replaying its journal events."""

    job_id: str
    request: JobRequest | None = None
    state: str = JobState.SUBMITTED.value
    submitted_at: float = 0.0
    attempts: int = 0
    progress_completed: int = 0
    result_summary: dict[str, Any] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_EVENTS

    @property
    def recoverable(self) -> bool:
        """In-flight at crash time with enough journaled state to rebuild."""
        return not self.terminal and self.request is not None


class JobJournal:
    """Append-only JSONL write-ahead log of job lifecycle events."""

    def __init__(self, path: Any) -> None:
        self.path = Path(path)

    # -- write -----------------------------------------------------------
    def record(
        self,
        event: str,
        job_id: str,
        payload: Mapping[str, Any] | None = None,
    ) -> None:
        """Durably append one event line (atomic + cross-process locked)."""
        line = json.dumps(
            {
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "ts": time.time(),
                "event": str(event),
                "job_id": str(job_id),
                "payload": dict(payload or {}),
            },
            sort_keys=True,
        )
        atomic_append_line(self.path, line)

    # -- read ------------------------------------------------------------
    def events(self) -> list[dict[str, Any]]:
        """Every parseable event, in append order (malformed lines skipped)."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a non-atomic writer
                if isinstance(payload, dict) and payload.get("event"):
                    out.append(payload)
        return out

    def replay(self) -> dict[str, JournalEntry]:
        """Fold the event log into the latest per-job state, in job order.

        The fold is tolerant by construction: events for jobs whose
        submission line is missing (pre-truncated journals) still produce
        an entry, just one that is not :attr:`~JournalEntry.recoverable`.
        """
        entries: dict[str, JournalEntry] = {}
        for record in self.events():
            job_id = str(record["job_id"])
            event = str(record["event"])
            payload = record.get("payload") or {}
            entry = entries.setdefault(job_id, JournalEntry(job_id=job_id))
            entry.events.append(event)
            if event == "submitted":
                try:
                    entry.request = JobRequest.from_dict(
                        payload.get("request", {})
                    )
                except (TypeError, ValueError):
                    entry.request = None
                entry.submitted_at = float(record.get("ts", 0.0))
            elif event == "started":
                entry.attempts = int(payload.get("attempt", entry.attempts)) + 1
                entry.state = JobState.RUNNING.value
            elif event == "progress":
                entry.progress_completed = int(
                    payload.get("completed", entry.progress_completed)
                )
            elif event == "queued":
                entry.state = JobState.QUEUED.value
            elif event in _TERMINAL_EVENTS:
                entry.state = event
                entry.result_summary = dict(payload)
            # "retrying", "deduplicated", "recovered", ... only append to
            # entry.events — the next started/terminal event carries state.
        return entries

    def in_flight(self) -> list[JournalEntry]:
        """Recoverable (accepted, non-terminal) jobs, in submission order."""
        return [
            entry for entry in self.replay().values() if entry.recoverable
        ]

    def __len__(self) -> int:
        return len(self.events())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobJournal({str(self.path)!r}, events={len(self)})"
