"""The dataset multiplicity problem (Meyer et al. [55]).

When up to ``r`` training labels may be wrong, the training data is not one
dataset but a *family* of datasets, each inducing a (possibly different)
model. A test prediction is *robust* when every dataset in the family
agrees on it. This module provides an exact robustness certificate for KNN
(label flips shift vote counts in a closed-form way) and a sampling-based
multiplicity profile for arbitrary retrainable models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..learn.base import Estimator, clone
from ..learn.models.knn import pairwise_distances

__all__ = [
    "knn_flip_robustness",
    "MultiplicityProfile",
    "sampled_multiplicity",
]


def knn_flip_robustness(
    x_train: Any,
    y_train: Any,
    x_test: Any,
    k: int = 3,
    flip_budget: int = 1,
    metric: str = "euclidean",
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-test-point robustness of KNN to ≤ ``flip_budget`` label flips.

    The neighbour set is fixed (features are clean); an adversary flipping a
    top-k member's label moves one vote from the winner to a challenger,
    changing the margin by 2 per flip. The prediction is robust iff the
    winner's margin over every challenger survives
    ``min(flip_budget, winner_votes)`` flips, with ties resolved against
    robustness.

    Returns ``(robust, labels)``.
    """
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_test = np.asarray(x_test, dtype=float)
    if flip_budget < 0:
        raise ValueError("flip_budget must be non-negative")
    distances = pairwise_distances(x_test, x_train, metric=metric)
    k = min(k, len(y_train))
    robust = np.zeros(len(x_test), dtype=bool)
    labels = np.empty(len(x_test), dtype=y_train.dtype)
    for t in range(len(x_test)):
        top = np.argsort(distances[t], kind="stable")[:k]
        votes = y_train[top]
        values, counts = np.unique(votes, return_counts=True)
        winner_idx = int(np.argmax(counts))
        winner, winner_votes = values[winner_idx], int(counts[winner_idx])
        labels[t] = winner
        flips = min(flip_budget, winner_votes)
        # After f flips toward the strongest challenger: winner loses f votes,
        # challenger gains f.
        challengers = [int(c) for j, c in enumerate(counts) if j != winner_idx]
        best_challenger = max(challengers, default=0)
        # A flipped vote can also mint a brand-new class inside the top-k.
        best_challenger = max(best_challenger, 0)
        robust[t] = (winner_votes - flips) > (best_challenger + flips)
    return robust, labels


@dataclass
class MultiplicityProfile:
    """Sampling-based multiplicity summary for a retrainable model."""

    predictions: np.ndarray  # (n_worlds, n_test)
    agreement: np.ndarray  # per-test-point fraction agreeing with world 0
    accuracy_range: tuple[float, float]
    extras: dict = field(default_factory=dict)

    @property
    def robust_fraction(self) -> float:
        """Fraction of test points all sampled worlds agree on (an *upper
        bound estimate* of true robustness: sampling can miss worlds)."""
        first = self.predictions[0]
        unanimous = np.all(self.predictions == first, axis=0)
        return float(np.mean(unanimous))


def sampled_multiplicity(
    model: Estimator,
    x_train: Any,
    y_train: Any,
    x_test: Any,
    y_test: Any = None,
    flip_budget: int = 5,
    n_worlds: int = 20,
    seed: int = 0,
) -> MultiplicityProfile:
    """Retrain over sampled label-flip worlds and profile prediction spread.

    World 0 is always the unmodified dataset; worlds 1.. flip exactly
    ``flip_budget`` uniformly chosen labels to a different class.
    """
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_test = np.asarray(x_test, dtype=float)
    classes = np.unique(y_train)
    if len(classes) < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    predictions = []
    accuracies = []
    for world in range(n_worlds):
        y_world = y_train.copy()
        if world > 0 and flip_budget > 0:
            chosen = rng.choice(
                len(y_train), size=min(flip_budget, len(y_train)), replace=False
            )
            for i in chosen:
                alternatives = classes[classes != y_world[i]]
                y_world[i] = alternatives[int(rng.integers(len(alternatives)))]
        fitted = clone(model).fit(x_train, y_world)
        preds = fitted.predict(x_test)
        predictions.append(preds)
        if y_test is not None:
            accuracies.append(float(np.mean(preds == np.asarray(y_test))))
    predictions = np.vstack(predictions)
    agreement = np.mean(predictions == predictions[0], axis=0)
    accuracy_range = (
        (min(accuracies), max(accuracies)) if accuracies else (float("nan"), float("nan"))
    )
    return MultiplicityProfile(
        predictions=predictions,
        agreement=agreement,
        accuracy_range=accuracy_range,
        extras={"flip_budget": flip_budget, "n_worlds": n_worlds},
    )
