"""Tests for the valuation-as-a-service job runtime."""
