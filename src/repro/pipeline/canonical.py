"""Canonical-pipeline compiler: the preparation step for exact valuation.

"Data Debugging with Shapley Importance over End-to-End ML Pipelines"
(Karlaš et al., arXiv 2204.11131) observes that pipelines composed of
map, fork, and join operators admit a *canonical provenance form*: every
encoded output row is annotated with an additive provenance polynomial
over the rows of one attribution source — a single variable ``x_j`` per
output row, where ``j`` is the source row the output descends from.
Under that form, removing source row ``j`` removes exactly the output
rows whose polynomial is ``x_j``, so the Shapley game over *source* rows
is a grouped KNN game that :mod:`repro.importance.exact_knn` values
exactly in polynomial time — no Monte-Carlo retraining.

This module is the compiler half: it classifies every node of an
executed pipeline as ``source`` / ``map`` / ``fork`` / ``join`` /
``estimator``, checks the classification against the run's recorded
:class:`~repro.pipeline.provenance.Provenance`, and emits a
:class:`CanonicalPipeline` — the per-source-row candidate groups plus a
structural fingerprint for the run ledger. Pipelines that cannot be
compiled (cross-row aggregation maps, self-joins that make provenance
polynomials conjunctions, outputs unreachable from the attribution
source) are rejected with a :class:`CanonicalCompileError` naming the
offending node, never silently mis-valued.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from .execute import PipelineResult
from .operators import (
    EncodeNode,
    FilterNode,
    JoinNode,
    MapNode,
    Node,
    ProjectNode,
    SourceNode,
)
from .provenance import Provenance

__all__ = [
    "CanonicalCompileError",
    "CanonicalPipeline",
    "classify_nodes",
    "compile_pipeline",
    "infer_attribution_source",
]


class CanonicalCompileError(ValueError):
    """A pipeline the canonical compiler cannot value exactly.

    The message names the offending node (kind, id, and its
    ``describe()`` label) so the rejection is actionable: rewrite the
    node, or fall back to the Monte-Carlo methods which need no
    canonical form.
    """

    def __init__(self, message: str, node: Node | None = None) -> None:
        if node is not None:
            message = (
                f"cannot compile {node.kind} node #{node.id} "
                f"({node.describe()}): {message}"
            )
        super().__init__(message)
        self.node_id = node.id if node is not None else None
        self.node_kind = node.kind if node is not None else None
        self.node_label = node.describe() if node is not None else None


def _reachable_sources(node: Node, memo: dict[int, frozenset[str]]) -> frozenset[str]:
    """Names of source tables feeding ``node`` (memoised per compile)."""
    if node.id in memo:
        return memo[node.id]
    if isinstance(node, SourceNode):
        result = frozenset({node.name})
    else:
        result = frozenset().union(
            *(_reachable_sources(parent, memo) for parent in node.inputs)
        )
    memo[node.id] = result
    return result


def classify_nodes(sink: Node, source: str) -> dict[int, str]:
    """Classify every node reachable from ``sink`` for the canonical form.

    - ``source``: a source table (the attribution source or a side table).
    - ``map``: row-local operators — filters, projections, and row-wise
      column UDFs. Each output row keeps its input row's provenance.
    - ``join``: a join whose *left* (driving) input carries the
      attribution source; output rows descend from one driving tuple each.
    - ``fork``: a join that brings the attribution source in from the
      *side* input — one source tuple may feed many output rows, so its
      candidate group has size > 1.
    - ``estimator``: the encode sink, the relational-to-vector boundary
      the KNN proxy game is played over.

    Raises :class:`CanonicalCompileError` for constructs with no additive
    provenance polynomial: cross-row aggregation maps
    (``with_column(..., aggregate=True)``) and joins reached by the
    attribution source on *both* inputs (the polynomial would be a
    conjunction ``x_a · x_b``, not a single variable).
    """
    classes: dict[int, str] = {}
    memo: dict[int, frozenset[str]] = {}
    for node in sink.plan.topological_order(sink):
        if isinstance(node, SourceNode):
            classes[node.id] = "source"
        elif isinstance(node, (FilterNode, ProjectNode)):
            classes[node.id] = "map"
        elif isinstance(node, MapNode):
            if getattr(node, "aggregate", False):
                raise CanonicalCompileError(
                    "cross-row aggregation maps have no additive provenance "
                    "polynomial (each output cell depends on every input "
                    "row); exact valuation would silently mis-attribute — "
                    "use method='knn' or method='shapley_mc' instead",
                    node=node,
                )
            classes[node.id] = "map"
        elif isinstance(node, JoinNode):
            left = _reachable_sources(node.inputs[0], memo)
            right = _reachable_sources(node.inputs[1], memo)
            if source in left and source in right:
                raise CanonicalCompileError(
                    f"attribution source {source!r} reaches both join "
                    "inputs, so output provenance polynomials are "
                    "conjunctions of source variables instead of single "
                    "variables; the grouped KNN game is no longer additive "
                    "over source rows",
                    node=node,
                )
            classes[node.id] = "fork" if source in right else "join"
        elif isinstance(node, EncodeNode):
            classes[node.id] = "estimator"
        else:
            raise CanonicalCompileError(
                f"operator kind {node.kind!r} is not in the canonical "
                "map/fork/join algebra",
                node=node,
            )
    return classes


def infer_attribution_source(result: PipelineResult) -> str:
    """The source table per-row importance should land on, when unambiguous.

    Candidates are sources whose tuples map 1:1 onto output rows (side
    tables feed many outputs from few tuples, so they drop out); the tie
    break prefers the *driving* table of a left-deep pipeline — the
    leftmost source reachable from the sink.
    """
    candidates = sorted(result.provenance.sources())
    unique = []
    for name in candidates:
        try:
            ids = result.provenance.source_row_ids(name)
        except ValueError:
            continue
        if len(np.unique(ids)) == len(ids):
            unique.append(name)
    node = result.sink
    while node.inputs:
        node = node.inputs[0]
    leftmost = getattr(node, "name", None)
    if leftmost in unique:
        return leftmost
    if len(unique) == 1:
        return unique[0]
    raise ValueError(
        f"cannot infer attribution source automatically from {unique}; "
        "pass source= explicitly"
    )


@dataclass
class CanonicalPipeline:
    """A pipeline compiled to canonical provenance form.

    Attributes
    ----------
    source:
        The attribution source the provenance polynomials range over.
    form:
        ``"map"`` when every source row feeds at most one encoded row
        (identity, filter, row-wise map, and driving-side joins), or
        ``"fork"`` when some source row fans out to several encoded rows
        (side-table attribution, duplicate join keys).
    node_classes:
        ``node id -> class`` from :func:`classify_nodes`.
    player_row_ids:
        Source row ids with at least one surviving encoded row, sorted
        ascending — the players of the grouped KNN game.
    groups:
        Per player, the encoded output positions its provenance
        polynomial covers (``groups[p]`` are the candidates source row
        ``player_row_ids[p]`` contributes).
    player_of_output:
        Inverse mapping: player index of each encoded output row.
    fingerprint:
        SHA-256 over the canonical structure (source, form, node class
        sequence, and the full group table) — recorded in the run ledger
        so two runs compiling to different forms are distinguishable.
    """

    source: str
    form: str
    node_classes: dict[int, str]
    player_row_ids: np.ndarray
    groups: list[np.ndarray]
    player_of_output: np.ndarray
    n_output_rows: int
    fingerprint: str = field(default="")

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = self._compute_fingerprint()

    @property
    def n_players(self) -> int:
        return len(self.player_row_ids)

    def group_for(self, row_id: int) -> np.ndarray:
        """Encoded output positions of one source row (empty if filtered)."""
        pos = np.searchsorted(self.player_row_ids, int(row_id))
        if pos < len(self.player_row_ids) and self.player_row_ids[pos] == row_id:
            return self.groups[int(pos)]
        return np.empty(0, dtype=np.int64)

    def polynomials(self, limit: int | None = None) -> list[str]:
        """Readable additive provenance polynomials, one per output row."""
        rows = range(self.n_output_rows if limit is None else min(limit, self.n_output_rows))
        return [
            f"out[{i}] = x_{self.source}[{int(self.player_row_ids[self.player_of_output[i]])}]"
            for i in rows
        ]

    def validate(self, provenance: Provenance) -> None:
        """Round-trip check: the compiled groups agree with provenance.

        Every encoded row must map (through ``player_of_output``) to
        exactly the attribution-source row its why-provenance reports,
        and every group must list exactly the outputs provenance says its
        source row produced. Raises ``AssertionError`` on any mismatch —
        the compiler's own property test, also exercised by hypothesis.
        """
        if len(provenance) != self.n_output_rows:
            raise AssertionError(
                f"provenance covers {len(provenance)} rows, compiled form "
                f"{self.n_output_rows}"
            )
        for i, row in enumerate(provenance.tuples):
            wanted = {rid for name, rid in row if name == self.source}
            got = {int(self.player_row_ids[self.player_of_output[i]])}
            if wanted != got:
                raise AssertionError(
                    f"output row {i}: compiled polynomial covers {got}, "
                    f"provenance reports {wanted}"
                )
        covered = np.concatenate(self.groups) if self.groups else np.empty(0, np.int64)
        if len(np.unique(covered)) != self.n_output_rows:
            raise AssertionError("groups do not partition the output rows")

    def _compute_fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(f"canonical/v1|{self.source}|{self.form}|".encode())
        digest.update(
            ",".join(self.node_classes[k] for k in sorted(self.node_classes)).encode()
        )
        for rid, group in zip(self.player_row_ids.tolist(), self.groups):
            digest.update(f"|{rid}:{','.join(map(str, group.tolist()))}".encode())
        return digest.hexdigest()

    def stats(self) -> dict[str, Any]:
        sizes = np.asarray([len(g) for g in self.groups], dtype=np.int64)
        return {
            "source": self.source,
            "form": self.form,
            "n_players": self.n_players,
            "n_output_rows": self.n_output_rows,
            "max_group_size": int(sizes.max()) if len(sizes) else 0,
            "fingerprint": self.fingerprint,
        }


def compile_pipeline(
    result: PipelineResult,
    source: str | None = None,
    ledger: Any = None,
) -> CanonicalPipeline:
    """Compile an executed pipeline into canonical provenance form.

    Parameters
    ----------
    result:
        A provenance-carrying run (from :func:`repro.pipeline.execute`).
    source:
        Attribution source; inferred via :func:`infer_attribution_source`
        when omitted.
    ledger:
        Optional :class:`~repro.obs.ledger.RunLedger`; when given, a
        ``canonical_compile`` event carrying the compile fingerprint and
        form statistics is appended.

    Raises
    ------
    CanonicalCompileError
        For non-compilable constructs (see :func:`classify_nodes`) and
        for output rows whose polynomial over the attribution source is
        not a single variable — zero tuples (the row is a constant the
        grouped game cannot credit) or several (a conjunction).
    """
    if source is None:
        source = infer_attribution_source(result)
    if len(result.provenance) == 0:
        if _obs.enabled():
            _obs_metrics.counter("canonical.rejected").inc()
        raise CanonicalCompileError(
            "pipeline produced no output rows; the grouped game has no "
            "candidates to value (every filter predicate eliminated the "
            "training set)"
        )
    started = time.perf_counter()
    with _obs.span(
        "pipeline.canonical.compile",
        source=source,
        n_output_rows=len(result.provenance),
    ) as sp:
        try:
            classes = classify_nodes(result.sink, source)
            joins = {
                node.id: node
                for node in result.sink.plan.topological_order(result.sink)
                if isinstance(node, JoinNode)
            }
            by_row_id: dict[int, list[int]] = {}
            for i, row in enumerate(result.provenance.tuples):
                rids = sorted(rid for name, rid in row if name == source)
                if len(rids) == 0:
                    fork_node = next(
                        (n for n in joins.values() if classes.get(n.id) == "fork"),
                        None,
                    )
                    raise CanonicalCompileError(
                        f"output row {i} carries no provenance from "
                        f"{source!r}; its polynomial is a constant the "
                        "grouped game cannot credit (an unmatched left-join "
                        "row when attributing to the side table)",
                        node=fork_node,
                    )
                if len(rids) > 1:  # pragma: no cover - caught statically
                    raise CanonicalCompileError(
                        f"output row {i} descends from {len(rids)} tuples of "
                        f"{source!r}; its polynomial is a conjunction"
                    )
                by_row_id.setdefault(rids[0], []).append(i)
        except CanonicalCompileError:
            if _obs.enabled():
                _obs_metrics.counter("canonical.rejected").inc()
            raise

        player_row_ids = np.asarray(sorted(by_row_id), dtype=np.int64)
        groups = [
            np.asarray(by_row_id[int(rid)], dtype=np.int64)
            for rid in player_row_ids
        ]
        player_of_output = np.empty(len(result.provenance), dtype=np.int64)
        for p, group in enumerate(groups):
            player_of_output[group] = p
        form = "fork" if any(len(g) > 1 for g in groups) else "map"
        compiled = CanonicalPipeline(
            source=source,
            form=form,
            node_classes=classes,
            player_row_ids=player_row_ids,
            groups=groups,
            player_of_output=player_of_output,
            n_output_rows=len(result.provenance),
        )
        sp.set(form=form, n_players=compiled.n_players,
               fingerprint=compiled.fingerprint[:12])
        if _obs.enabled():
            _obs_metrics.counter("canonical.compiled").inc()
    if ledger is not None:
        ledger.record_event(
            "canonical_compile",
            config={"source": source},
            stats=compiled.stats(),
            wall_time_s=time.perf_counter() - started,
        )
    return compiled
