"""Unit tests for the offline text features."""

import numpy as np
import pytest

from repro.text import (
    HashingVectorizer,
    NEGATIVE_WORDS,
    POSITIVE_WORDS,
    SentenceBertTransformer,
    SentimentLexicon,
    TextEmbedder,
    stable_hash,
)


class TestLexicon:
    def test_tokenize_lowercases_and_strips(self):
        assert SentimentLexicon.tokenize("Hello, World!") == ["hello", "world"]

    def test_tokenize_empty(self):
        assert SentimentLexicon.tokenize("... 123 !") == []

    def test_counts(self):
        lex = SentimentLexicon()
        pos, neg, hedge = lex.counts("an outstanding but careless report, sometimes")
        assert (pos, neg, hedge) == (1, 1, 1)

    def test_polarity_positive_text(self):
        assert SentimentLexicon().polarity("outstanding excellent work") == 1.0

    def test_polarity_neutral_is_zero(self):
        assert SentimentLexicon().polarity("the cat sat on the mat") == 0.0

    def test_word_banks_disjoint(self):
        assert POSITIVE_WORDS & NEGATIVE_WORDS == frozenset()


class TestHashing:
    def test_stable_hash_deterministic(self):
        assert stable_hash("token") == stable_hash("token")

    def test_stable_hash_seed_changes_value(self):
        assert stable_hash("token", seed=0) != stable_hash("token", seed=1)

    def test_vector_dimensionality(self):
        vec = HashingVectorizer(n_features=32).transform_one("a small text")
        assert vec.shape == (32,)

    def test_vectors_normalised(self):
        vec = HashingVectorizer(n_features=64).transform_one("some words here")
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_empty_text_is_zero_vector(self):
        assert np.allclose(HashingVectorizer().transform_one(""), 0.0)

    def test_same_text_same_vector(self):
        hv = HashingVectorizer()
        assert np.allclose(hv.transform_one("abc def"), hv.transform_one("abc def"))

    def test_different_texts_differ(self):
        hv = HashingVectorizer(n_features=256)
        a = hv.transform_one("completely different words entirely")
        b = hv.transform_one("nothing shared between these texts")
        assert not np.allclose(a, b)

    def test_batch_transform_shape(self):
        out = HashingVectorizer(n_features=16).transform(["a", "b c"])
        assert out.shape == (2, 16)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            HashingVectorizer(n_features=0)
        with pytest.raises(ValueError):
            HashingVectorizer(ngram_range=(2, 1))


class TestEmbedder:
    def test_output_dim(self):
        emb = TextEmbedder(n_features=32)
        assert emb.embed_one("hello").shape == (36,)
        assert emb.output_dim == 36

    def test_missing_text_embeds_to_zero(self):
        emb = TextEmbedder()
        assert np.allclose(emb.embed_one(None), 0.0)
        assert np.allclose(emb.embed_one("   "), 0.0)

    def test_sentiment_dimensions_reflect_polarity(self):
        emb = TextEmbedder(n_features=8)
        positive = emb.embed_one("outstanding excellent meticulous work")
        negative = emb.embed_one("careless negligent troubling conduct")
        # dim -4 = positive rate, dim -3 = negative rate
        assert positive[-4] > positive[-3]
        assert negative[-3] > negative[-4]

    def test_transform_accepts_column(self, letters_small):
        train, __, __ = letters_small
        emb = TextEmbedder(n_features=16)
        out = emb.fit_transform(train.column("letter_text"))
        assert out.shape == (train.num_rows, 20)

    def test_sentencebert_alias(self):
        assert issubclass(SentenceBertTransformer, TextEmbedder)

    def test_deterministic(self):
        a = TextEmbedder().embed_one("a stable embedding")
        b = TextEmbedder().embed_one("a stable embedding")
        assert np.allclose(a, b)

    def test_embeddings_separate_sentiment_linearly(self, letters_small):
        """The core requirement: sentiment must be learnable from embeddings."""
        from repro.learn import LogisticRegression

        train, valid, __ = letters_small
        emb = TextEmbedder(n_features=48)
        X = emb.fit_transform(train.column("letter_text"))
        y = np.asarray(train.column("sentiment").to_list())
        Xv = emb.transform(valid.column("letter_text"))
        yv = np.asarray(valid.column("sentiment").to_list())
        model = LogisticRegression().fit(X, y)
        assert model.score(Xv, yv) > 0.8
