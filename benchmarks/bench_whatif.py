"""Experiment — what-if analysis with shared execution (mlwhatif [23]).

Section 2.2 covers automated data-centric what-if analyses: evaluate many
pipeline variations (here: the sector filter and the imputation strategy)
without naively re-running the shared plan prefix. This bench runs a 6-way
what-if over the letters pipeline and reports per-variant validation
accuracy plus the measured operator-execution saving. Shape to reproduce:
results identical to independent execution, with strictly fewer operator
runs than the naive count.
"""

import numpy as np

from repro.datasets import generate_hiring_data
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    KNeighborsClassifier,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
    clone,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import PipelinePlan, WhatIfVariant, execute, run_what_if

SECTORS = ["healthcare", "finance", "retail"]
IMPUTERS = {"most_frequent": "most_frequent", "constant": "constant"}


def encoder(imputer_strategy: str):
    return ColumnTransformer(
        [
            (Pipeline([CellImputer(imputer_strategy, fill_value="none"),
                       OneHotEncoder()]), "degree"),
            (StandardScaler(), ["age", "employer_rating"]),
        ]
    )


def run_analysis() -> dict:
    from repro.errors import inject_missing

    data = generate_hiring_data(n=700, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    # Missing degrees make the imputation-strategy dimension meaningful.
    train, __ = inject_missing(train, "degree", fraction=0.3, mechanism="MCAR", seed=3)
    sources = {"train_df": train, "jobdetail_df": data["jobdetail"]}
    valid_sources = {"train_df": valid, "jobdetail_df": data["jobdetail"]}

    plan = PipelinePlan()
    base = plan.source("train_df").join(plan.source("jobdetail_df"), on="job_id")
    variants = []
    for sector in SECTORS:
        filtered = base.filter(
            lambda df, s=sector: df["sector"] == s, f"sector == {sector!r}"
        )
        for imputer_name, strategy in IMPUTERS.items():
            variants.append(
                WhatIfVariant(
                    f"{sector} + impute:{imputer_name}",
                    filtered.encode(encoder(strategy), label_column="sentiment"),
                )
            )

    def evaluate(result):
        model = KNeighborsClassifier(5).fit(result.X, result.y)
        valid_result = execute(result.sink, valid_sources, fit=False)
        return model.score(valid_result.X, valid_result.y)

    report = run_what_if(variants, sources, evaluate)

    # Cross-check one variant against fully independent execution.
    reference = execute(variants[0].sink, sources, fit=True)
    identical = bool(np.allclose(reference.X, report.results[variants[0].name].X))
    return {"report": report, "identical": identical}


def test_whatif_shared_execution(benchmark, write_report):
    outcome = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    report = outcome["report"]
    write_report("whatif", report.render())

    assert outcome["identical"], "sharing must not change variant results"
    assert report.executed_operators < report.naive_operators
    assert report.sharing_ratio > 0.4  # 6 variants share a 3-op prefix
    assert len(report.scores) == len(SECTORS) * len(IMPUTERS)
