"""Corruption fuzz: every JSONL loader survives arbitrary on-disk damage.

Two families of fuzz, both seeded and deterministic:

* **Corrupted-line fuzz** — build a valid artifact for each loader (run
  ledger, job journal, trace export, flight dump, valuation checkpoint),
  apply random byte-level damage (bit flips, tail truncation, garbage
  splices, deleted ranges), and assert the loader (1) never raises,
  (2) accounts for every surviving record, and (3) quarantines damage to a
  sidecar that is itself a valid framed artifact.

* **Two-process concurrent-writer fuzz** — real subprocess writers
  appending to one shared file, with a reader polling mid-flight: the
  advisory lock plus copy-append-rename protocol must yield all records
  from both writers, no torn tail ever visible to the reader.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.importance import CheckpointStore
from repro.importance.checkpoint import CheckpointError
from repro.obs import flight as obs_flight
from repro.obs import trace as obs_trace
from repro.obs.atomicio import quarantine_path_for, read_jsonl
from repro.obs.flight import FlightRecorder, load_dump
from repro.obs.ledger import RunLedger
from repro.obs.trace import read_trace_export
from repro.service import JobJournal

SRC = Path(__file__).resolve().parents[2] / "src"

N_TRIALS = 12


# -- artifact builders (one valid file per loader) ------------------------ #

def _build_ledger(path: Path) -> int:
    ledger = RunLedger(path)
    for i in range(8):
        ledger.record_event("valuation", config={"i": i}, run_id=f"run-{i}")
    return 8


def _build_journal(path: Path) -> int:
    journal = JobJournal(path)
    for i in range(4):
        journal.record("submitted", f"job-{i}", {"request": {"kind": "v"}})
        journal.record("completed", f"job-{i}")
    return 8


def _build_trace(path: Path) -> int:
    obs_trace.get_recorder().reset()  # singleton: drop prior trials' spans
    obs_trace.enable()
    with obs_trace.span("outer"):
        with obs_trace.span("inner", i=1):
            pass
        with obs_trace.span("inner", i=2):
            pass
    obs_trace.get_recorder().export_jsonl(path)
    return path.read_text().count("\n")  # header + spans


def _build_flight(path: Path) -> int:
    rec = FlightRecorder()
    for i in range(6):
        rec.record("event", i=i)
    rec.dump(path, reason="fuzz")
    return 1 + 6  # header + events


def _load_ledger(path: Path):
    ledger = RunLedger(path)
    records = ledger.load()
    return len(records), ledger.last_load_report


def _load_journal(path: Path):
    journal = JobJournal(path)
    events = journal.events()
    journal.replay()
    journal.in_flight()
    return len(events), journal.last_load_report


def _load_trace(path: Path):
    header, spans = read_trace_export(path)
    return (1 if header else 0) + len(spans), None


def _load_flight(path: Path):
    header, events = load_dump(path)
    return (1 if header else 0) + len(events), None


LOADERS = [
    pytest.param(_build_ledger, _load_ledger, id="ledger"),
    pytest.param(_build_journal, _load_journal, id="journal"),
    pytest.param(_build_trace, _load_trace, id="trace"),
    pytest.param(_build_flight, _load_flight, id="flight"),
]


# -- damage model --------------------------------------------------------- #

def _mutate(data: bytes, rng: np.random.Generator) -> bytes:
    """One random byte-level corruption; may compose over repeated calls."""
    if not data:
        return data
    op = int(rng.integers(4))
    if op == 0:  # flip bits in one byte
        pos = int(rng.integers(len(data)))
        flipped = data[pos] ^ int(rng.integers(1, 256))
        return data[:pos] + bytes([flipped]) + data[pos + 1:]
    if op == 1:  # truncate the tail (torn final write)
        return data[: int(rng.integers(len(data)))]
    if op == 2:  # splice a garbage line mid-file
        lines = data.split(b"\n")
        at = int(rng.integers(len(lines)))
        garbage = bytes(rng.integers(0, 256, size=int(rng.integers(1, 40))))
        lines.insert(at, garbage.replace(b"\n", b"?"))
        return b"\n".join(lines)
    start = int(rng.integers(len(data)))  # delete a range
    end = min(len(data), start + int(rng.integers(1, 64)))
    return data[:start] + data[end:]


class TestCorruptedLineFuzz:
    @pytest.mark.parametrize("build, load", LOADERS)
    def test_loader_survives_random_damage(self, build, load, tmp_path):
        for trial in range(N_TRIALS):
            rng = np.random.default_rng([11, trial])
            path = tmp_path / f"t{trial}" / "artifact.jsonl"
            path.parent.mkdir()
            n_written = build(path)
            pristine = path.read_bytes()
            n_lines = pristine.count(b"\n")
            assert n_lines == n_written  # builder sanity
            damaged = pristine
            for _ in range(int(rng.integers(1, 4))):
                damaged = _mutate(damaged, rng)
            path.write_bytes(damaged)

            n_loaded, report = load(path)  # invariant 1: never raises

            # Invariant 2: nothing unaccounted for. Damage can only lose
            # records, never invent them, and what the raw reader counts
            # must equal loaded + quarantined.
            assert n_loaded <= n_written
            if report is not None:
                assert report.n_loaded + report.n_quarantined <= max(
                    n_lines, damaged.count(b"\n") + 1
                )
                # Invariant 3: quarantined damage is evidenced in a
                # sidecar that is itself a valid framed artifact.
                if report.n_quarantined:
                    sidecar = quarantine_path_for(path)
                    assert sidecar.exists()
                    payloads, side_report = read_jsonl(
                        sidecar, quarantine=False
                    )
                    assert side_report.clean
                    assert all(
                        p["kind"] == "quarantined_record" for p in payloads
                    )

    @pytest.mark.parametrize("build, load", LOADERS)
    def test_loader_is_idempotent_on_damaged_input(self, build, load, tmp_path):
        rng = np.random.default_rng(13)
        path = tmp_path / "artifact.jsonl"
        build(path)
        data = path.read_bytes()
        for _ in range(3):
            data = _mutate(data, rng)
        path.write_bytes(data)
        first, _ = load(path)
        second, _ = load(path)  # re-load: same answer, no re-quarantine
        assert first == second

    def test_checkpoint_survives_random_damage(self, tmp_path):
        for trial in range(N_TRIALS):
            rng = np.random.default_rng([17, trial])
            ck = tmp_path / f"t{trial}" / "ck.json"
            ck.parent.mkdir()
            store = CheckpointStore(ck, keep_last=3)
            for wave in range(1, 4):
                store.save({"kind": "permutation", "completed": wave * 5})
            damaged = ck.read_bytes()
            for _ in range(int(rng.integers(1, 4))):
                damaged = _mutate(damaged, rng)
            ck.write_bytes(damaged)
            fresh = CheckpointStore(ck, keep_last=3)
            # Archives exist, so recovery must always produce a payload —
            # either the damaged primary still parses clean, or fallback
            # lands on a wave archive. CheckpointError would be a failure.
            payload = fresh.load()
            assert payload is not None
            assert payload["completed"] in (5, 10, 15)

    def test_checkpoint_with_no_archives_raises_only_checkpoint_error(
        self, tmp_path
    ):
        ck = tmp_path / "ck.json"
        store = CheckpointStore(ck)  # keep_last=None: no archives
        store.save({"kind": "permutation", "completed": 5})
        for trial in range(N_TRIALS):
            rng = np.random.default_rng([19, trial])
            data = store.path.read_bytes()
            for _ in range(int(rng.integers(1, 4))):
                data = _mutate(data, rng)
            ck.write_bytes(data)
            fresh = CheckpointStore(ck)
            try:
                fresh.load()  # clean parse is fine (mutation may be benign)
            except CheckpointError:
                pass  # the one documented unrecoverable signal
            # restore for the next trial
            store.save({"kind": "permutation", "completed": 5})


# -- two-process concurrent-writer fuzz ----------------------------------- #

_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.{module} import {cls}
writer = {cls}(sys.argv[1])
start, n = int(sys.argv[2]), int(sys.argv[3])
for i in range(start, start + n):
    {append}
"""

LEDGER_WRITER = _WRITER.format(
    src=str(SRC),
    module="obs.ledger",
    cls="RunLedger",
    append=(
        'writer.record_event("valuation", config={"i": i}, '
        'run_id=f"run-{i}")'
    ),
)

JOURNAL_WRITER = _WRITER.format(
    src=str(SRC),
    module="service",
    cls="JobJournal",
    append='writer.record("submitted", f"job-{i}")',
)


def _spawn(script: str, *args) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(script),
         *[str(a) for a in args]],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


class TestConcurrentWriterFuzz:
    N_PER_WRITER = 12

    def _run_pair(self, script, path, loader):
        n = self.N_PER_WRITER
        first = _spawn(script, path, 0, n)
        second = _spawn(script, path, n, n)
        # Reader polls mid-flight: the torn-tail fuzz. Atomic publication
        # means a concurrent load never sees a partial record.
        while first.poll() is None or second.poll() is None:
            _, report = loader(path)
            if report is not None:
                assert report.n_quarantined == 0
        for proc in (first, second):
            _, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err.decode()

    def test_ledger_concurrent_appends_all_survive(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        self._run_pair(LEDGER_WRITER, path, _load_ledger)
        ledger = RunLedger(path)
        run_ids = {record.run_id for record in ledger.load()}
        assert run_ids == {f"run-{i}" for i in range(2 * self.N_PER_WRITER)}
        assert ledger.last_load_report.clean
        assert not quarantine_path_for(path).exists()

    def test_journal_concurrent_appends_all_survive(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._run_pair(JOURNAL_WRITER, path, _load_journal)
        journal = JobJournal(path)
        job_ids = {e["job_id"] for e in journal.events()}
        assert job_ids == {f"job-{i}" for i in range(2 * self.N_PER_WRITER)}
        assert journal.last_load_report.clean
