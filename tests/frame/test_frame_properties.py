"""Property-based tests for the DataFrame relational operators.

Joins, filters, and group-bys are checked against naive reference
implementations over hypothesis-generated inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame, from_csv_string, to_csv_string

keys = st.sampled_from(["a", "b", "c", "d"])
key_lists = st.lists(keys, min_size=1, max_size=12)
float_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=12
)


@given(left_keys=key_lists, right_keys=st.lists(keys, min_size=1, max_size=6, unique=True))
@settings(max_examples=60, deadline=None)
def test_inner_join_matches_reference(left_keys, right_keys):
    left = DataFrame({"k": left_keys, "v": list(range(len(left_keys)))})
    right = DataFrame({"k": right_keys, "w": list(range(len(right_keys)))})
    joined = left.join(right, on="k", how="inner")
    lookup = {k: i for i, k in enumerate(right_keys)}
    expected = [(k, v, lookup[k]) for k, v in zip(left_keys, range(len(left_keys))) if k in lookup]
    got = [(r["k"], r["v"], r["w"]) for r in joined.to_rows()]
    assert got == expected


@given(left_keys=key_lists, right_keys=st.lists(keys, min_size=1, max_size=6, unique=True))
@settings(max_examples=60, deadline=None)
def test_left_join_row_count_and_ids(left_keys, right_keys):
    left = DataFrame({"k": left_keys})
    right = DataFrame({"k": right_keys, "w": list(range(len(right_keys)))})
    joined = left.join(right, on="k", how="left")
    assert joined.num_rows == left.num_rows
    assert joined.row_ids.tolist() == left.row_ids.tolist()


@given(values=float_lists, threshold=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_filter_matches_reference(values, threshold):
    df = DataFrame({"v": values})
    kept = df[df["v"] > threshold]
    expected = [v for v in values if v > threshold]
    assert kept["v"].to_list() == expected


@given(values=float_lists)
@settings(max_examples=60, deadline=None)
def test_sort_is_monotone_and_permutation(values):
    df = DataFrame({"v": values})
    out = df.sort_values("v")["v"].to_list()
    assert sorted(values) == sorted(out)
    assert all(out[i] <= out[i + 1] for i in range(len(out) - 1))


@given(groups=key_lists)
@settings(max_examples=60, deadline=None)
def test_groupby_sizes_sum_to_total(groups):
    df = DataFrame({"g": groups})
    sizes = df.groupby("g").size()
    assert sum(r["size"] for r in sizes.to_rows()) == len(groups)


@given(values=float_lists, groups=key_lists)
@settings(max_examples=60, deadline=None)
def test_groupby_mean_matches_reference(values, groups):
    n = min(len(values), len(groups))
    df = DataFrame({"g": groups[:n], "v": values[:n]})
    out = df.groupby("g").agg({"v": "mean"})
    reference: dict = {}
    for g, v in zip(groups[:n], values[:n]):
        reference.setdefault(g, []).append(v)
    for row in out.to_rows():
        assert np.isclose(row["v_mean"], np.mean(reference[row["g"]]))


@given(
    ints=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=10),
    # Letters only, excluding the boolean literals: CSV type inference is
    # inherently lossy for strings that *look* numeric or boolean ("0" comes
    # back as the int 0, "False" as a bool) — the standard behaviour of
    # untyped CSV and out of scope for this property.
    strings=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll")), max_size=8
        ).filter(lambda s: s not in ("True", "False")),
        min_size=1,
        max_size=10,
    ),
)
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_property(ints, strings):
    n = min(len(ints), len(strings))
    df = DataFrame({"i": ints[:n], "s": strings[:n]})
    restored = from_csv_string(to_csv_string(df))
    assert restored["i"].to_list() == df["i"].to_list()
    # Empty strings round-trip as missing — the documented CSV convention.
    expected = [None if s == "" else s for s in df["s"].to_list()]
    assert restored["s"].to_list() == expected
