"""Simple numeric dataset generators for tests and benchmarks.

These provide controlled, fast-to-train settings for measuring the shape of
each method's behaviour: importance methods on ``make_classification``,
fairness debugging on ``make_biased_hiring``, and uncertainty propagation on
small regression problems.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame

__all__ = [
    "make_blobs",
    "make_classification",
    "make_moons",
    "make_regression",
    "make_biased_hiring",
]


def make_blobs(
    n: int = 200,
    centers: int = 2,
    n_features: int = 2,
    spread: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs around random centres; labels are the blob index."""
    rng = np.random.default_rng(seed)
    centre_points = rng.uniform(-8.0, 8.0, size=(centers, n_features))
    labels = rng.integers(0, centers, size=n)
    X = centre_points[labels] + rng.normal(scale=spread, size=(n, n_features))
    return X, labels


def make_classification(
    n: int = 300,
    n_features: int = 5,
    n_informative: int = 3,
    noise: float = 0.5,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Binary labels from a random linear rule on informative features."""
    if n_informative > n_features:
        raise ValueError("n_informative cannot exceed n_features")
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    w = np.zeros(n_features)
    w[:n_informative] = rng.uniform(0.8, 2.0, size=n_informative) * rng.choice(
        [-1.0, 1.0], size=n_informative
    )
    scores = X @ w + noise * rng.normal(size=n)
    return X, (scores > 0).astype(int)


def make_moons(n: int = 200, noise: float = 0.15, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half circles (non-linear decision boundary)."""
    rng = np.random.default_rng(seed)
    n_a = n // 2
    n_b = n - n_a
    theta_a = rng.uniform(0, np.pi, size=n_a)
    theta_b = rng.uniform(0, np.pi, size=n_b)
    a = np.column_stack([np.cos(theta_a), np.sin(theta_a)])
    b = np.column_stack([1.0 - np.cos(theta_b), 0.5 - np.sin(theta_b)])
    X = np.vstack([a, b]) + rng.normal(scale=noise, size=(n, 2))
    y = np.concatenate([np.zeros(n_a, dtype=int), np.ones(n_b, dtype=int)])
    order = rng.permutation(n)
    return X[order], y[order]


def make_regression(
    n: int = 200, n_features: int = 4, noise: float = 0.3, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linear regression data; returns (X, y, true_weights)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    w = rng.uniform(-2.0, 2.0, size=n_features)
    y = X @ w + noise * rng.normal(size=n)
    return X, y, w


def make_biased_hiring(
    n: int = 600, bias_strength: float = 0.35, seed: int = 0
) -> DataFrame:
    """A hiring dataset with label bias against one group.

    Ground truth: the hiring decision depends only on two qualification
    scores. A ``bias_strength`` fraction of qualified group-B applicants then
    has its label flipped to "no" — the programmable label bias that Gopher-
    style fairness debugging should trace back to those rows. The pre-flip
    label is kept in ``true_hired`` so detection quality is measurable.
    """
    rng = np.random.default_rng(seed)
    group = rng.choice(["A", "B"], size=n, p=[0.6, 0.4])
    skill = rng.normal(size=n)
    experience = rng.normal(size=n)
    qualified = (0.9 * skill + 0.7 * experience + 0.2 * rng.normal(size=n)) > 0
    hired = qualified.copy()
    flipped = np.zeros(n, dtype=bool)
    targets = np.flatnonzero((group == "B") & qualified)
    n_flip = int(round(bias_strength * len(targets)))
    if n_flip:
        chosen = rng.choice(targets, size=n_flip, replace=False)
        hired[chosen] = False
        flipped[chosen] = True
    return DataFrame(
        {
            "group": group.astype(str),
            "skill": skill.round(4),
            "experience": experience.round(4),
            "hired": np.where(hired, "yes", "no").astype(str),
            "true_hired": np.where(qualified, "yes", "no").astype(str),
            "bias_flipped": flipped,
        }
    )
