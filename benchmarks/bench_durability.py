"""Durable state plane: what does the checksummed envelope cost?

Three questions with numbers attached:

1. **Append overhead.** Every JSONL artifact line is now CRC32-framed
   (``{"_env": 2, "crc": ..., "data": ...}``). The durability contract
   budgets **< 5%** for the framing itself — the checksum must be in the
   noise next to the fsync it protects. And it literally is in the noise:
   a durable append is fsync/metadata-bound at ~2 ms with heavy-tailed
   latency, while framing adds single-digit microseconds — so a gate on
   the stochastic end-to-end ratio would be a coin flip. The gated number
   is instead *decomposed into its deterministic components*, each
   measured where it is measurable: the CPU delta of ``frame_line`` vs.
   ``canonical_json`` (many-rep timing) plus the envelope's extra bytes
   priced at the measured copy throughput, over the measured median
   durable append. Interleaved end-to-end medians for both variants are
   reported alongside as the (noisy) sanity check.
2. **Validated-load overhead.** ``read_jsonl`` (CRC check per line) vs. a
   raw ``json.loads`` loop over the identical un-framed file.
3. **Recovery cost.** A corrupted artifact (5% of lines damaged) is loaded
   once with quarantine enabled — the worst-case path: every bad line is
   CRC-rejected, deduped, and copied to the ``.corrupt`` sidecar — and the
   accounting must balance: loaded + quarantined == total.

Environment knobs (CI smoke sizes): ``REPRO_BENCH_DUR_N`` (pre-seeded
records), ``REPRO_BENCH_DUR_APPENDS`` (timed appends per round),
``REPRO_BENCH_DUR_ROUNDS`` (sampling rounds).
"""

from __future__ import annotations

import io
import json
import os
import shutil
import time
from pathlib import Path

import numpy as np

from repro.obs.atomicio import (
    atomic_append_line,
    atomic_writer,
    canonical_json,
    frame_line,
    read_jsonl,
)
from repro.viz import format_records

N_SEED = int(os.environ.get("REPRO_BENCH_DUR_N", "400"))
N_APPENDS = int(os.environ.get("REPRO_BENCH_DUR_APPENDS", "25"))
ROUNDS = int(os.environ.get("REPRO_BENCH_DUR_ROUNDS", "5"))
CORRUPT_FRAC = 0.05


def _payload(i: int) -> dict:
    """One representative artifact record (~700 canonical bytes).

    Sized like the real traffic — a run-ledger record with its config,
    per-node stats, and metrics — not a toy line: the envelope is a fixed
    ~35 bytes, so the overhead ratio is only meaningful against records
    the shape the state plane actually persists.
    """
    return {
        "schema_version": 1,
        "ts": 1700000000.0 + i,
        "event": "progress",
        "job_id": f"job-{i % 7}",
        "run_id": f"run-2026-08-08-{i:06d}",
        "payload": {
            "completed": i,
            "target": N_SEED,
            "seq": i,
            "config": {
                "n_permutations": 200,
                "seed": 11,
                "check_every": 8,
                "truncation_tolerance": 0.001,
                "convergence_tolerance": 0.0,
                "antithetic": True,
                "weights": "shapley",
                "n_workers": 4,
            },
            "node_stats": [
                {
                    "node": f"clean[{k}]",
                    "rows_in": 4096 + i,
                    "rows_out": 4032 - k,
                    "null_rate": 0.0125,
                    "wall_s": 0.0042,
                }
                for k in range(4)
            ],
            "metrics": {
                "queue_depth": 3,
                "attempt": 1,
                "heartbeat_s": 0.25,
                "rss_mb": 412.5,
            },
        },
    }


def _seed_file(path: Path, framed: bool, n: int) -> None:
    encode = frame_line if framed else canonical_json
    with atomic_writer(path) as handle:
        for i in range(n):
            handle.write(encode(_payload(i)) + "\n")


def _framing_components() -> dict:
    """Deterministic framing costs, measured where they are measurable."""
    payloads = [_payload(i) for i in range(50)]
    reps = 40
    t0 = time.perf_counter()
    for _ in range(reps):
        for p in payloads:
            canonical_json(p)
    t1 = time.perf_counter()
    for _ in range(reps):
        for p in payloads:
            frame_line(p)
    t2 = time.perf_counter()
    n = reps * len(payloads)
    cpu_delta_s = max(0.0, ((t2 - t1) - (t1 - t0)) / n)
    # Price the envelope's extra bytes at the measured copy throughput of
    # the append path (shutil.copyfileobj, same chunk size).
    blob = b"x" * (8 << 20)
    with io.BytesIO(blob) as src, open(os.devnull, "wb") as dst:
        t0 = time.perf_counter()
        shutil.copyfileobj(src, dst, 1 << 20)
        copy_throughput = len(blob) / (time.perf_counter() - t0)
    envelope_bytes = len(frame_line(payloads[0])) - len(
        canonical_json(payloads[0])
    )
    # An append copies the whole pre-seeded file: ~N_SEED envelopes' worth
    # of extra bytes ride every framed copy.
    copy_delta_s = envelope_bytes * N_SEED / copy_throughput
    return {
        "cpu_delta_us": round(1e6 * cpu_delta_s, 3),
        "envelope_bytes": int(envelope_bytes),
        "copy_throughput_gb_s": round(copy_throughput / 1e9, 2),
        "copy_delta_us": round(1e6 * copy_delta_s, 3),
        "framing_cost_us": round(1e6 * (cpu_delta_s + copy_delta_s), 3),
    }


def run_durability(workdir: Path) -> dict:
    # -- 1. framed vs un-framed append ---------------------------------- #
    # End-to-end medians, interleaved with alternating order so latency
    # drift and position bias cancel. These are the sanity check; the
    # gated overhead comes from the component decomposition below.
    framed_path = workdir / "append-framed.jsonl"
    raw_path = workdir / "append-raw.jsonl"
    _seed_file(framed_path, True, N_SEED)
    _seed_file(raw_path, False, N_SEED)
    framed_samples, raw_samples = [], []
    for i in range(N_APPENDS * ROUNDS):
        payload = _payload(N_SEED + i)
        framed_line = frame_line(payload)
        raw_line = canonical_json(payload)
        order = (
            ((raw_path, raw_line, raw_samples),
             (framed_path, framed_line, framed_samples))
            if i % 2 == 0
            else ((framed_path, framed_line, framed_samples),
                  (raw_path, raw_line, raw_samples))
        )
        for target, line, bucket in order:
            t0 = time.perf_counter()
            atomic_append_line(target, line)
            bucket.append(time.perf_counter() - t0)
    median_framed = float(np.median(framed_samples))
    median_raw = float(np.median(raw_samples))
    components = _framing_components()
    append_overhead_pct = 100.0 * (
        components["framing_cost_us"] / (1e6 * median_raw)
    )

    # -- 2. validated load vs raw json.loads ---------------------------- #
    framed_path = workdir / "load-framed.jsonl"
    raw_path = workdir / "load-raw.jsonl"
    _seed_file(framed_path, True, N_SEED)
    _seed_file(raw_path, False, N_SEED)
    load_framed_s = load_raw_s = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        payloads, report = read_jsonl(framed_path, artifact="bench")
        load_framed_s = min(load_framed_s, time.perf_counter() - t0)
        assert report.clean and len(payloads) == N_SEED
        t0 = time.perf_counter()
        with open(raw_path, encoding="utf-8") as handle:
            raw = [json.loads(line) for line in handle]
        load_raw_s = min(load_raw_s, time.perf_counter() - t0)
        assert len(raw) == N_SEED

    # -- 3. recovery: quarantine a 5%-corrupted artifact ---------------- #
    corrupt_path = workdir / "recovery.jsonl"
    _seed_file(corrupt_path, True, N_SEED)
    rng = np.random.default_rng(23)
    lines = corrupt_path.read_text().splitlines()
    n_corrupt = max(1, int(CORRUPT_FRAC * len(lines)))
    for idx in rng.choice(len(lines), size=n_corrupt, replace=False):
        lines[idx] = lines[idx][: max(1, len(lines[idx]) // 2)]  # torn
    corrupt_path.write_text("\n".join(lines) + "\n")
    t0 = time.perf_counter()
    payloads, report = read_jsonl(corrupt_path, artifact="bench-recovery")
    recovery_s = time.perf_counter() - t0
    assert report.n_loaded + report.n_quarantined == N_SEED
    assert report.n_quarantined == n_corrupt

    return {
        "n_seed_records": N_SEED,
        "n_appends": N_APPENDS,
        "rounds": ROUNDS,
        "append": {
            "framed_median_us": round(1e6 * median_framed, 1),
            "raw_median_us": round(1e6 * median_raw, 1),
            "n_samples": N_APPENDS * ROUNDS,
            "components": components,
            "overhead_pct": round(append_overhead_pct, 3),
            "budget_pct": 5.0,
        },
        "load": {
            "validated_s": round(load_framed_s, 5),
            "raw_s": round(load_raw_s, 5),
            "validated_us_per_record": round(1e6 * load_framed_s / N_SEED, 2),
            "raw_us_per_record": round(1e6 * load_raw_s / N_SEED, 2),
        },
        "recovery": {
            "n_records": N_SEED,
            "n_corrupted": int(n_corrupt),
            "n_loaded": report.n_loaded,
            "n_quarantined": report.n_quarantined,
            "wall_s": round(recovery_s, 5),
            "records_per_s": round(N_SEED / recovery_s, 1),
        },
    }


def test_durability(benchmark, write_report, tmp_path):
    result = benchmark.pedantic(
        lambda: run_durability(tmp_path), rounds=1, iterations=1
    )
    append, load, recovery = (
        result["append"], result["load"], result["recovery"],
    )
    rows = [
        {
            "operation": "append (un-framed), median",
            "wall_us": append["raw_median_us"],
        },
        {
            "operation": "append (CRC-framed), median",
            "wall_us": append["framed_median_us"],
        },
        {
            "operation": f"load x{N_SEED} (raw json.loads)",
            "wall_us": round(1e6 * load["raw_s"], 1),
        },
        {
            "operation": f"load x{N_SEED} (validated read_jsonl)",
            "wall_us": round(1e6 * load["validated_s"], 1),
        },
        {
            "operation": (
                f"recovery load, {recovery['n_corrupted']} torn lines"
            ),
            "wall_us": round(1e6 * recovery["wall_s"], 1),
        },
    ]
    report = format_records(rows)
    comp = append["components"]
    report += (
        f"\n\nCRC framing append overhead: {append['overhead_pct']:+.2f}%"
        f" (budget < {append['budget_pct']:.0f}%):"
        f" {comp['cpu_delta_us']:.1f}us CPU"
        f" + {comp['copy_delta_us']:.1f}us copy"
        f" ({comp['envelope_bytes']}B envelope x {N_SEED} records"
        f" at {comp['copy_throughput_gb_s']:.1f} GB/s)"
        f" over a {append['raw_median_us']:.0f}us median durable append"
        f"\nvalidated load: {load['validated_us_per_record']:.1f} us/record"
        f" vs raw {load['raw_us_per_record']:.1f} us/record"
        f"\nrecovery: {recovery['n_quarantined']}/{recovery['n_records']}"
        f" lines quarantined at {recovery['records_per_s']:.0f} records/s"
    )
    write_report("durability", report, records=result)
    # The contract: checksummed persistence must be nearly free next to
    # the fsync-bound append protocol it rides on.
    assert append["overhead_pct"] < append["budget_pct"], (
        f"CRC framing overhead {append['overhead_pct']:.2f}% exceeds the "
        f"{append['budget_pct']:.0f}% budget"
    )
    assert recovery["n_loaded"] + recovery["n_quarantined"] == N_SEED
