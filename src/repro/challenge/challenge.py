"""The Data Debugging Challenge (Section 3.2 of the paper).

Participants receive a training set with *unknown* injected errors, a
classifier, and a validation set. They may submit a limited set of training
tuple ids to an oracle, which cleans exactly those tuples, retrains the
classifier, and reports the score on a **hidden** test set. A leaderboard
ranks submissions — this module is that entire game, in process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..cleaning.oracle import CleaningOracle
from ..datasets import load_recommendation_letters
from ..errors import (
    inject_label_errors,
    inject_missing,
    inject_outliers,
    merge_reports,
)
from ..frame import DataFrame
from ..learn.base import Estimator, clone
from ..learn.models.knn import KNeighborsClassifier
from ..text import TextEmbedder
from .leaderboard import Leaderboard

__all__ = ["DebuggingChallenge", "ChallengeSubmission"]


@dataclass
class ChallengeSubmission:
    """Outcome of one oracle consultation."""

    participant: str
    n_cleaned: int
    hidden_test_accuracy: float
    validation_accuracy: float


class DebuggingChallenge:
    """A self-contained instance of the hands-on challenge.

    Parameters
    ----------
    n:
        Scenario size (letters dataset).
    cleaning_budget:
        Total number of training tuples any single participant may clean.
    error_seed:
        Seed for the hidden error injection (participants don't know it).
    """

    def __init__(
        self,
        n: int = 600,
        cleaning_budget: int = 60,
        error_seed: int = 99,
        model: Estimator | None = None,
        embed_features: int = 48,
    ) -> None:
        train, valid, test = load_recommendation_letters(n=n, seed=error_seed + 1)
        self._clean_train = train
        self.valid = valid
        self._hidden_test = test
        self.cleaning_budget = int(cleaning_budget)
        # KNN is deliberately the challenge model: it is sensitive to label
        # noise, so prioritised cleaning visibly moves the hidden-test score
        # (a linear model would shrug off this noise level).
        self.model = model if model is not None else KNeighborsClassifier(5)
        self._embedder = TextEmbedder(n_features=embed_features).fit(None)

        # Hidden error cocktail: label flips dominate, plus missing ratings
        # and outlier ages — participants only see the corrupted result.
        dirty, label_report = inject_label_errors(
            train, "sentiment", fraction=0.18, seed=error_seed
        )
        dirty, missing_report = inject_missing(
            dirty, "employer_rating", fraction=0.08, mechanism="MCAR", seed=error_seed + 1
        )
        dirty, outlier_report = inject_outliers(
            dirty, "age", fraction=0.05, magnitude=6.0, seed=error_seed + 2
        )
        self.train = dirty
        self._error_report = merge_reports([label_report, missing_report, outlier_report])
        self._oracles: dict[str, CleaningOracle] = {}
        self._states: dict[str, DataFrame] = {}
        self.leaderboard = Leaderboard()
        self.baseline_accuracy = self._evaluate(self.train)[0]

    # ------------------------------------------------------------------
    def featurize(self, frame: DataFrame) -> np.ndarray:
        """The fixed featurisation every participant's model uses."""
        text = self._embedder.transform(frame.column("letter_text"))
        rating = frame.column("employer_rating").fillna(3.0).to_numpy().astype(float)
        age = frame.column("age").to_numpy().astype(float)
        return np.column_stack([text, rating, (age - 40.0) / 12.0])

    def _evaluate(self, train_frame: DataFrame) -> tuple[float, float]:
        """(hidden test accuracy, validation accuracy) of a retrained model."""
        y = np.asarray(train_frame.column("sentiment").to_list())
        fitted = clone(self.model).fit(self.featurize(train_frame), y)
        test_acc = float(
            fitted.score(
                self.featurize(self._hidden_test),
                np.asarray(self._hidden_test.column("sentiment").to_list()),
            )
        )
        valid_acc = float(
            fitted.score(
                self.featurize(self.valid),
                np.asarray(self.valid.column("sentiment").to_list()),
            )
        )
        return test_acc, valid_acc

    def remaining_budget(self, participant: str) -> int:
        oracle = self._oracles.get(participant)
        if oracle is None:
            return self.cleaning_budget
        return oracle.remaining if oracle.remaining is not None else self.cleaning_budget

    def submit(self, participant: str, row_ids: Iterable[int]) -> ChallengeSubmission:
        """Clean the given tuples (within budget), retrain, score, record.

        Cleaning is cumulative per participant across submissions, exactly
        like repeated oracle calls in the live session.
        """
        oracle = self._oracles.setdefault(
            participant, CleaningOracle(self._clean_train, budget=self.cleaning_budget)
        )
        state = self._states.get(participant, self.train)
        state = oracle.clean(state, row_ids)
        self._states[participant] = state
        test_acc, valid_acc = self._evaluate(state)
        submission = ChallengeSubmission(
            participant=participant,
            n_cleaned=oracle.spent,
            hidden_test_accuracy=test_acc,
            validation_accuracy=valid_acc,
        )
        self.leaderboard.record(
            participant, score=test_acc, detail={"n_cleaned": oracle.spent}
        )
        return submission

    # ------------------------------------------------------------------
    # Post-hoc analysis (organiser-side)
    # ------------------------------------------------------------------
    def reveal_errors(self) -> np.ndarray:
        """Ground-truth corrupted row ids (for analysis after the game)."""
        return self._error_report.row_ids

    def oracle_upper_bound(self) -> float:
        """Hidden-test accuracy if exactly the true errors were cleaned."""
        oracle = CleaningOracle(self._clean_train)
        repaired = oracle.clean(self.train, self.reveal_errors().tolist())
        return self._evaluate(repaired)[0]
