"""Typed columns with explicit missing-value masks.

A :class:`Column` is the unit of storage in :class:`repro.frame.DataFrame`.
It wraps a NumPy array of values plus a boolean mask marking missing cells.
Keeping the mask explicit (instead of relying on NaN) lets us represent
missing strings, integers, and booleans uniformly, which matters because the
error-injection and uncertainty modules need to reason about *which* cells
are missing regardless of dtype.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = ["Column"]

_FLOAT_KINDS = ("f",)
_INT_KINDS = ("i", "u")
_STRING_KINDS = ("U", "S", "O")


def _coerce_values(values: Any) -> tuple[np.ndarray, np.ndarray | None]:
    """Convert input into a 1-D array plus a missing mask for ``None`` cells."""
    none_mask: np.ndarray | None = None
    if isinstance(values, np.ndarray) and values.dtype.kind != "O":
        arr = values
    else:
        seq = list(values)
        if any(v is None for v in seq):
            # None placeholders mark missing cells regardless of dtype.
            none_mask = np.asarray([v is None for v in seq], dtype=bool)
            has_str = any(isinstance(v, str) for v in seq)
            if has_str:
                seq = ["" if v is None else v for v in seq]
            else:
                seq = [np.nan if v is None else v for v in seq]
        arr = np.asarray(seq)
    if arr.ndim != 1:
        raise ValueError(f"column values must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind == "O" and (
        arr.size == 0 or all(isinstance(v, str) for v in arr.tolist())
    ):
        arr = arr.astype(str)
    if (
        arr.size == 0
        and isinstance(values, np.ndarray)
        and values.dtype.kind == "O"
    ):
        # An empty object array is treated as an empty string column.
        arr = arr.astype(str)
    return arr, none_mask


def _infer_mask(values: np.ndarray, mask: Any) -> np.ndarray:
    """Build the missing mask, folding in NaNs for float columns."""
    if mask is None:
        out = np.zeros(len(values), dtype=bool)
    else:
        out = np.asarray(mask, dtype=bool).copy()
        if out.shape != (len(values),):
            raise ValueError(
                f"mask shape {out.shape} does not match values ({len(values)},)"
            )
    if values.dtype.kind in _FLOAT_KINDS:
        out |= np.isnan(values)
    return out


class Column:
    """A 1-D typed array with an explicit missing-value mask.

    Parameters
    ----------
    values:
        Array-like of cell values. ``None`` entries are treated as missing.
    mask:
        Optional boolean array; ``True`` marks a missing cell. NaNs in float
        data are always treated as missing regardless of the mask.
    """

    __slots__ = ("values", "mask")

    def __init__(self, values: Any, mask: Any = None) -> None:
        self.values, none_mask = _coerce_values(values)
        self.mask = _infer_mask(self.values, mask)
        if none_mask is not None:
            self.mask |= none_mask

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(str(v) for v in self.to_list()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column([{preview}{suffix}], dtype={self.dtype_kind})"

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def dtype_kind(self) -> str:
        """One of ``'float'``, ``'int'``, ``'bool'``, ``'string'``."""
        kind = self.values.dtype.kind
        if kind in _FLOAT_KINDS:
            return "float"
        if kind in _INT_KINDS:
            return "int"
        if kind == "b":
            return "bool"
        if kind in _STRING_KINDS:
            return "string"
        return kind

    @property
    def is_numeric(self) -> bool:
        return self.dtype_kind in ("float", "int", "bool")

    def copy(self) -> "Column":
        return Column(self.values.copy(), self.mask.copy())

    def to_list(self) -> list:
        """Cell values as a Python list with ``None`` for missing cells."""
        out: list = []
        for value, missing in zip(self.values.tolist(), self.mask.tolist()):
            out.append(None if missing else value)
        return out

    def to_numpy(self, fill: Any = None) -> np.ndarray:
        """Dense NumPy view; missing cells become ``fill`` (or NaN/'')."""
        arr = self.values.copy()
        if not self.mask.any():
            return arr
        if fill is None:
            fill = np.nan if self.dtype_kind in ("float", "int") else ""
        if self.dtype_kind == "int" and isinstance(fill, float) and np.isnan(fill):
            arr = arr.astype(float)
        arr[self.mask] = fill
        return arr

    # ------------------------------------------------------------------
    # Missing-value handling
    # ------------------------------------------------------------------
    def isnull(self) -> np.ndarray:
        return self.mask.copy()

    def notnull(self) -> np.ndarray:
        return ~self.mask

    def null_count(self) -> int:
        return int(self.mask.sum())

    def fillna(self, value: Any) -> "Column":
        """Return a copy with every missing cell replaced by ``value``."""
        arr = self.values.copy()
        if self.dtype_kind == "int" and isinstance(value, float):
            arr = arr.astype(float)
        arr[self.mask] = value
        return Column(arr, np.zeros(len(arr), dtype=bool))

    def dropna_indices(self) -> np.ndarray:
        """Positions of non-missing cells."""
        return np.flatnonzero(~self.mask)

    # ------------------------------------------------------------------
    # Selection and combination
    # ------------------------------------------------------------------
    def take(self, indices: Any) -> "Column":
        idx = np.asarray(indices, dtype=np.int64)
        return Column(self.values[idx], self.mask[idx])

    def filter(self, keep: Any) -> "Column":
        keep = np.asarray(keep, dtype=bool)
        return Column(self.values[keep], self.mask[keep])

    def set_values(self, positions: Any, values: Any) -> "Column":
        """Return a copy with cells at ``positions`` replaced (marked present)."""
        pos = np.asarray(positions, dtype=np.int64)
        new_values = np.asarray(values)
        mask = self.mask.copy()
        mask[pos] = False
        if self.values.dtype.kind in _STRING_KINDS:
            # Route through object dtype so longer replacement strings are
            # never truncated by fixed-width storage.
            arr = self.values.astype(object)
            arr[pos] = new_values
            return Column(arr.astype(str), mask)
        arr = self.values.copy()
        if arr.dtype.kind in _INT_KINDS and new_values.dtype.kind in _FLOAT_KINDS:
            arr = arr.astype(float)
        arr[pos] = new_values
        return Column(arr, mask)

    def set_missing(self, positions: Any) -> "Column":
        """Return a copy with cells at ``positions`` marked missing."""
        pos = np.asarray(positions, dtype=np.int64)
        mask = self.mask.copy()
        mask[pos] = True
        values = self.values
        if values.dtype.kind in _FLOAT_KINDS:
            values = values.copy()
            values[pos] = np.nan
        return Column(values, mask)

    @staticmethod
    def concat(columns: Sequence["Column"]) -> "Column":
        if not columns:
            raise ValueError("cannot concatenate zero columns")
        kinds = {c.dtype_kind for c in columns}
        if "string" in kinds and len(kinds) > 1:
            raise TypeError(f"cannot concatenate mixed column kinds: {kinds}")
        values = np.concatenate([c.values for c in columns])
        mask = np.concatenate([c.mask for c in columns])
        return Column(values, mask)

    # ------------------------------------------------------------------
    # Element-wise operations (missing cells propagate / compare False)
    # ------------------------------------------------------------------
    def map(self, func: Callable[[Any], Any]) -> "Column":
        """Apply a Python function to present cells; missing stays missing."""
        out = [None if m else func(v) for v, m in zip(self.to_list(), self.mask)]
        present = [v for v in out if v is not None]
        if present and all(isinstance(v, str) for v in present):
            values = np.asarray(["" if v is None else v for v in out], dtype=str)
        elif present and all(isinstance(v, bool) for v in present):
            values = np.asarray([bool(v) for v in out], dtype=bool)
        else:
            values = np.asarray(
                [np.nan if v is None else float(v) for v in out], dtype=float
            )
        return Column(values, self.mask.copy())

    def _binary_compare(self, other: Any, op: Callable) -> np.ndarray:
        if isinstance(other, Column):
            result = op(self.values, other.values)
            result = np.asarray(result, dtype=bool)
            result[self.mask | other.mask] = False
            return result
        result = np.asarray(op(self.values, other), dtype=bool)
        result[self.mask] = False
        return result

    def __eq__(self, other: Any) -> np.ndarray:  # type: ignore[override]
        return self._binary_compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> np.ndarray:  # type: ignore[override]
        return self._binary_compare(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> np.ndarray:
        return self._binary_compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> np.ndarray:
        return self._binary_compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> np.ndarray:
        return self._binary_compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> np.ndarray:
        return self._binary_compare(other, lambda a, b: a >= b)

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("Column is not hashable")

    def isin(self, values: Iterable[Any]) -> np.ndarray:
        allowed = set(values)
        result = np.asarray([v in allowed for v in self.values.tolist()], dtype=bool)
        result[self.mask] = False
        return result

    def _binary_arith(self, other: Any, op: Callable) -> "Column":
        if isinstance(other, Column):
            values = op(self.values.astype(float), other.values.astype(float))
            mask = self.mask | other.mask
        else:
            values = op(self.values.astype(float), other)
            mask = self.mask.copy()
        return Column(values, mask)

    def __add__(self, other: Any) -> "Column":
        return self._binary_arith(other, lambda a, b: a + b)

    def __sub__(self, other: Any) -> "Column":
        return self._binary_arith(other, lambda a, b: a - b)

    def __mul__(self, other: Any) -> "Column":
        return self._binary_arith(other, lambda a, b: a * b)

    def __truediv__(self, other: Any) -> "Column":
        return self._binary_arith(other, lambda a, b: a / b)

    # ------------------------------------------------------------------
    # Reductions (ignore missing cells)
    # ------------------------------------------------------------------
    def _present_float(self) -> np.ndarray:
        return self.values[~self.mask].astype(float)

    def sum(self) -> float:
        return float(self._present_float().sum()) if len(self) else 0.0

    def mean(self) -> float:
        present = self._present_float()
        if present.size == 0:
            return float("nan")
        return float(present.mean())

    def std(self) -> float:
        present = self._present_float()
        if present.size == 0:
            return float("nan")
        return float(present.std())

    def min(self) -> Any:
        present = self.values[~self.mask]
        if present.size == 0:
            return None
        if present.dtype.kind in _STRING_KINDS:
            return min(str(v) for v in present)
        return present.min().item()

    def max(self) -> Any:
        present = self.values[~self.mask]
        if present.size == 0:
            return None
        if present.dtype.kind in _STRING_KINDS:
            return max(str(v) for v in present)
        return present.max().item()

    def median(self) -> float:
        present = self._present_float()
        if present.size == 0:
            return float("nan")
        return float(np.median(present))

    def mode(self) -> Any:
        """Most frequent present value (ties broken by value order)."""
        present = self.values[~self.mask]
        if present.size == 0:
            return None
        uniques, counts = np.unique(present, return_counts=True)
        winner = uniques[np.argmax(counts)]
        return winner.item() if uniques.dtype.kind != "U" else str(winner)

    def unique(self) -> list:
        present = self.values[~self.mask]
        uniques = np.unique(present)
        if uniques.dtype.kind in _STRING_KINDS:
            return [str(u) for u in uniques]
        return [u.item() for u in uniques]

    def value_counts(self) -> dict:
        present = self.values[~self.mask]
        uniques, counts = np.unique(present, return_counts=True)
        keys = [str(u) if uniques.dtype.kind in _STRING_KINDS else u.item() for u in uniques]
        return dict(zip(keys, (int(c) for c in counts)))
