"""OpenMetrics exposition: rendering, escaping, and the validating parser."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.export import (
    CONTENT_TYPE,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("engine.cache.hits") == "engine_cache_hits"

    def test_forbidden_chars_replaced_and_digit_prefixed(self):
        assert sanitize_metric_name("9lives!") == "_9lives_"


class TestRender:
    def test_counter_renders_as_total_with_type_line(self):
        obs_metrics.counter("engine.evals").inc(7)
        text = render_openmetrics()
        assert "# TYPE engine_evals counter" in text
        assert "engine_evals_total 7" in text
        assert text.endswith("# EOF\n")

    def test_labeled_counter_renders_sorted_labels(self):
        obs_metrics.counter("job.terminal", tenant="acme", state="ok").inc()
        text = render_openmetrics()
        assert 'job_terminal_total{state="ok",tenant="acme"} 1' in text

    def test_histogram_renders_as_summary_with_quantiles(self):
        hist = obs_metrics.histogram("job.latency_s", tenant="a")
        for value in (0.1, 0.2, 0.3, 0.4):
            hist.observe(value)
        text = render_openmetrics()
        assert "# TYPE job_latency_s summary" in text
        assert 'job_latency_s{tenant="a",quantile="0.5"}' in text
        assert 'job_latency_s{tenant="a",quantile="0.95"}' in text
        assert 'job_latency_s{tenant="a",quantile="0.99"}' in text
        assert 'job_latency_s_count{tenant="a"} 4' in text
        assert 'job_latency_s_sum{tenant="a"} 1\n' in text

    def test_label_values_are_escaped(self):
        obs_metrics.counter("c", who='ev"il\\guy').inc()
        text = render_openmetrics()
        assert 'who="ev\\"il\\\\guy"' in text
        # and the escaped form survives a parse round-trip
        samples = parse_openmetrics(text)
        assert samples["c_total"][0]["labels"]["who"] == 'ev"il\\guy'

    def test_braces_in_label_values_round_trip(self):
        # A `}` inside a quoted label value must not terminate the label
        # block early on the way back in.
        obs_metrics.counter("c", shape="{a=1}").inc()
        samples = parse_openmetrics(render_openmetrics())
        assert samples["c_total"][0]["labels"]["shape"] == "{a=1}"

    def test_v1_histogram_snapshot_quantiles_recomputed_from_window(self):
        # Forward-compat: a snapshot without p50/p95/p99 keys (schema v1)
        # still gets quantile samples, recomputed from ``recent``.
        snap = {
            "h": {
                "type": "histogram",
                "count": 3,
                "sum": 6.0,
                "recent": [1.0, 2.0, 3.0],
            }
        }
        text = render_openmetrics(snap)
        assert 'h{quantile="0.5"} 2' in text

    def test_empty_snapshot_is_just_eof(self):
        assert render_openmetrics({}) == "# EOF\n"
        assert parse_openmetrics(render_openmetrics({})) == {}

    def test_content_type_advertises_openmetrics(self):
        assert "openmetrics-text" in CONTENT_TYPE


class TestParse:
    def test_roundtrip_of_live_registry(self):
        obs_metrics.counter("a.b").inc(2)
        obs_metrics.gauge("g", zone="z").set(1.5)
        obs_metrics.histogram("h").observe(0.5)
        samples = parse_openmetrics(render_openmetrics())
        assert samples["a_b_total"][0]["value"] == 2
        assert samples["g"][0] == {"labels": {"zone": "z"}, "value": 1.5}
        assert samples["h_count"][0]["value"] == 1

    def test_missing_eof_is_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("a_total 1\n")

    def test_content_after_eof_is_rejected(self):
        with pytest.raises(ValueError, match="after"):
            parse_openmetrics("# EOF\na_total 1\n")

    def test_malformed_sample_is_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("}bogus{ 1\n# EOF\n")

    def test_malformed_value_is_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("a_total xyz\n# EOF\n")
