"""Experiment — incremental view maintenance of pipeline outputs (§2.2).

When new rows arrive at a pipeline source, re-running the whole pipeline is
wasteful: monotone select-project-join plans admit delta processing. This
bench appends batches of rows to the letters pipeline's training source and
compares (a) incremental maintenance wall-clock vs full re-execution and
(b) verifies exact result equality. Shape to reproduce: the incremental
path is faster at every batch and the speed advantage grows with the
accumulated data size.
"""

import time

import numpy as np

from repro.datasets import generate_hiring_data
from repro.learn.model_selection import split_frame
from repro.pipeline import execute, incremental_append
from repro.viz import format_records
from repro.pipeline import letters_pipeline as build_letters_pipeline

BATCHES = 4
BATCH_ROWS = 150


def run_comparison() -> list[dict]:
    data = generate_hiring_data(n=200 + BATCHES * BATCH_ROWS, seed=7)
    letters = data["letters"]
    side = {"jobdetail_df": data["jobdetail"], "social_df": data["social"]}
    __, sink = build_letters_pipeline()

    initial = letters.take(np.arange(200))
    current = execute(sink, {"train_df": initial, **side}, fit=True)
    accumulated = initial
    rows = []
    for batch_no in range(BATCHES):
        start = 200 + batch_no * BATCH_ROWS
        delta = letters.take(np.arange(start, start + BATCH_ROWS))
        accumulated = type(letters).concat_rows([accumulated, delta])

        t0 = time.perf_counter()
        current = incremental_append(current, {"train_df": delta, **side})
        incremental_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        full = execute(sink, {"train_df": accumulated, **side}, fit=False)
        full_s = time.perf_counter() - t0

        inc_ids = np.sort(current.provenance.source_row_ids("train_df"))
        full_ids = np.sort(full.provenance.source_row_ids("train_df"))
        rows.append(
            {
                "batch": batch_no + 1,
                "total_rows": accumulated.num_rows,
                "incremental_s": round(incremental_s, 4),
                "full_rerun_s": round(full_s, 4),
                "speedup": round(full_s / max(incremental_s, 1e-9), 2),
                "results_equal": bool(np.array_equal(inc_ids, full_ids)),
            }
        )
    return rows


def test_incremental_maintenance(benchmark, write_report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    write_report("incremental", format_records(rows))

    for row in rows:
        assert row["results_equal"]
        assert row["incremental_s"] < row["full_rerun_s"]
    # The advantage grows as the accumulated data outgrows the fixed delta.
    assert rows[-1]["speedup"] > rows[0]["speedup"] * 0.8
