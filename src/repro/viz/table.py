"""Plain-text table rendering for frames and benchmark reports."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_records", "pretty_print"]


def _cell_text(value: Any, float_fmt: str) -> str:
    if value is None:
        return "·"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_records(
    records: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    float_fmt: str = ".4g",
    max_width: int = 40,
) -> str:
    """Render a list of dict records as an aligned text table."""
    if not records:
        return "(empty)"
    names = list(columns) if columns is not None else list(records[0])
    rows = []
    for record in records:
        row = []
        for name in names:
            text = _cell_text(record.get(name), float_fmt)
            if len(text) > max_width:
                text = text[: max_width - 1] + "…"
            row.append(text)
        rows.append(row)
    widths = [
        max(len(name), *(len(row[j]) for row in rows)) for j, name in enumerate(names)
    ]
    header = "  ".join(name.ljust(widths[j]) for j, name in enumerate(names))
    rule = "  ".join("-" * widths[j] for j in range(len(names)))
    body = "\n".join(
        "  ".join(row[j].ljust(widths[j]) for j in range(len(names))) for row in rows
    )
    return "\n".join([header, rule, body])


def format_table(frame, max_rows: int = 20, float_fmt: str = ".4g") -> str:
    """Render a :class:`repro.frame.DataFrame` as text, truncating long frames."""
    records = frame.head(max_rows).to_rows()
    text = format_records(records, columns=frame.columns, float_fmt=float_fmt)
    if frame.num_rows > max_rows:
        text += f"\n… ({frame.num_rows} rows total)"
    return text


def pretty_print(frame_or_records, **kwargs) -> None:
    """Print a frame or record list as an aligned table (paper's ``nde.pretty_print``)."""
    if isinstance(frame_or_records, (list, tuple)):
        print(format_records(list(frame_or_records), **kwargs))
    else:
        print(format_table(frame_or_records, **kwargs))
