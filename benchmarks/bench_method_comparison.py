"""Experiment T-methods — detection quality of all importance methods.

Section 2.1 of the survey promises attendees "a sense of the strengths and
weaknesses of various methods". This bench injects label errors into a
controlled task and scores every importance method on detection precision
and recall at k = number of injected errors, against the random baseline.
Shape to reproduce: every method beats random; KNN-Shapley and the
training-dynamics methods (confident learning, AUM) sit at the top; plain
LOO is noisy. Also reports the KNN-proxy ablation: ranking agreement between
KNN-Shapley and MC-Shapley on the target model.
"""

import numpy as np
from scipy.stats import spearmanr

from repro.datasets import make_classification
from repro.importance import (
    Utility,
    aum_importance,
    banzhaf_mc,
    beta_shapley_mc,
    confident_learning,
    influence_importance,
    knn_shapley,
    loo_importance,
    random_importance,
    shapley_mc,
    tracin_importance,
)
from repro.learn import LogisticRegression
from repro.viz import format_records

N_TRAIN, N_VALID, N_ERRORS = 120, 60, 18


def make_task(seed=3):
    X, y = make_classification(n=N_TRAIN + N_VALID, n_features=4, seed=seed)
    Xtr, ytr = X[:N_TRAIN], y[:N_TRAIN].copy()
    Xv, yv = X[N_TRAIN:], y[N_TRAIN:]
    rng = np.random.default_rng(seed)
    flipped = rng.choice(N_TRAIN, size=N_ERRORS, replace=False)
    ytr[flipped] = 1 - ytr[flipped]
    mask = np.zeros(N_TRAIN, dtype=bool)
    mask[flipped] = True
    return Xtr, ytr, Xv, yv, mask


def run_method_panel() -> dict:
    Xtr, ytr, Xv, yv, mask = make_task()
    model = LogisticRegression(max_iter=80).fit(Xtr, ytr)
    utility = Utility(LogisticRegression(max_iter=60), Xtr, ytr, Xv, yv)

    results = {
        "random": random_importance(N_TRAIN, seed=0),
        "loo": loo_importance(utility),
        "shapley_mc(30 perms, truncated)": shapley_mc(
            utility, n_permutations=30, truncation_tolerance=0.02, seed=0
        ),
        "banzhaf_mc(150)": banzhaf_mc(utility, n_samples=150, seed=0),
        "beta_shapley(1,16)": beta_shapley_mc(utility, n_permutations=10, seed=0),
        "knn_shapley(k=5)": knn_shapley(Xtr, ytr, Xv, yv, k=5),
        "influence": influence_importance(model, Xtr, ytr, Xv, yv),
        "tracin": tracin_importance(model, Xtr, ytr, Xv, yv),
        "confident_learning": confident_learning(Xtr, ytr, seed=0),
        "aum": aum_importance(Xtr, ytr, seed=0),
    }
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "method": name,
                "precision@18": result.detection_precision_at_k(mask, N_ERRORS),
                "recall@36": result.detection_recall_at_k(mask, 2 * N_ERRORS),
                "retrainings": utility.n_evaluations if name == "loo" else None,
            }
        )
    # KNN-proxy ablation: agreement between the closed-form KNN-Shapley
    # ranking and the target-model MC-Shapley ranking, as the MC budget
    # grows. Low-budget disagreement is MC noise, not proxy error.
    agreement = {}
    for n_permutations in (10, 30):
        probe = Utility(LogisticRegression(max_iter=60), Xtr, ytr, Xv, yv)
        mc = shapley_mc(
            probe, n_permutations=n_permutations, truncation_tolerance=0.02, seed=0
        )
        rho, __ = spearmanr(results["knn_shapley(k=5)"].values, mc.values)
        agreement[n_permutations] = float(rho)

    # Neighbourhood-size ablation: detection quality of KNN-Shapley vs k.
    k_ablation = {
        k: knn_shapley(Xtr, ytr, Xv, yv, k=k).detection_precision_at_k(
            mask, N_ERRORS
        )
        for k in (1, 3, 5, 10, 20)
    }
    return {
        "rows": rows,
        "results": results,
        "mask": mask,
        "proxy_agreement": agreement,
        "k_ablation": k_ablation,
    }


def test_method_comparison(benchmark, write_report):
    panel = benchmark.pedantic(run_method_panel, rounds=1, iterations=1)
    rows = sorted(panel["rows"], key=lambda r: -r["precision@18"])
    report = format_records(rows, columns=["method", "precision@18", "recall@36"])
    agreement = panel["proxy_agreement"]
    report += (
        "\n\nKNN-proxy ablation — Spearman rank agreement between KNN-Shapley "
        "and target-model MC-Shapley:\n"
        + "\n".join(
            f"  {perms:>3} permutations: rho = {rho:.3f}"
            for perms, rho in agreement.items()
        )
    )
    report += "\n\nKNN-Shapley k-ablation (detection precision@18):\n" + "\n".join(
        f"  k = {k:>2}: {precision:.3f}"
        for k, precision in panel["k_ablation"].items()
    )
    write_report("method_comparison", report)

    by_name = {r["method"]: r for r in panel["rows"]}
    base = by_name["random"]["precision@18"]
    for name, row in by_name.items():
        if name in ("random", "loo"):
            continue  # LOO is documented as noisy; random is the baseline
        assert row["precision@18"] >= base, f"{name} should beat random"
    assert by_name["knn_shapley(k=5)"]["precision@18"] >= 0.5
    # Agreement with the target-model Shapley improves with MC budget and is
    # clearly positive at 30 permutations.
    assert agreement[30] > 0.3
    assert agreement[30] >= agreement[10]
