"""Crash flight recorder: a bounded ring of recent events, dumped on failure.

A post-mortem after a worker SIGKILL or a FAILED job needs the telemetry
that died with the process — the spans the worker shipped back, which chunk
was in flight, which supervision events fired. This module keeps a cheap
process-wide ring buffer (``deque(maxlen=...)``) of such events and dumps
it atomically (via :mod:`repro.obs.atomicio`) when something goes wrong:

- :class:`~repro.importance.supervision.ChunkDispatcher` records every
  crash/hang it detects (naming the worker's in-flight chunk) and triggers
  :func:`auto_dump`;
- :class:`~repro.service.runtime.JobRuntime` records FAILED job transitions
  and triggers a dump;
- the worker-telemetry merge path records every adopted worker span, so the
  ring holds the last spans of a worker that later dies.

Recording is always-on (an append to a bounded deque — no clock beyond
``time.time()``, no allocation beyond the event dict) but dumps only
happen when a ``dump_dir`` has been configured, so the default footprint
is a few hundred dicts of memory and zero I/O. Dump files are CRC-framed
JSONL (load them with :func:`load_dump`), and the dump directory is
retention-bounded: a process stuck in a crash loop prunes its oldest dumps
past ``keep_last`` instead of filling the disk.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "DEFAULT_CAPACITY",
    "DEFAULT_KEEP_DUMPS",
    "FlightRecorder",
    "flight_recorder",
    "configure",
    "record",
    "record_span",
    "auto_dump",
    "load_dump",
]

#: Stamped into every dump header; readers must ignore unknown fields.
FLIGHT_SCHEMA_VERSION = 1

#: Events kept in the ring by default. Each event is a small dict; 512 of
#: them comfortably covers the tail of a dispatch wave plus the supervision
#: events around a crash.
DEFAULT_CAPACITY = 512

#: Dumps retained per dump directory by default: repeated crash loops keep
#: the newest N post-mortems and prune the rest (oldest first).
DEFAULT_KEEP_DUMPS = 16


class FlightRecorder:
    """Bounded, fork-aware ring buffer of observability events."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        keep_last: int | None = DEFAULT_KEEP_DUMPS,
    ) -> None:
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be >= 1 (or None for unbounded)")
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dumps = 0
        self.dump_dir: str | None = None
        self.keep_last = keep_last

    def _guard_fork(self) -> None:
        # A forked child inherits the parent's ring; its events are the
        # parent's history, not the child's, so start fresh (the child's
        # own telemetry flows back to the driver via WorkerTelemetry).
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._events = deque(maxlen=self._events.maxlen)
            self._seq = 0
            self._dumps = 0

    def configure(
        self,
        capacity: int | None = None,
        dump_dir: Any | None = None,
        keep_last: int | None = None,
    ) -> None:
        """Resize the ring, set the directory :meth:`auto_dump` writes into
        (``None`` disables automatic dumps), and/or set the dump-retention
        bound (``keep_last=0`` means unbounded)."""
        with self._lock:
            self._guard_fork()
            if capacity is not None and capacity != self._events.maxlen:
                self._events = deque(self._events, maxlen=int(capacity))
            if dump_dir is not None:
                self.dump_dir = os.fspath(dump_dir)
            if keep_last is not None:
                self.keep_last = int(keep_last) if keep_last > 0 else None

    def record(self, kind: str, **payload: Any) -> None:
        """Append one event (cheap; always-on)."""
        with self._lock:
            self._guard_fork()
            event = {"seq": self._seq, "ts": time.time(), "kind": kind}
            event.update(payload)
            self._events.append(event)
            self._seq += 1

    def record_span(self, origin: str, span_dict: dict[str, Any]) -> None:
        """Record an adopted worker span so a later crash dump names the
        work that was running shortly before the failure."""
        self.record(
            "span",
            origin=origin,
            name=span_dict.get("name"),
            attrs=span_dict.get("attrs", {}),
            duration=span_dict.get("duration"),
        )

    def snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            self._guard_fork()
            return [dict(event) for event in self._events]

    def __len__(self) -> int:
        with self._lock:
            self._guard_fork()
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._guard_fork()
            self._events.clear()
            self._seq = 0

    def dump(self, path: Any, reason: str = "", extra: dict[str, Any] | None = None) -> int:
        """Atomically write the ring as CRC-framed JSONL (header + one event
        per line); returns the event count. Readers never observe a partial
        dump, and :func:`load_dump` quarantines any later bit rot."""
        from .atomicio import atomic_writer, frame_line

        events = self.snapshot()
        header: dict[str, Any] = {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "kind": "flight_dump",
            "reason": reason,
            "pid": os.getpid(),
            "ts": time.time(),
            "n_events": len(events),
        }
        if extra:
            header.update(extra)
        with atomic_writer(path) as handle:
            handle.write(frame_line(header) + "\n")
            for event in events:
                handle.write(frame_line(event, default=repr) + "\n")
        return len(events)

    def auto_dump(self, reason: str) -> str | None:
        """Dump into the configured ``dump_dir`` (no-op returning ``None``
        when unconfigured or the ring is empty). Returns the dump path.
        Oldest dumps beyond ``keep_last`` are pruned afterwards, so a
        crash-looping process cannot fill the disk with post-mortems."""
        with self._lock:
            self._guard_fork()
            dump_dir = self.dump_dir
            if dump_dir is None or not self._events:
                return None
            self._dumps += 1
            counter = self._dumps
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in reason)
        os.makedirs(dump_dir, exist_ok=True)
        path = os.path.join(
            dump_dir, f"flight-{os.getpid()}-{counter:03d}-{safe or 'dump'}.jsonl"
        )
        self.dump(path, reason=reason)
        self._prune_dumps(dump_dir)
        return path

    def _prune_dumps(self, dump_dir: str) -> list[str]:
        """Drop the oldest ``flight-*.jsonl`` dumps beyond ``keep_last``.

        Ordered by modification time (dump names from different pids do
        not sort chronologically). Quarantine sidecars are left alone —
        they are evidence, not telemetry.
        """
        if self.keep_last is None:
            return []
        dumps = sorted(
            Path(dump_dir).glob("flight-*.jsonl"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        pruned: list[str] = []
        for stale in dumps[: -int(self.keep_last)]:
            try:
                stale.unlink()
                pruned.append(str(stale))
            except OSError:  # pragma: no cover - concurrent prune
                pass
        return pruned


_FLIGHT = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _FLIGHT


def configure(capacity: int | None = None, dump_dir: Any | None = None) -> None:
    _FLIGHT.configure(capacity=capacity, dump_dir=dump_dir)


def record(kind: str, **payload: Any) -> None:
    _FLIGHT.record(kind, **payload)


def record_span(origin: str, span_dict: dict[str, Any]) -> None:
    _FLIGHT.record_span(origin, span_dict)


def auto_dump(reason: str) -> str | None:
    return _FLIGHT.auto_dump(reason)


def load_dump(path: Any) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load one flight dump: ``(header, events)``.

    Goes through the validating loader (:func:`repro.obs.atomicio.
    read_jsonl`): corrupt lines are quarantined to ``<path>.corrupt`` with
    metrics and an alert, and the surviving events still load. Un-framed
    (v1) dumps load unchanged. A damaged or missing header yields ``{}``.
    """
    from .atomicio import read_jsonl

    payloads, _ = read_jsonl(path, artifact="flight")
    header: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    for payload in payloads:
        if not header and payload.get("kind") == "flight_dump":
            header = payload
        else:
            events.append(payload)
    return header, events
