"""Persistent worker pool: bit-identity, warm reuse, recovery, metrics.

The tentpole contract: an engine running on a :class:`WorkerPool` —
whatever the start method, worker count, crash history, or how many
engines shared the pool before it — returns values, standard errors, and
an evaluation census bit-identical to a serial run. The satellites pin
the rest: warm leases skip re-evaluation, a SIGKILLed worker re-attaches
to the shared segments instead of re-copying the dataset, checkpoints
survive pool teardown/recreate (including a ``kill -9`` of the whole
driver), and the pool's lifecycle is visible in metrics and the ledger.
"""

from __future__ import annotations

import gc
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

import repro.importance.engine as engine_mod
from repro.datasets import make_classification
from repro.importance import (
    PoolUnavailable,
    SubsetUtility,
    Utility,
    ValuationEngine,
    WorkerPool,
    parallel_map,
    valuation_pool,
)
from repro.importance.checkpoint import CheckpointStore
from repro.importance.pool import (
    PoolRegistry,
    active_map_pool,
    utility_fingerprint,
)
from repro.importance.shm import SEGMENT_PREFIX, reap_stale_segments
from repro.learn import LogisticRegression

needs_fork = pytest.mark.skipif(
    engine_mod._FORK_CTX is None, reason="requires a fork-capable platform"
)


def small_utility(seed: int = 11) -> Utility:
    """A standard (array-backed, picklable) utility — shared-memory able."""
    X, y = make_classification(n=48, n_features=3, seed=seed)
    return Utility(
        LogisticRegression(max_iter=20), X[:36], y[:36], X[36:], y[36:]
    )


def saturating_game(n: int = 10, seed: int = 3) -> SubsetUtility:
    """A closure game — not picklable, rides on fork inheritance."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, n)


def slow_game(n: int = 8, seed: int = 3, delay_s: float = 0.004) -> SubsetUtility:
    base = saturating_game(n, seed)

    def func(indices):
        time.sleep(delay_s)
        return base.func(indices)

    return SubsetUtility(func, n)


# ---------------------------------------------------------------------- #
# pool mechanics                                                         #
# ---------------------------------------------------------------------- #


class TestWorkerPool:
    def test_standard_utility_gets_shared_memory_mode(self):
        with WorkerPool(small_utility(), n_workers=2) as pool:
            assert pool.mode.startswith("shm-")
            assert pool.shm_bytes > 0
            assert len(pool.attach_latencies) == 2  # warmup ping per worker

    @needs_fork
    def test_closure_utility_rides_on_fork_inheritance(self):
        with WorkerPool(saturating_game(), n_workers=2) as pool:
            assert pool.mode == "fork"
            assert pool.shm_bytes == 0

    def test_closure_utility_on_spawn_raises_pool_unavailable(self):
        with pytest.raises(PoolUnavailable):
            WorkerPool(saturating_game(), n_workers=2, start_method="spawn")

    def test_map_preserves_order(self):
        with WorkerPool(small_utility(), n_workers=2) as pool:
            out = pool.map(_square, list(range(17)), n_chunks=4)
            assert out == [x * x for x in range(17)]

    def test_dispatch_after_close_raises(self):
        pool = WorkerPool(small_utility(), n_workers=2)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.dispatch([{"kind": "ping"}])

    def test_stats_shape(self):
        with WorkerPool(small_utility(), n_workers=2) as pool:
            stats = pool.stats()
        assert stats["n_workers"] == 2
        assert stats["worker_starts"] >= 2
        assert stats["attach_latency_s"]["count"] == 2
        assert stats["setup_s"] >= 0.0
        assert "supervision" in stats

    def test_fingerprint_shared_across_equal_utilities(self):
        assert utility_fingerprint(small_utility()) == utility_fingerprint(
            small_utility()
        )
        assert utility_fingerprint(small_utility()) != utility_fingerprint(
            small_utility(seed=12)
        )
        # Closure games cannot be hashed; identity keeps them unshared.
        game = saturating_game()
        assert utility_fingerprint(game) == f"id:{id(game)}"


# ---------------------------------------------------------------------- #
# bit-identity with serial                                               #
# ---------------------------------------------------------------------- #


class TestBitIdentity:
    def test_permutations_match_serial_exactly(self):
        """Values, standard errors, AND the evaluation census: the pool
        run is indistinguishable from serial in every observable."""
        serial_u = small_utility()
        serial = ValuationEngine(serial_u).run_permutations(10, seed=7)
        pool_u = small_utility()
        with ValuationEngine(pool_u, n_workers=4, pool=True) as engine:
            pooled = engine.run_permutations(10, seed=7)
            census = engine.result_from_run(pooled, 10).census
        assert np.array_equal(pooled.values(), serial.values())
        assert np.array_equal(pooled.stderr(), serial.stderr())
        assert pool_u.n_evaluations == serial_u.n_evaluations
        assert census["pool"]["mode"].startswith("shm-")

    @needs_fork
    def test_closure_game_matches_serial_exactly(self):
        serial_u = saturating_game()
        serial = ValuationEngine(serial_u).run_permutations(25, seed=3)
        pool_u = saturating_game()
        with ValuationEngine(pool_u, n_workers=3, pool=True) as engine:
            pooled = engine.run_permutations(25, seed=3)
        assert np.array_equal(pooled.values(), serial.values())
        assert np.array_equal(pooled.stderr(), serial.stderr())
        assert pool_u.n_evaluations == serial_u.n_evaluations

    @needs_fork
    def test_legacy_fork_census_matches_serial(self):
        """The historical drift (serial 632 vs parallel 633 evaluations)
        is fixed for the per-run fork path too: duplicate subsets
        evaluated by independent workers are charged once."""
        serial_u = saturating_game(n=8, seed=5)
        ValuationEngine(serial_u).run_permutations(30, seed=11)
        fork_u = saturating_game(n=8, seed=5)
        ValuationEngine(fork_u, n_workers=4, pool=False).run_permutations(
            30, seed=11
        )
        assert fork_u.n_evaluations == serial_u.n_evaluations

    def test_evaluate_many_matches_serial(self):
        rng = np.random.default_rng(2)
        subsets = [
            sorted(rng.choice(36, size=rng.integers(0, 8), replace=False))
            for __ in range(40)
        ]
        serial = ValuationEngine(small_utility()).evaluate_many(subsets)
        pool_u = small_utility()
        with ValuationEngine(pool_u, n_workers=3, pool=True) as engine:
            pooled = engine.evaluate_many(subsets)
            # The driver memo learned every returned value, even ones a
            # warm worker answered from its local cache.
            again = engine.evaluate_many(subsets)
        assert np.array_equal(pooled, serial)
        assert np.array_equal(again, serial)

    @pytest.mark.slow
    def test_spawn_pool_matches_serial_exactly(self):
        """The no-fork story is honest: shared memory + picklable chunk
        descriptors run the same bits through spawned workers."""
        serial_u = small_utility()
        serial = ValuationEngine(serial_u).run_permutations(6, seed=1)
        pool_u = small_utility()
        with WorkerPool(pool_u, n_workers=2, start_method="spawn") as pool:
            assert pool.mode == "shm-spawn"
            engine = ValuationEngine(pool_u, n_workers=2, pool=pool)
            pooled = engine.run_permutations(6, seed=1)
        assert np.array_equal(pooled.values(), serial.values())
        assert np.array_equal(pooled.stderr(), serial.stderr())
        assert pool_u.n_evaluations == serial_u.n_evaluations


# ---------------------------------------------------------------------- #
# warm reuse                                                             #
# ---------------------------------------------------------------------- #


class TestWarmReuse:
    def test_second_engine_on_same_data_evaluates_nothing(self):
        """Workers keep their subset caches across engines; the journal
        replays what other workers learned, so a repeat run on the same
        dataset is answered entirely from warm worker caches."""
        with valuation_pool(n_workers=2) as registry:
            first_u = small_utility()
            first = ValuationEngine(first_u, n_workers=2).run_permutations(
                8, seed=4
            )
            second_u = small_utility()
            second = ValuationEngine(second_u, n_workers=2).run_permutations(
                8, seed=4
            )
            assert np.array_equal(second.values(), first.values())
            assert first_u.n_evaluations > 0
            assert second_u.n_evaluations == 0
            stats = registry.stats()
            assert stats == {**stats, "pools": 1, "leases": 2, "reuses": 1}

    def test_pool_outlives_the_runs_and_registry_closes_it(self):
        with valuation_pool(n_workers=2) as registry:
            engine = ValuationEngine(small_utility(), n_workers=2)
            engine.run_permutations(4, seed=0)
            pool = engine._pool
            assert pool is not None and not pool.closed
            engine.run_permutations(6, seed=1)  # same pool, same fleet
            assert engine._pool is pool
        assert pool.closed
        assert registry.stats()["pools"] == 0

    def test_registry_evicts_least_recently_used(self):
        registry = PoolRegistry(n_workers=2, max_pools=1)
        try:
            first = registry.lease(small_utility(seed=11))
            second = registry.lease(small_utility(seed=12))
            assert first.closed
            assert not second.closed
        finally:
            registry.close_all()
        assert second.closed

    def test_eviction_defers_while_pool_is_borrowed(self):
        """A pool with a live borrower survives LRU eviction: closing it
        would terminate workers under whatever run the borrower has in
        flight. Once the borrower is collected, the next lease evicts."""

        class Borrower:
            pass

        registry = PoolRegistry(n_workers=2, max_pools=1)
        try:
            first = registry.lease(small_utility(seed=11))
            borrower = Borrower()
            first.add_borrower(borrower)
            assert first.borrowed
            second = registry.lease(small_utility(seed=12))
            assert not first.closed  # live borrower: eviction deferred
            assert not second.closed
            del borrower
            gc.collect()
            assert not first.borrowed
            third = registry.lease(small_utility(seed=13))
            assert first.closed
            assert second.closed  # unborrowed backlog evicted too
            assert not third.closed
        finally:
            registry.close_all()

    def test_engine_lease_blocks_eviction_while_engine_lives(self):
        """Engines register themselves as borrowers on adoption, so a
        concurrent job's pool cannot be evicted out from under it."""
        with valuation_pool(n_workers=2, max_pools=1):
            engine = ValuationEngine(small_utility(seed=11), n_workers=2)
            engine.run_permutations(4, seed=0)
            pool = engine._pool
            assert pool is not None and pool.borrowed
            other = ValuationEngine(small_utility(seed=12), n_workers=2)
            other.run_permutations(4, seed=0)
            assert not pool.closed
            # The first engine keeps working on its still-open pool.
            first_rerun = engine.run_permutations(4, seed=0)
            assert first_rerun.values().shape == (engine.n_train,)

    def test_engine_with_pool_false_never_leases(self):
        with valuation_pool(n_workers=2):
            engine = ValuationEngine(small_utility(), n_workers=2, pool=False)
            engine.run_permutations(4, seed=0)
            assert engine._pool is None

    def test_parallel_map_routes_through_an_active_pool(self):
        with valuation_pool(n_workers=2) as registry:
            registry.lease(small_utility())
            pool = active_map_pool()
            assert pool is not None
            before = pool.chunks_dispatched
            out = parallel_map(_double, list(range(9)), n_workers=2)
            assert out == [x * 2 for x in range(9)]
            assert pool.chunks_dispatched > before
        assert active_map_pool() is None


def _double(x):
    return x * 2


def _square(x):
    return x * x


# ---------------------------------------------------------------------- #
# thread safety                                                          #
# ---------------------------------------------------------------------- #


class TestThreadSafety:
    def test_concurrent_fan_outs_do_not_cross_results(self):
        """Concurrent dispatches on one pool — the service runtime's
        concurrent-jobs-per-dataset shape — serialize on the pool lock.
        Without it, both threads recv() on the same pipes with chunk ids
        both starting at 0 and silently swap each other's results."""
        serial_u = small_utility()
        n = serial_u.n_train
        rng = np.random.default_rng(7)
        keysets = [
            [
                tuple(sorted(rng.choice(n, size=5, replace=False).tolist()))
                for __ in range(6)
            ]
            for __ in range(4)
        ]
        expected = [
            [
                float(serial_u.evaluate(np.asarray(keys, dtype=np.int64)))
                for keys in keyset
            ]
            for keyset in keysets
        ]
        results: dict[int, list] = {}
        errors: list[Exception] = []
        with WorkerPool(small_utility(), n_workers=2) as pool:

            def run(tid: int) -> None:
                try:
                    out = pool.dispatch(
                        [
                            {"kind": "subset", "keys": keysets[tid][:3]},
                            {"kind": "subset", "keys": keysets[tid][3:]},
                        ]
                    )
                    results[tid] = list(out[0][1]) + list(out[1][1])
                except Exception as exc:  # pragma: no cover - fail below
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(tid,)) for tid in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        for tid in range(4):
            assert results[tid] == expected[tid]

    def test_concurrent_engines_on_shared_pool_match_serial(self):
        """Two engines leasing the same warm pool from parallel threads
        (exactly what JobRuntime's max_concurrency=2 default produces)
        each return values bit-identical to a serial run."""
        serial = ValuationEngine(small_utility()).run_permutations(8, seed=4)
        runs: dict[int, object] = {}
        errors: list[Exception] = []
        with valuation_pool(n_workers=2):

            def run(tid: int) -> None:
                try:
                    runs[tid] = ValuationEngine(
                        small_utility(), n_workers=2
                    ).run_permutations(8, seed=4)
                except Exception as exc:  # pragma: no cover - fail below
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(tid,)) for tid in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        for tid in range(2):
            assert np.array_equal(runs[tid].values(), serial.values())
            assert np.array_equal(runs[tid].stderr(), serial.stderr())

    def test_concurrent_maps_preserve_per_call_order(self):
        """parallel_map from several threads over one active pool."""
        outs: dict[int, list] = {}
        errors: list[Exception] = []
        with WorkerPool(small_utility(), n_workers=2) as pool:

            def run(tid: int) -> None:
                try:
                    items = list(range(tid * 10, tid * 10 + 13))
                    outs[tid] = (
                        pool.map(_square, items, n_chunks=3),
                        [x * x for x in items],
                    )
                except Exception as exc:  # pragma: no cover - fail below
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(tid,)) for tid in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        for got, want in outs.values():
            assert got == want


# ---------------------------------------------------------------------- #
# recovery                                                               #
# ---------------------------------------------------------------------- #


class TestRecovery:
    @needs_fork
    def test_sigkill_of_pool_worker_mid_wave_reattaches_and_recovers(self):
        """kill -9 one pool worker mid-run: the chunk is re-queued, the
        replacement re-attaches to the existing shared segments (no
        re-publish), and the values stay bit-identical to serial."""
        serial = ValuationEngine(slow_game()).run_permutations(40, seed=9)
        game = slow_game()
        with WorkerPool(game, n_workers=2) as pool:
            victims = [w.proc.pid for w in pool.dispatcher._workers]
            engine = ValuationEngine(game, n_workers=2, pool=pool)
            result: dict = {}

            def run():
                result["run"] = engine.run_permutations(40, seed=9)

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.05)  # let the wave get in flight
            os.kill(victims[0], signal.SIGKILL)
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            assert pool.supervision.worker_restarts >= 1
            assert pool.stats()["worker_starts"] >= 3  # 2 spawns + 1 replace
            # Same segment throughout: the bundle was published once.
            assert pool.bundle is None  # closure game → fork inheritance
        assert np.array_equal(result["run"].values(), serial.values())
        assert engine.worker_restarts >= 1  # mirrored into the engine

    def test_sigkill_in_shm_mode_replacement_reattaches(self):
        """Same recovery with the shared-memory plane: the replacement
        worker's first chunk reports a fresh attach latency, proving it
        re-mapped the segments instead of inheriting them."""
        utility = small_utility()
        with WorkerPool(utility, n_workers=2) as pool:
            assert pool.mode.startswith("shm-")
            attaches_before = len(pool.attach_latencies)
            os.kill(pool.dispatcher._workers[0].proc.pid, signal.SIGKILL)
            engine = ValuationEngine(utility, n_workers=2, pool=pool)
            run = engine.run_permutations(8, seed=2)
            assert len(pool.attach_latencies) > attaches_before
            assert pool.stats()["worker_starts"] >= 3
        serial = ValuationEngine(small_utility()).run_permutations(8, seed=2)
        assert np.array_equal(run.values(), serial.values())

    def test_checkpoint_survives_pool_teardown_and_recreate(self, tmp_path):
        """A budget-stopped run checkpointed under pool A resumes under a
        brand-new pool B — different processes, different segments — and
        completes bit-identically to an uninterrupted serial run."""
        ck = tmp_path / "ck.json"
        uninterrupted = ValuationEngine(small_utility()).run_permutations(
            12, seed=6
        )
        with ValuationEngine(
            small_utility(), n_workers=2, pool=True, checkpoint=ck
        ) as engine:
            partial = engine.run_permutations(12, seed=6, max_evals=30)
        assert partial.stop_reason == "eval_budget"
        resumed_u = small_utility()
        with ValuationEngine(
            resumed_u, n_workers=2, pool=True, checkpoint=ck, resume=True
        ) as engine:
            resumed = engine.run_permutations(12, seed=6)
        assert resumed.resumed_from > 0
        assert np.array_equal(resumed.values(), uninterrupted.values())

    @pytest.mark.slow
    def test_kill_minus_nine_of_pooled_driver_then_resume(self, tmp_path):
        """The acceptance scenario: SIGKILL the whole driver mid-run with
        the pool enabled. The checkpoint resumes bit-identically, and the
        segments the dead driver leaked are reclaimed by the reaper."""
        ck = tmp_path / "ck.json"
        script = textwrap.dedent(
            f"""
            import os
            import time
            import numpy as np
            from repro.datasets import make_classification
            from repro.importance import Utility, ValuationEngine
            from repro.learn import LogisticRegression

            X, y = make_classification(n=48, n_features=3, seed=11)
            model = LogisticRegression(max_iter=20)

            class SlowModel(LogisticRegression):
                def fit(self, X, y):
                    time.sleep(0.002)  # slow enough to be killed mid-run
                    return super().fit(X, y)

            utility = Utility(SlowModel(max_iter=20), X[:36], y[:36],
                              X[36:], y[36:])
            print(f"PID={{os.getpid()}}", flush=True)
            engine = ValuationEngine(
                utility, n_workers=2, pool=True, checkpoint={str(ck)!r}
            )
            engine.run_permutations(60, seed=5, check_every=5)
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        pid_line = child.stdout.readline()
        deadline = time.monotonic() + 60.0
        while not ck.exists() and time.monotonic() < deadline:
            if child.poll() is not None:
                break
            time.sleep(0.01)
        assert ck.exists(), "child never wrote a checkpoint"
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
        child.stdout.close()
        snapshot = CheckpointStore(ck).load()
        assert 0 < snapshot["completed"] <= 60
        if snapshot["completed"] == 60:  # pragma: no cover - timing
            pytest.skip("child finished before the kill landed")

        # The SIGKILLed driver could not unlink its segments; the reaper
        # (called by every subsequent pool construction) reclaims them.
        child_pid = int(pid_line.strip().split("PID=")[1])
        reap_stale_segments()
        if os.path.isdir("/dev/shm"):
            prefix = f"{SEGMENT_PREFIX}{child_pid}-"
            assert not [
                n for n in os.listdir("/dev/shm") if n.startswith(prefix)
            ]

        uninterrupted = ValuationEngine(small_utility()).run_permutations(
            60, seed=5, check_every=5
        )
        with ValuationEngine(
            small_utility(), n_workers=2, pool=True,
            checkpoint=ck, resume=True,
        ) as engine:
            resumed = engine.run_permutations(60, seed=5, check_every=5)
        assert resumed.resumed_from == snapshot["completed"]
        assert np.array_equal(resumed.values(), uninterrupted.values())


# ---------------------------------------------------------------------- #
# observability                                                          #
# ---------------------------------------------------------------------- #


class _LedgerStub:
    def __init__(self):
        self.events = []

    def record_event(self, kind, **fields):
        self.events.append((kind, fields))


class TestObservability:
    def test_pool_metrics_and_lifecycle_span(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        obs_trace.enable()
        try:
            with ValuationEngine(
                small_utility(), n_workers=2, pool=True
            ) as engine:
                engine.run_permutations(6, seed=3)
                pool = engine._pool
            snapshot = obs_metrics.snapshot()
            spans = [s.name for s in obs_trace.get_recorder().spans]
        finally:
            obs_trace.disable()
            obs_metrics.registry().clear()
            obs_trace.get_recorder().reset()
        assert snapshot["engine.pool.worker_starts"]["value"] >= 2
        assert (
            snapshot["engine.pool.chunks_dispatched"]["value"]
            == pool.chunks_dispatched
        )
        assert snapshot["engine.pool.attach_latency_s"]["count"] >= 2
        assert snapshot["engine.pool.workers_alive"]["value"] == 0  # closed
        assert "engine.pool.lifecycle" in spans

    def test_pool_close_writes_a_ledger_event(self):
        ledger = _LedgerStub()
        pool = WorkerPool(small_utility(), n_workers=2, ledger=ledger)
        pool.close()
        assert len(ledger.events) == 1
        kind, fields = ledger.events[0]
        assert kind == "pool"
        assert fields["config"]["n_workers"] == 2
        assert fields["stats"]["worker_starts"] >= 2
        assert fields["wall_time_s"] > 0

    def test_run_census_reports_pool_stats(self):
        with ValuationEngine(
            small_utility(), n_workers=2, pool=True
        ) as engine:
            run = engine.run_permutations(5, seed=1)
            census = engine.result_from_run(run, 5).census
            stats = engine.stats()
        assert census["pool"]["n_workers"] == 2
        assert stats["pool"]["chunks_dispatched"] >= 1
