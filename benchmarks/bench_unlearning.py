"""Ablation — unlearning latency vs retraining (survey §2.4 direction).

The open-challenges section links data debugging to low-latency machine
unlearning: debugging repeatedly removes points, deletion requests demand it
be fast. This bench measures wall-clock of (a) RemovalAwareKNN.forget vs a
KNN refit and (b) Newton-step unlearning vs logistic-regression retraining,
plus the prediction agreement of the fast paths with their exact
counterparts. Shapes to reproduce: the fast paths are faster at every size
and agree with retraining almost everywhere.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.learn import KNeighborsClassifier, LogisticRegression
from repro.unlearning import RemovalAwareForest, RemovalAwareKNN, newton_unlearn
from repro.viz import format_records

SIZES = [200, 400, 800]
N_REMOVE = 10


def run_comparison() -> list[dict]:
    rows = []
    for n in SIZES:
        X, y = make_classification(n=n + 60, n_features=4, seed=2)
        Xtr, ytr = X[:n], y[:n]
        Xv = X[n:]
        removed = list(range(N_REMOVE))
        keep = np.ones(n, dtype=bool)
        keep[removed] = False

        knn = RemovalAwareKNN(5).fit(Xtr, ytr)
        start = time.perf_counter()
        knn.forget(removed)
        forget_s = time.perf_counter() - start
        start = time.perf_counter()
        refit = KNeighborsClassifier(5).fit(Xtr[keep], ytr[keep])
        knn_refit_s = time.perf_counter() - start
        knn_agreement = float(np.mean(knn.predict(Xv) == refit.predict(Xv)))

        model = LogisticRegression(l2=1e-2).fit(Xtr, ytr)
        start = time.perf_counter()
        unlearned, report = newton_unlearn(model, Xtr, ytr, removed)
        newton_s = time.perf_counter() - start
        start = time.perf_counter()
        retrained = LogisticRegression(l2=1e-2).fit(Xtr[keep], ytr[keep])
        retrain_s = time.perf_counter() - start
        lr_agreement = float(np.mean(unlearned.predict(Xv) == retrained.predict(Xv)))

        # HedgeCut-style forest: count the partial refits a deletion needs.
        forest = RemovalAwareForest(
            n_trees=20, sample_fraction=0.2, seed=0
        ).fit(Xtr, ytr)
        t0 = time.perf_counter()
        refits = forest.forget(removed[:1])
        forest_forget_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        RemovalAwareForest(n_trees=20, sample_fraction=0.2, seed=0).fit(
            Xtr[1:], ytr[1:]
        )
        forest_refit_s = time.perf_counter() - t0

        rows.append(
            {
                "n_train": n,
                "knn_forget_s": round(forget_s, 5),
                "knn_refit_s": round(knn_refit_s, 5),
                "knn_agreement": knn_agreement,
                "newton_s": round(newton_s, 5),
                "lr_retrain_s": round(retrain_s, 5),
                "lr_agreement": lr_agreement,
                "newton_method": report.method,
                "forest_trees_refit": f"{refits}/20",
                "forest_forget_s": round(forest_forget_s, 5),
                "forest_retrain_s": round(forest_refit_s, 5),
            }
        )
    return rows


def test_unlearning_latency(benchmark, write_report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    write_report("unlearning", format_records(rows))

    for row in rows:
        assert row["knn_agreement"] == 1.0  # forgetting is exact for KNN
        assert row["lr_agreement"] >= 0.95
        assert row["newton_method"] == "newton"  # small removals: fast path
        refit, total = row["forest_trees_refit"].split("/")
        assert int(refit) < int(total)  # partial refits only
        assert row["forest_forget_s"] < row["forest_retrain_s"]
    # The fast KNN path beats refitting at the largest size.
    assert rows[-1]["knn_forget_s"] < rows[-1]["knn_refit_s"]
