"""Tests for declarative data validation and schema inference."""

import numpy as np
import pytest

from repro.datasets import generate_hiring_data
from repro.errors import (
    inject_distribution_shift,
    inject_missing,
    inject_outliers,
    inject_typos,
)
from repro.frame import DataFrame
from repro.pipeline import (
    expect_column_mean_between,
    expect_complete,
    expect_in_range,
    expect_in_set,
    expect_matches,
    expect_unique,
    infer_schema,
    run_expectations,
    validate_schema,
)


@pytest.fixture()
def frame():
    return DataFrame(
        {
            "id": [1, 2, 3, 4],
            "grade": ["a", "b", "a", None],
            "score": [0.5, 0.9, 0.1, 0.7],
            "email": ["x@y.com", "z@w.org", "bad", "a@b.net"],
        }
    )


class TestExpectations:
    def test_complete_passes_and_fails(self, frame):
        assert expect_complete("id").evaluate(frame).passed
        assert not expect_complete("grade").evaluate(frame).passed
        assert expect_complete("grade", min_fraction=0.7).evaluate(frame).passed

    def test_unique(self, frame):
        assert expect_unique("id").evaluate(frame).passed
        assert not expect_unique("grade").evaluate(frame).passed

    def test_in_range(self, frame):
        assert expect_in_range("score", 0.0, 1.0).evaluate(frame).passed
        result = expect_in_range("score", 0.2, 1.0).evaluate(frame)
        assert not result.passed
        assert result.observed == 1

    def test_in_range_non_numeric_fails(self, frame):
        assert not expect_in_range("grade", 0, 1).evaluate(frame).passed

    def test_in_set(self, frame):
        assert expect_in_set("grade", ["a", "b"]).evaluate(frame).passed
        assert not expect_in_set("grade", ["a"]).evaluate(frame).passed

    def test_matches(self, frame):
        result = expect_matches("email", r"[^@]+@[^@]+\.[a-z]+").evaluate(frame)
        assert not result.passed
        assert result.observed == 1

    def test_mean_between(self, frame):
        assert expect_column_mean_between("score", 0.4, 0.7).evaluate(frame).passed
        assert not expect_column_mean_between("score", 0.9, 1.0).evaluate(frame).passed

    def test_missing_column_fails_gracefully(self, frame):
        result = expect_complete("nope").evaluate(frame)
        assert not result.passed
        assert "missing from the frame" in result.detail

    def test_report_aggregation(self, frame):
        report = run_expectations(
            frame, [expect_unique("id"), expect_complete("grade")]
        )
        assert not report.passed
        assert len(report.failures()) == 1
        assert "FAIL" in report.render()

    def test_as_issues_adapter(self, frame):
        report = run_expectations(frame, [expect_complete("grade")])
        issues = report.as_issues()
        assert len(issues) == 1
        assert issues[0].severity == "error"
        assert issues[0].check == "expectation:complete"


class TestEdgeCases:
    """Untested failure modes: all-NaN columns, empty frames, zero-row schemas."""

    @pytest.fixture()
    def all_nan(self):
        return DataFrame({"x": [float("nan")] * 4, "s": ["a", "b", "a", "b"]})

    @pytest.fixture()
    def empty(self):
        return DataFrame(
            {"x": np.asarray([], dtype=float), "s": np.asarray([], dtype=str)}
        )

    def test_all_nan_column_expectations(self, all_nan):
        result = expect_complete("x").evaluate(all_nan)
        assert not result.passed and result.observed == 0.0
        # Range checks are vacuous over zero present values.
        assert expect_in_range("x", 0.0, 1.0).evaluate(all_nan).passed
        # A NaN mean is a failure, not a crash.
        mean_result = expect_column_mean_between("x", 0.0, 1.0).evaluate(all_nan)
        assert not mean_result.passed
        assert np.isnan(mean_result.observed)

    def test_all_nan_schema_roundtrip(self, all_nan):
        schema = infer_schema(all_nan)
        assert schema.columns["x"].completeness == 0.0
        assert schema.columns["x"].minimum is None
        assert schema.columns["x"].maximum is None
        assert validate_schema(all_nan, schema).passed

    def test_empty_frame_expectations(self, empty):
        report = run_expectations(
            empty,
            [
                expect_complete("x"),
                expect_unique("x"),
                expect_in_range("x", 0.0, 1.0),
                expect_in_set("s", ["a"]),
                expect_matches("s", r"[a-z]+"),
            ],
        )
        assert report.passed
        assert "PASS" in report.render()
        # Statistics over zero rows fail cleanly instead of crashing.
        assert not expect_column_mean_between("x", 0.0, 1.0).evaluate(empty).passed

    def test_zero_row_schema_inference_is_unconstraining(self, empty):
        schema = infer_schema(empty)
        # No evidence => no domain / range constraints.
        assert schema.columns["s"].categories is None
        assert schema.columns["x"].minimum is None
        assert validate_schema(empty, schema).passed
        # A later non-empty batch must not be rejected by an empty schema.
        batch = DataFrame({"x": [0.25, 0.75], "s": ["a", "b"]})
        assert validate_schema(batch, schema).passed


class TestSchemaInference:
    @pytest.fixture(scope="class")
    def letters(self):
        return generate_hiring_data(n=300, seed=1)["letters"]

    def test_clean_data_validates_against_own_schema(self, letters):
        schema = infer_schema(letters)
        assert validate_schema(letters, schema).passed

    def test_fresh_batch_validates(self, letters):
        schema = infer_schema(letters)
        fresh = generate_hiring_data(n=200, seed=9)["letters"]
        report = validate_schema(fresh, schema)
        # Same generator, different seed: ranges may stretch slightly but
        # the categorical domains and kinds are identical.
        assert all(
            "unexpected values" not in r.detail for r in report.failures()
        )

    @pytest.mark.parametrize(
        "inject,column",
        [
            (lambda f: inject_missing(f, "employer_rating", 0.3, seed=1), "complete"),
            (lambda f: inject_outliers(f, "age", 0.1, magnitude=10.0, seed=2), "in_range"),
            (lambda f: inject_typos(f, "degree", 0.2, seed=3), "in_set"),
            (
                lambda f: inject_distribution_shift(f, "employer_rating", 0.4, shift=5.0, seed=4),
                "in_range",
            ),
        ],
    )
    def test_error_families_detected(self, letters, inject, column):
        schema = infer_schema(letters)
        dirty, __ = inject(letters)
        report = validate_schema(dirty, schema)
        assert not report.passed
        assert any(r.name == column for r in report.failures())

    def test_kind_change_detected(self, letters):
        schema = infer_schema(letters)
        mutated = letters.copy()
        mutated["age"] = [str(v) for v in letters["age"].to_list()]
        report = validate_schema(mutated, schema)
        assert any(r.name == "kind" for r in report.failures())

    def test_int_float_kinds_compatible(self, letters):
        schema = infer_schema(letters)
        mutated = letters.copy()
        mutated["age"] = [float(v) for v in letters["age"].to_list()]
        report = validate_schema(mutated, schema)
        assert not any(r.name == "kind" for r in report.failures())

    def test_high_cardinality_strings_skip_domain(self, letters):
        schema = infer_schema(letters)
        assert schema.columns["letter_text"].categories is None
        assert schema.columns["degree"].categories is not None

    def test_schema_plugs_into_screener(self, letters):
        from repro.learn import ColumnTransformer, StandardScaler
        from repro.pipeline import PipelinePlan, PipelineScreener, execute

        schema = infer_schema(letters)
        dirty, __ = inject_outliers(letters, "age", 0.1, magnitude=10.0, seed=5)
        plan = PipelinePlan()
        sink = plan.source("t").encode(
            ColumnTransformer([(StandardScaler(), ["age", "employer_rating"])]),
            label_column="sentiment",
        )
        result = execute(sink, {"t": dirty})
        screener = PipelineScreener(
            check_label_errors=False,
            extra_checks=[lambda r: validate_schema(r.frame, schema).as_issues()],
        )
        report = screener.screen(result)
        assert not report.passed
