"""Stability metrics (the paper's Figure 1 "Stability Metric" panel)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = ["prediction_entropy", "mean_prediction_entropy", "disagreement_rate"]


def prediction_entropy(probs: Any) -> np.ndarray:
    """Shannon entropy (nats) of each row of a probability matrix."""
    probs = np.asarray(probs, dtype=float)
    clipped = np.clip(probs, 1e-12, None)
    return -np.sum(clipped * np.log(clipped), axis=1)


def mean_prediction_entropy(probs: Any) -> float:
    """Average prediction entropy — the scalar shown in Figure 1."""
    return float(np.mean(prediction_entropy(probs)))


def disagreement_rate(predictions: Sequence[Any]) -> float:
    """Fraction of examples on which an ensemble of prediction vectors disagrees.

    Used to quantify dataset-multiplicity instability: each element of
    ``predictions`` is the label vector from a model trained on one possible
    world.
    """
    arrays = [np.asarray(p) for p in predictions]
    if len(arrays) < 2:
        return 0.0
    stacked = np.vstack(arrays)
    reference = stacked[0]
    unanimous = np.all(stacked == reference, axis=0)
    return float(1.0 - np.mean(unanimous))
