"""Group-fairness metrics (the paper's Figure 1 "Fairness Metric" panel).

All metrics take a *group* array (the protected attribute, e.g. race or sex)
and report a **difference**: 0 means perfectly fair, larger is worse. This
directional convention is what :mod:`repro.importance.gopher` optimises when
attributing unfairness back to training data.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "group_rates",
    "demographic_parity_difference",
    "equalized_odds_difference",
    "predictive_parity_difference",
]


def _check(y_true: Any, y_pred: Any, group: Any) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    group = np.asarray(group)
    if not (len(y_true) == len(y_pred) == len(group)):
        raise ValueError("y_true, y_pred and group must have equal length")
    if len(y_true) == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred, group


def group_rates(y_true: Any, y_pred: Any, group: Any, positive: Any) -> dict:
    """Per-group selection rate, TPR, FPR, and precision."""
    y_true, y_pred, group = _check(y_true, y_pred, group)
    out: dict = {}
    for g in np.unique(group):
        members = group == g
        yt, yp = y_true[members], y_pred[members]
        selected = yp == positive
        actual = yt == positive
        tp = np.sum(selected & actual)
        out[g.item() if hasattr(g, "item") else g] = {
            "selection_rate": float(np.mean(selected)),
            "tpr": float(tp / actual.sum()) if actual.sum() else 0.0,
            "fpr": float(np.sum(selected & ~actual) / (~actual).sum())
            if (~actual).sum()
            else 0.0,
            "precision": float(tp / selected.sum()) if selected.sum() else 0.0,
            "size": int(members.sum()),
        }
    return out


def _max_gap(values: list[float]) -> float:
    return float(max(values) - min(values)) if values else 0.0


def demographic_parity_difference(y_true: Any, y_pred: Any, group: Any, positive: Any) -> float:
    """Largest gap in positive-prediction rate between any two groups."""
    rates = group_rates(y_true, y_pred, group, positive)
    return _max_gap([r["selection_rate"] for r in rates.values()])


def equalized_odds_difference(y_true: Any, y_pred: Any, group: Any, positive: Any) -> float:
    """Largest TPR or FPR gap between any two groups (Hardt et al. style)."""
    rates = group_rates(y_true, y_pred, group, positive)
    tpr_gap = _max_gap([r["tpr"] for r in rates.values()])
    fpr_gap = _max_gap([r["fpr"] for r in rates.values()])
    return max(tpr_gap, fpr_gap)


def predictive_parity_difference(y_true: Any, y_pred: Any, group: Any, positive: Any) -> float:
    """Largest precision (positive predictive value) gap between groups."""
    rates = group_rates(y_true, y_pred, group, positive)
    return _max_gap([r["precision"] for r in rates.values()])
