"""ArgusEyes-style continuous pipeline screening (Schelter et al. [72]).

A :class:`PipelineScreener` bundles a policy of inspections and runs them as
a gate: the pipeline "passes" only if no issue at or above the failure
severity is found — the shape of a CI check for ML pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..frame import DataFrame
from .execute import PipelineResult
from .inspections import (
    Issue,
    feature_constant_screen,
    group_shrinkage,
    join_match_rate,
    label_error_screen,
    missing_value_report,
    train_test_overlap,
)

__all__ = ["ScreeningReport", "PipelineScreener"]

_SEVERITY_ORDER = {"info": 0, "warning": 1, "error": 2}


@dataclass
class ScreeningReport:
    """Outcome of one screening run."""

    issues: list[Issue]
    fail_at: str = "error"

    @property
    def passed(self) -> bool:
        threshold = _SEVERITY_ORDER[self.fail_at]
        return all(_SEVERITY_ORDER[i.severity] < threshold for i in self.issues)

    def by_severity(self, severity: str) -> list[Issue]:
        return [i for i in self.issues if i.severity == severity]

    def render(self) -> str:
        if not self.issues:
            return "screening: PASS (no issues)"
        lines = [f"screening: {'PASS' if self.passed else 'FAIL'}"]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)


@dataclass
class PipelineScreener:
    """A reusable screening policy over pipeline runs.

    Parameters
    ----------
    protected_columns:
        Columns whose group balance is monitored through the pipeline.
    side_sources:
        Side tables whose join match rate is checked.
    test_source / test_frame:
        When provided, the provenance-based train/test leakage check runs.
    fail_at:
        Minimum severity that makes :attr:`ScreeningReport.passed` False.
    """

    protected_columns: list[str] = field(default_factory=list)
    side_sources: list[str] = field(default_factory=list)
    check_label_errors: bool = True
    check_missing: bool = True
    check_constant_features: bool = True
    fail_at: str = "error"
    extra_checks: list[Callable[[PipelineResult], list[Issue]]] = field(
        default_factory=list
    )

    def screen(
        self,
        result: PipelineResult,
        source_frames: dict[str, DataFrame] | None = None,
        test_frame: DataFrame | None = None,
        test_source: str | None = None,
    ) -> ScreeningReport:
        issues: list[Issue] = []
        source_frames = source_frames or {}
        for column in self.protected_columns:
            for name, frame in source_frames.items():
                if column in frame:
                    issues.extend(group_shrinkage(frame, result, column))
        for side in self.side_sources:
            issues.extend(join_match_rate(result, side))
        if self.check_missing:
            issues.extend(missing_value_report(result))
        if test_frame is not None and test_source is not None:
            issues.extend(train_test_overlap(result, test_frame, test_source))
        if self.check_label_errors and result.X is not None:
            issues.extend(label_error_screen(result))
        if self.check_constant_features and result.X is not None:
            issues.extend(feature_constant_screen(result))
        for check in self.extra_checks:
            issues.extend(check(result))
        return ScreeningReport(issues=issues, fail_at=self.fail_at)
