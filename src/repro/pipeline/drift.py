"""Distribution-drift inspections for pipeline outputs.

Extends the mlinspect-style checks with statistical drift detection between
two datasets (training output vs serving/validation output, or this week's
pipeline run vs last week's): Kolmogorov–Smirnov tests on numeric columns,
total-variation distance on categorical columns, and class-balance shift on
the label. Out-of-distribution values are one of the error families in the
paper's Figure 1; these checks are how a screening policy notices them.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import ks_2samp

from ..frame import DataFrame
from .inspections import Issue

__all__ = [
    "numeric_drift",
    "categorical_drift",
    "label_balance_shift",
    "drift_report",
]


def numeric_drift(
    reference: DataFrame,
    current: DataFrame,
    column: str,
    p_threshold: float = 0.01,
) -> list[Issue]:
    """Two-sample KS test on a numeric column; flags significant drift."""
    ref = reference.column(column)
    cur = current.column(column)
    if not (ref.is_numeric and cur.is_numeric):
        raise TypeError(f"column {column!r} is not numeric in both frames")
    a = ref.to_numpy(fill=np.nan).astype(float)
    b = cur.to_numpy(fill=np.nan).astype(float)
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    if len(a) < 5 or len(b) < 5:
        return [
            Issue(
                check="numeric_drift",
                severity="info",
                message=f"column {column!r}: too few values for a drift test",
            )
        ]
    statistic, p_value = ks_2samp(a, b)
    if p_value < p_threshold:
        return [
            Issue(
                check="numeric_drift",
                severity="warning",
                message=(
                    f"column {column!r} drifted (KS statistic {statistic:.3f}, "
                    f"p = {p_value:.2g})"
                ),
                details={"column": column, "statistic": float(statistic),
                         "p_value": float(p_value)},
            )
        ]
    return []


def categorical_drift(
    reference: DataFrame,
    current: DataFrame,
    column: str,
    tv_threshold: float = 0.15,
) -> list[Issue]:
    """Total-variation distance between category distributions."""
    ref_counts = reference.column(column).value_counts()
    cur_counts = current.column(column).value_counts()
    categories = set(ref_counts) | set(cur_counts)
    ref_total = sum(ref_counts.values()) or 1
    cur_total = sum(cur_counts.values()) or 1
    tv = 0.5 * sum(
        abs(ref_counts.get(c, 0) / ref_total - cur_counts.get(c, 0) / cur_total)
        for c in categories
    )
    if tv > tv_threshold:
        return [
            Issue(
                check="categorical_drift",
                severity="warning",
                message=(
                    f"column {column!r} category distribution shifted "
                    f"(TV distance {tv:.3f} > {tv_threshold:g})"
                ),
                details={"column": column, "tv_distance": float(tv)},
            )
        ]
    return []


def label_balance_shift(
    reference: DataFrame,
    current: DataFrame,
    label_column: str,
    threshold: float = 0.1,
) -> list[Issue]:
    """Flag when any class's share moves by more than ``threshold``."""
    ref_counts = reference.column(label_column).value_counts()
    cur_counts = current.column(label_column).value_counts()
    ref_total = sum(ref_counts.values()) or 1
    cur_total = sum(cur_counts.values()) or 1
    issues = []
    for cls in set(ref_counts) | set(cur_counts):
        before = ref_counts.get(cls, 0) / ref_total
        after = cur_counts.get(cls, 0) / cur_total
        if abs(after - before) > threshold:
            issues.append(
                Issue(
                    check="label_balance_shift",
                    severity="warning",
                    message=(
                        f"class {cls!r} share moved {before:.0%} → {after:.0%}"
                    ),
                    details={"class": cls, "before": before, "after": after},
                )
            )
    return issues


def drift_report(
    reference: DataFrame,
    current: DataFrame,
    numeric_columns: list[str] | None = None,
    categorical_columns: list[str] | None = None,
    label_column: str | None = None,
) -> list[Issue]:
    """Run every applicable drift check over two frames."""
    issues: list[Issue] = []
    shared = [c for c in reference.columns if c in current]
    if numeric_columns is None:
        numeric_columns = [
            c for c in shared
            if reference.column(c).is_numeric and current.column(c).is_numeric
        ]
    if categorical_columns is None:
        categorical_columns = [
            c for c in shared
            if reference.column(c).dtype_kind == "string" and c != label_column
        ]
    for column in numeric_columns:
        issues.extend(numeric_drift(reference, current, column))
    for column in categorical_columns:
        issues.extend(categorical_drift(reference, current, column))
    if label_column is not None and label_column in reference and label_column in current:
        issues.extend(label_balance_shift(reference, current, label_column))
    return issues
