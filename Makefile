# Developer entry points for the repro library.

# PYTHONPATH=src lets every target run in a fresh checkout without an
# editable install (`setup.py develop`).
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test bench examples all

install:
	python setup.py develop

test:
	$(PYTHONPATH_SRC) python -m pytest tests/

bench:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHONPATH_SRC) python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

all: test bench examples
