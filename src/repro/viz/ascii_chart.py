"""ASCII line and bar charts.

matplotlib is not available offline, so the figures in the paper (which are
all scalar-series line/bar plots) are rendered as text. The chart functions
return strings so benchmarks can embed them in their reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_chart", "bar_chart", "histogram", "reliability_chart"]


def _format_value(value: float) -> str:
    return format(value, ".4g")


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x-values as an ASCII plot."""
    if not series:
        raise ValueError("no series to plot")
    xs = [float(x) for x in xs]
    all_ys = [float(y) for ys in series.values() for y in ys]
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length does not match x-values")
    y_min, y_max = min(all_ys), max(all_ys)
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for k, (name, ys) in enumerate(series.items()):
        marker = markers[k % len(markers)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((float(y) - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(_format_value(y_min)), len(_format_value(y_max)))
    for i, row in enumerate(grid):
        if i == 0:
            label = _format_value(y_max).rjust(label_width)
        elif i == height - 1:
            label = _format_value(y_min).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        _format_value(x_min)
        + " " * max(1, width - len(_format_value(x_min)) - len(_format_value(x_max)))
        + _format_value(x_max)
    )
    lines.append(" " * (label_width + 2) + x_axis)
    if x_label:
        lines.append(" " * (label_width + 2) + x_label)
    legend = "   ".join(
        f"{markers[k % len(markers)]} = {name}" for k, name in enumerate(series)
    )
    lines.append("legend: " + legend + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("nothing to plot")
    values = [float(v) for v in values]
    biggest = max(abs(v) for v in values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "█" * max(0, int(round(abs(value) / biggest * width)))
        lines.append(f"{str(label).rjust(label_width)} | {bar} {_format_value(value)}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float], bins: int = 10, title: str = "", width: int = 50
) -> str:
    """Render a histogram of a numeric sample as horizontal bars."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("nothing to plot")
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / span * bins))
        counts[idx] += 1
    labels = [
        f"[{_format_value(lo + span * i / bins)}, {_format_value(lo + span * (i + 1) / bins)})"
        for i in range(bins)
    ]
    return bar_chart(labels, counts, title=title, width=width)


def reliability_chart(table: Sequence[dict], width: int = 40) -> str:
    """Render a reliability diagram from :func:`repro.learn.reliability_table`.

    Each row shows the bin, its mean confidence (`·`), and the empirical
    positive rate (`█`): a calibrated model has the two aligned per bin.
    """
    if not table:
        raise ValueError("nothing to plot")
    lines = ["bin            confidence (·) vs empirical rate (█)"]
    for row in table:
        conf = int(round(row["mean_confidence"] * (width - 1)))
        rate = int(round(row["empirical_rate"] * (width - 1)))
        track = [" "] * width
        track[rate] = "█"
        if track[conf] == " ":
            track[conf] = "·"
        lines.append(
            f"{row['bin']:<12} |{''.join(track)}| n={row['count']}"
        )
    return "\n".join(lines)
