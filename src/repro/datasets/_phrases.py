"""Phrase banks for the synthetic recommendation-letter generator.

Each phrase has a polarity; letters are sampled as phrase sequences and the
ground-truth sentiment label is derived from the polarity balance. The
polarity-bearing words intentionally overlap with
:mod:`repro.text.lexicon` so the offline embedding carries learnable signal,
mirroring how a pretrained encoder would expose sentiment.
"""

from __future__ import annotations

__all__ = ["POSITIVE_PHRASES", "NEGATIVE_PHRASES", "NEUTRAL_PHRASES", "OPENINGS", "CLOSINGS"]

POSITIVE_PHRASES = [
    "{name} showed outstanding initiative on every project we assigned",
    "their meticulous attention to detail was crucial to the release",
    "{name} is an exceptional collaborator who inspired the whole team",
    "we found {name} to be remarkably dependable under pressure",
    "their innovative solutions saved the department considerable effort",
    "{name} delivered consistently excellent analyses ahead of schedule",
    "colleagues describe {name} as diligent, resourceful and trustworthy",
    "their insightful questions reshaped our approach in admirable ways",
    "{name} was proactive in mentoring junior staff with exemplary patience",
    "the quality of their documentation was superb and thorough",
    "{name} combined rigorous methods with an inspiring work ethic",
    "their contributions were impressive and frequently commendable",
    "{name} proved to be a brilliant and motivated problem solver",
    "their stellar performance earned the trust of every stakeholder",
    "{name} remained conscientious and reliable throughout the engagement",
]

NEGATIVE_PHRASES = [
    "{name} engaged in actions that undermined our project goals",
    "their careless handling of records raised troubling questions",
    "we found {name} to be unreliable when deadlines approached",
    "their dismissive attitude toward feedback was concerning",
    "{name} struggled to cooperate with the rest of the team",
    "their disorganized reports created problematic delays",
    "{name} repeatedly missed commitments and ignored reminders",
    "colleagues described their conduct as abrasive and unprofessional",
    "their inconsistent output jeopardized the quarterly deliverable",
    "{name} resisted every attempt to align on shared priorities",
    "their negligent review process led to disappointing results",
    "we observed erratic judgement and inadequate preparation",
    "{name} was evasive when asked to explain the missed milestones",
    "their indifferent engagement slowed the entire initiative",
    "{name} produced mediocre work despite repeated guidance",
]

NEUTRAL_PHRASES = [
    "{name} joined our group in the spring and stayed for two years",
    "their responsibilities included reporting and data entry",
    "{name} worked from the downtown office most of the week",
    "the role required regular coordination with external vendors",
    "{name} attended the standard onboarding and compliance training",
    "their team handled intake requests for the regional branch",
    "{name} expressed a willingness to develop better time management",
    "although thorough, their pace sometimes slowed progress somewhat",
    "{name} occasionally travelled to the satellite office for reviews",
    "their schedule partly overlapped with the night operations team",
]

OPENINGS = [
    "To whom it may concern:",
    "Dear hiring committee,",
    "It is my role to comment on {name}'s tenure with us.",
    "I am writing regarding {name}'s application.",
]

CLOSINGS = [
    "Please contact me with any further questions.",
    "I am happy to provide additional context on request.",
    "This assessment reflects my direct experience with {name}.",
    "Sincerely, a former supervisor.",
]
