"""Tests for cleaning oracles, strategies, and iterative loops."""

import numpy as np
import pytest

from repro.cleaning import (
    BudgetExhausted,
    CleaningOracle,
    STRATEGY_NAMES,
    activeclean,
    iterative_cleaning,
    make_strategy,
)
from repro.core import default_featurize
from repro.datasets import load_recommendation_letters, make_classification
from repro.errors import inject_label_errors
from repro.learn import KNeighborsClassifier, LogisticRegression


@pytest.fixture(scope="module")
def dirty_scenario():
    train, valid, __ = load_recommendation_letters(n=260, seed=3)
    dirty, report = inject_label_errors(train, "sentiment", fraction=0.2, seed=3)
    return train, dirty, valid, report


class TestOracle:
    def test_cleans_requested_rows(self, dirty_scenario):
        clean, dirty, __, report = dirty_scenario
        oracle = CleaningOracle(clean)
        repaired = oracle.clean(dirty, report.row_ids[:10].tolist())
        positions = clean.positions_of(report.row_ids[:10])
        for p in positions:
            assert (
                repaired["sentiment"].to_list()[p] == clean["sentiment"].to_list()[p]
            )

    def test_does_not_touch_other_rows(self, dirty_scenario):
        clean, dirty, __, report = dirty_scenario
        oracle = CleaningOracle(clean)
        repaired = oracle.clean(dirty, report.row_ids[:5].tolist())
        untouched = [
            rid for rid in dirty.row_ids.tolist() if rid not in report.row_ids[:5]
        ]
        positions = dirty.positions_of(untouched[:20])
        for p in positions:
            assert repaired["sentiment"].to_list()[p] == dirty["sentiment"].to_list()[p]

    def test_budget_enforced(self, dirty_scenario):
        clean, dirty, *__ = dirty_scenario
        oracle = CleaningOracle(clean, budget=5)
        oracle.clean(dirty, dirty.row_ids[:5].tolist())
        with pytest.raises(BudgetExhausted):
            oracle.clean(dirty, dirty.row_ids[5:7].tolist())

    def test_recleaning_is_free(self, dirty_scenario):
        clean, dirty, *__ = dirty_scenario
        oracle = CleaningOracle(clean, budget=5)
        ids = dirty.row_ids[:5].tolist()
        oracle.clean(dirty, ids)
        oracle.clean(dirty, ids)  # no BudgetExhausted
        assert oracle.spent == 5

    def test_unknown_row_ids_ignored(self, dirty_scenario):
        clean, dirty, *__ = dirty_scenario
        oracle = CleaningOracle(clean)
        repaired = oracle.clean(dirty, [999_999])
        assert repaired.equals(dirty)
        assert oracle.spent == 0

    def test_remaining_budget(self, dirty_scenario):
        clean, dirty, *__ = dirty_scenario
        oracle = CleaningOracle(clean, budget=10)
        oracle.clean(dirty, dirty.row_ids[:4].tolist())
        assert oracle.remaining == 6


class TestStrategies:
    def test_all_strategies_return_permutations(self, binary_data):
        Xtr, ytr, Xv, yv = binary_data
        for name in STRATEGY_NAMES:
            strategy = make_strategy(
                name, model=LogisticRegression(max_iter=40), n_permutations=3, n_samples=20
            )
            ranking = strategy(Xtr[:40], ytr[:40], Xv, yv)
            assert sorted(ranking.tolist()) == list(range(40)), name

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            make_strategy("magic")

    def test_knn_shapley_ranks_flipped_labels_low(self):
        rng = np.random.default_rng(0)
        X, y = make_classification(n=120, n_features=2, n_informative=2, seed=0)
        dirty = y.copy()
        flipped = rng.choice(120, 20, replace=False)
        dirty[flipped] = 1 - dirty[flipped]
        strategy = make_strategy("knn_shapley")
        ranking = strategy(X, dirty, X[:40], y[:40])
        flagged = set(ranking[:20].tolist())
        assert len(flagged & set(flipped.tolist())) >= 8  # ≫ random ≈ 3.3


class TestIterativeCleaning:
    def test_prioritised_cleaning_beats_random(self, dirty_scenario):
        clean, dirty, valid, __ = dirty_scenario
        model = KNeighborsClassifier(5)
        curves = {}
        for name in ("knn_shapley", "random"):
            oracle = CleaningOracle(clean)
            curves[name] = iterative_cleaning(
                dirty, valid, default_featurize, "sentiment", oracle,
                make_strategy(name), model, batch_size=25, n_rounds=3,
                strategy_name=name,
            )
        assert (
            curves["knn_shapley"].area_under_curve()
            >= curves["random"].area_under_curve()
        )

    def test_curve_structure(self, dirty_scenario):
        clean, dirty, valid, __ = dirty_scenario
        oracle = CleaningOracle(clean)
        curve = iterative_cleaning(
            dirty, valid, default_featurize, "sentiment", oracle,
            make_strategy("confident_learning"), LogisticRegression(max_iter=40),
            batch_size=10, n_rounds=2,
        )
        assert curve.budgets() == [0, 10, 20]
        assert len(curve.accuracies()) == 3
        assert curve.records[0]["round"] == 0

    def test_cleaning_improves_over_dirty(self, dirty_scenario):
        clean, dirty, valid, __ = dirty_scenario
        oracle = CleaningOracle(clean)
        curve = iterative_cleaning(
            dirty, valid, default_featurize, "sentiment", oracle,
            make_strategy("knn_shapley"), KNeighborsClassifier(5),
            batch_size=30, n_rounds=3,
        )
        assert curve.final_accuracy >= curve.initial_accuracy

    def test_no_recleaning_same_rows(self, dirty_scenario):
        clean, dirty, valid, __ = dirty_scenario
        oracle = CleaningOracle(clean)
        iterative_cleaning(
            dirty, valid, default_featurize, "sentiment", oracle,
            make_strategy("random"), LogisticRegression(max_iter=30),
            batch_size=20, n_rounds=3,
        )
        assert oracle.spent == 60  # 3 disjoint batches

    def test_ledger_hook_records_cleaning_event(self, dirty_scenario, tmp_path):
        from repro.obs import RunLedger

        clean, dirty, valid, __ = dirty_scenario
        oracle = CleaningOracle(clean)
        ledger = RunLedger(tmp_path / "runs.jsonl")
        curve = iterative_cleaning(
            dirty, valid, default_featurize, "sentiment", oracle,
            make_strategy("random"), LogisticRegression(max_iter=30),
            batch_size=10, n_rounds=2, strategy_name="random", ledger=ledger,
        )
        (record,) = ledger.load()
        assert record.kind == "cleaning"
        assert record.config["strategy"] == "random"
        assert record.stats["n_cleaned"] == curve.records[-1]["n_cleaned"]
        assert record.stats["final_accuracy"] == curve.final_accuracy
        assert record.wall_time_s > 0


class TestActiveClean:
    def test_curve_shape_and_improvement(self, dirty_scenario):
        clean, dirty, valid, __ = dirty_scenario
        oracle = CleaningOracle(clean)
        curve = activeclean(
            dirty, valid, default_featurize, "sentiment", oracle,
            batch_size=30, n_rounds=3, seed=0,
        )
        assert curve.strategy == "activeclean"
        assert curve.budgets() == [0, 30, 60, 90]
        assert curve.final_accuracy >= curve.initial_accuracy - 0.05


class TestPipelineIterativeCleaning:
    """The hands-on session's second task: cleaning through the pipeline."""

    def _setup(self):
        from repro.datasets import generate_hiring_data
        from repro.errors import inject_label_errors
        from repro.learn.model_selection import split_frame
        from tests.pipeline.conftest import build_letters_pipeline

        data = generate_hiring_data(n=600, seed=7)
        train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
        dirty, report = inject_label_errors(train, "sentiment", fraction=0.25, seed=4)
        __, sink = build_letters_pipeline()
        side = {
            "jobdetail_df": data["jobdetail"],
            "social_df": data["social"],
        }
        return sink, train, dirty, valid, side, report

    def test_curve_improves_and_targets_pipeline_rows(self):
        from repro.cleaning import CleaningOracle, pipeline_iterative_cleaning

        sink, clean_train, dirty, valid, side, report = self._setup()
        oracle = CleaningOracle(clean_train)
        curve = pipeline_iterative_cleaning(
            sink,
            {"train_df": dirty, **side},
            {"train_df": valid, **side},
            train_source="train_df",
            oracle=oracle,
            model=KNeighborsClassifier(5),
            batch_size=25,
            n_rounds=3,
        )
        assert curve.budgets() == [0, 25, 50, 75]
        assert curve.final_accuracy >= curve.initial_accuracy - 0.02
        # Only rows that flow through the pipeline are worth oracle budget.
        from repro.pipeline import execute

        surviving = set(
            execute(sink, {"train_df": dirty, **side}, fit=True)
            .provenance.source_row_ids("train_df")
            .tolist()
        )
        assert oracle.cleaned_row_ids <= surviving

    def test_cleaning_hits_injected_errors_above_base_rate(self):
        from repro.cleaning import CleaningOracle, pipeline_iterative_cleaning
        from repro.pipeline import execute

        sink, clean_train, dirty, valid, side, report = self._setup()
        oracle = CleaningOracle(clean_train)
        pipeline_iterative_cleaning(
            sink,
            {"train_df": dirty, **side},
            {"train_df": valid, **side},
            train_source="train_df",
            oracle=oracle,
            model=KNeighborsClassifier(5),
            batch_size=25,
            n_rounds=2,
        )
        surviving = set(
            execute(sink, {"train_df": dirty, **side}, fit=True)
            .provenance.source_row_ids("train_df")
            .tolist()
        )
        surviving_errors = set(report.row_ids.tolist()) & surviving
        hits = len(oracle.cleaned_row_ids & surviving_errors)
        base_rate = len(surviving_errors) / max(len(surviving), 1)
        assert hits / max(oracle.spent, 1) > base_rate
