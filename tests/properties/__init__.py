"""Property-based, metamorphic, and differential correctness suites.

Unlike the unit tests, which pin concrete examples, these tests assert
*relations* that must hold for whole families of hypothesis-generated
inputs: serialisation round-trips, algebraic invariants of transformers,
the Shapley axioms, and bit-identity between implementation variants that
claim to compute the same thing.
"""
