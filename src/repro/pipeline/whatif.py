"""Data-centric what-if analysis over ML pipelines (Grafberger et al. [23]).

A *what-if analysis* asks how the end-to-end pipeline outcome would change
under data-centric variations: a different imputation strategy, a different
filter predicate, a side table dropped. Naively this means re-running the
whole pipeline once per variant; mlwhatif's observation is that variants
share most of their plan, so shared subplans should be executed **once**.

This module implements that optimisation on top of the provenance executor:
variants are pipeline sinks that *share node objects* for their common
prefix, and one node-result cache is threaded through all executions, so a
shared join is computed a single time regardless of how many variants
consume it. The report records the measured saving against naive
re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..frame import DataFrame
from .execute import PipelineResult, execute
from .operators import Node

__all__ = ["WhatIfVariant", "WhatIfReport", "run_what_if"]


@dataclass
class WhatIfVariant:
    """One pipeline variation under analysis."""

    name: str
    sink: Node


@dataclass
class WhatIfReport:
    """Outcome of a what-if analysis run."""

    scores: dict[str, float]
    results: dict[str, PipelineResult]
    executed_operators: int
    naive_operators: int

    @property
    def sharing_ratio(self) -> float:
        """Fraction of naive operator executions avoided by sharing."""
        if self.naive_operators == 0:
            return 0.0
        return 1.0 - self.executed_operators / self.naive_operators

    def best(self) -> tuple[str, float]:
        name = max(self.scores, key=self.scores.get)
        return name, self.scores[name]

    def render(self) -> str:
        lines = ["what-if analysis:"]
        for name, score in sorted(self.scores.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<32} score = {score:.4f}")
        lines.append(
            f"  shared execution: {self.executed_operators} operator runs vs "
            f"{self.naive_operators} naive ({self.sharing_ratio:.0%} saved)"
        )
        return "\n".join(lines)


def run_what_if(
    variants: list[WhatIfVariant],
    sources: Mapping[str, DataFrame],
    evaluate: Callable[[PipelineResult], float],
    fit: bool = True,
) -> WhatIfReport:
    """Execute every variant with shared-subplan reuse and score each.

    Parameters
    ----------
    variants:
        Pipeline sinks built over the *same* :class:`PipelinePlan` so that
        common prefixes are literally shared node objects (the sharing unit).
    sources:
        Input frames, bound once for all variants.
    evaluate:
        Scores one executed variant, e.g. a closure training a model on
        ``result.X``/``result.y`` and returning validation accuracy.
    """
    if not variants:
        raise ValueError("no variants to analyse")
    names = [v.name for v in variants]
    if len(set(names)) != len(names):
        raise ValueError("variant names must be unique")

    plan = variants[0].sink.plan
    for variant in variants:
        if variant.sink.plan is not plan:
            raise ValueError(
                "all variants must be built over the same PipelinePlan "
                "(sharing requires shared node objects)"
            )

    cache: dict[int, Any] = {}
    scores: dict[str, float] = {}
    results: dict[str, PipelineResult] = {}
    naive = 0
    for variant in variants:
        # Naive cost: every relational operator of the variant, re-run.
        naive += sum(
            1 for node in plan.topological_order(variant.sink) if node.kind != "encode"
        )
        result = execute(variant.sink, sources, fit=fit, cache=cache)
        results[variant.name] = result
        scores[variant.name] = float(evaluate(result))
    executed = len(cache)
    return WhatIfReport(
        scores=scores,
        results=results,
        executed_operators=executed,
        naive_operators=naive,
    )
