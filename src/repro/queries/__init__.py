"""Predictive query processing (Figure 1's fourth pipeline stage)."""

from .complaints import (
    AggregateComplaint,
    AggregateResolution,
    resolve_aggregate_complaint,
)
from .predictive import PredictiveQuery, QueryResult

__all__ = [
    "AggregateComplaint",
    "AggregateResolution",
    "resolve_aggregate_complaint",
    "PredictiveQuery",
    "QueryResult",
]
