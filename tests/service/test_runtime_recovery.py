"""Crash recovery: a SIGKILL'd runtime restarts and finishes every job.

The acceptance contract of the service layer: kill -9 the whole runtime
process mid-run, restart over the same journal and checkpoint directory,
and (1) every job the dead runtime accepted reaches a terminal state, and
(2) resumed valuation jobs produce values bit-identical to a run that was
never interrupted.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.importance import SubsetUtility, ValuationEngine
from repro.service import (
    JobJournal,
    JobRequest,
    JobRuntime,
    JobState,
    register_valuation,
)


def tanh_game(n: int = 8, seed: int = 3) -> SubsetUtility:
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, n)


class TestInProcessRecovery:
    def test_queued_jobs_survive_a_dead_runtime(self, tmp_path):
        """A runtime that journals submissions but never runs them stands in
        for a crash between admission and execution; a second runtime over
        the same journal finishes the work bit-identically."""

        async def main():
            journal = tmp_path / "journal.jsonl"
            dead = JobRuntime(journal=journal, checkpoint_dir=tmp_path / "ck")
            register_valuation(dead, lambda p: ValuationEngine(tanh_game()))
            requests = [
                JobRequest(
                    kind="valuation",
                    params={"n_permutations": 12, "seed": s},
                    tenant=f"t{s}",
                    dedup=False,
                )
                for s in (1, 2)
            ]
            for request in requests:
                dead.submit(request)  # journaled + queued, never started
            assert len(JobJournal(journal).in_flight()) == 2

            revived = JobRuntime(journal=journal, checkpoint_dir=tmp_path / "ck")
            register_valuation(revived, lambda p: ValuationEngine(tanh_game()))
            async with revived:
                pass  # start() recovers; __aexit__ drains
            recovered = [job for job in revived.jobs.values() if job.recovered]
            assert len(recovered) == 2
            assert all(job.state is JobState.COMPLETED for job in recovered)
            assert JobJournal(journal).in_flight() == []
            for job in recovered:
                reference = ValuationEngine(tanh_game()).run_permutations(
                    12, seed=job.request.params["seed"]
                )
                assert np.array_equal(job.result.values(), reference.values())

        asyncio.run(main())

    def test_recovered_job_with_expired_deadline_degrades(self, tmp_path):
        async def main():
            journal = tmp_path / "journal.jsonl"
            dead = JobRuntime(journal=journal)
            register_valuation(dead, lambda p: ValuationEngine(tanh_game()))
            dead.submit(
                JobRequest(
                    kind="valuation",
                    params={"n_permutations": 8, "seed": 0},
                    deadline_s=0.02,
                )
            )
            await asyncio.sleep(0.05)  # deadline expires while "down"

            revived = JobRuntime(journal=journal)
            register_valuation(revived, lambda p: ValuationEngine(tanh_game()))
            async with revived:
                pass
            (job,) = [j for j in revived.jobs.values() if j.recovered]
            # Deadlines are end-to-end from the original submission: the
            # revived job runs with a zero budget and degrades explicitly
            # instead of running unbounded or being dropped.
            assert job.state is JobState.DEGRADED
            assert job.stop_reason == "deadline"
            assert job.result.n_evaluations == 0

        asyncio.run(main())


@pytest.mark.slow
def test_kill_minus_nine_runtime_then_resume_is_bit_identical(tmp_path):
    """SIGKILL the whole service process mid-valuation; a fresh runtime over
    the same journal+checkpoints finishes every accepted job, resuming from
    the wave watermark bit-identical to uninterrupted runs."""
    journal_path = tmp_path / "journal.jsonl"
    ck_dir = tmp_path / "ck"
    script = textwrap.dedent(
        f"""
        import asyncio
        import time
        import numpy as np
        from repro.importance import SubsetUtility, ValuationEngine
        from repro.service import JobRequest, JobRuntime, register_valuation

        rng = np.random.default_rng(3)
        w = rng.normal(size=8)

        def func(indices):
            time.sleep(0.004)  # slow enough to be killed mid-run
            idx = np.asarray(indices, dtype=int)
            return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

        async def main():
            runtime = JobRuntime(
                journal={str(journal_path)!r},
                checkpoint_dir={str(ck_dir)!r},
                max_concurrency=2,
            )
            register_valuation(
                runtime, lambda p: ValuationEngine(SubsetUtility(func, 8))
            )
            async with runtime:
                for seed in (5, 6):
                    runtime.submit(JobRequest(
                        kind="valuation",
                        params={{"n_permutations": 60, "seed": seed,
                                 "check_every": 5}},
                        tenant=f"tenant-{{seed}}",
                        dedup=False,
                    ))

        asyncio.run(main())
        """
    )
    env = dict(os.environ, PYTHONPATH="src")
    child = subprocess.Popen([sys.executable, "-c", script], env=env)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:  # wait for a first wave snapshot
        if ck_dir.exists() and any(ck_dir.glob("*.ck.json")):
            break
        if child.poll() is not None:
            break
        time.sleep(0.01)
    child.send_signal(signal.SIGKILL)
    child.wait(timeout=30)

    journal = JobJournal(journal_path)
    in_flight = journal.in_flight()
    if not in_flight:  # pragma: no cover - timing-dependent
        pytest.skip("child finished before the kill landed")

    async def recover():
        runtime = JobRuntime(
            journal=journal_path, checkpoint_dir=ck_dir, max_concurrency=2
        )
        rng = np.random.default_rng(3)
        w = rng.normal(size=8)

        def func(indices):  # same game, without the slowdown
            idx = np.asarray(indices, dtype=int)
            return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

        register_valuation(
            runtime, lambda p: ValuationEngine(SubsetUtility(func, 8))
        )
        async with runtime:
            pass
        return runtime

    runtime = asyncio.run(recover())
    recovered = [job for job in runtime.jobs.values() if job.recovered]
    assert len(recovered) == len(in_flight)

    # (1) Every job the killed runtime accepted reached a terminal state.
    assert JobJournal(journal_path).in_flight() == []
    assert all(job.state is JobState.COMPLETED for job in recovered)

    # (2) Resumed jobs are bit-identical to uninterrupted runs.
    rng = np.random.default_rng(3)
    w = rng.normal(size=8)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    for job in recovered:
        reference = ValuationEngine(SubsetUtility(func, 8)).run_permutations(
            60, seed=job.request.params["seed"], check_every=5
        )
        assert np.array_equal(job.result.values(), reference.values())
        assert job.result.stop_reason == "completed"


class TestRecoveryAudit:
    def test_recover_journals_an_audit_record(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        dead = JobRuntime(journal=journal_path)
        register_valuation(dead, lambda p: ValuationEngine(tanh_game()))
        dead.submit(
            JobRequest(kind="valuation", params={"n_permutations": 4})
        )
        revived = JobRuntime(journal=journal_path)
        recovered = revived.recover()
        assert len(recovered) == 1
        audits = [
            e
            for e in JobJournal(journal_path).events()
            if e["event"] == "recovery_audit"
        ]
        assert len(audits) == 1
        payload = audits[0]["payload"]
        assert payload["recovered_jobs"] == 1
        assert payload["job_ids"] == [recovered[0].job_id]
        assert payload["journal_load"]["n_quarantined"] == 0

    def test_audit_reports_quarantined_journal_lines(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        dead = JobRuntime(journal=journal_path)
        register_valuation(dead, lambda p: ValuationEngine(tanh_game()))
        dead.submit(
            JobRequest(kind="valuation", params={"n_permutations": 4})
        )
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"_env": 2, "crc": "00000000", "data": {"x": 1}}\n')
        revived = JobRuntime(journal=journal_path)
        revived.recover()
        audits = [
            e
            for e in JobJournal(journal_path).events()
            if e["event"] == "recovery_audit"
        ]
        load = audits[-1]["payload"]["journal_load"]
        assert load["n_quarantined"] >= 1
        assert load["reasons"].get("crc_mismatch") == 1
        assert (tmp_path / "journal.jsonl.corrupt").exists()

    def test_recover_compacts_oversized_journal(self, tmp_path):
        from repro.service import journal as journal_mod

        journal_path = tmp_path / "journal.jsonl"
        journal = JobJournal(journal_path)
        # enough terminal lifecycles to cross the event trigger
        for i in range(journal_mod.COMPACT_MAX_EVENTS // 2 + 1):
            journal.record("submitted", f"job-{i}", {"request": {"kind": "v"}})
            journal.record("completed", f"job-{i}", {})
        n_before = len(journal.events())
        assert n_before > journal_mod.COMPACT_MAX_EVENTS
        revived = JobRuntime(journal=journal_path)
        revived.recover()
        events = JobJournal(journal_path).events()
        # one summary per terminal job + the audit record
        assert len(events) <= n_before // 2 + 2
        audit = [e for e in events if e["event"] == "recovery_audit"][-1]
        assert audit["payload"]["compaction"]["jobs_terminal"] > 0
