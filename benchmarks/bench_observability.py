"""Experiment T-obs — cost and fidelity of the observability layer.

The tracing contract (:mod:`repro.obs`) is "pay only when you look": every
instrumentation site in the hot paths reduces to one module-global flag
check while tracing is off. This bench quantifies that claim on the
valuation-engine workload and pins it with an assertion:

- the *disabled* per-site cost is measured directly (a microbenchmark of
  the ``span()`` fast path), multiplied by a generous over-estimate of the
  number of sites the enabled run actually hit, and asserted to be < 5% of
  the disabled workload's wall-clock;
- enabled and disabled runs must return bit-identical values (observing a
  run must never perturb it);
- the enabled run's span skeleton must be identical across repeats (the
  determinism the obs tests rely on), and its trace is exported to
  ``benchmarks/results/obs_trace.jsonl`` for the CI artifact.

Direct enabled-vs-disabled wall-clock deltas are reported but not asserted:
on shared CI runners the noise floor exceeds the overhead being measured.
"""

import os
import time

import numpy as np

from repro.datasets import make_classification
from repro.importance import Utility, ValuationEngine, shapley_mc
from repro.learn import LogisticRegression
from repro.obs import trace as obs
from repro.obs import tracing
from repro.viz import format_records

ENGINE_N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "60"))
ENGINE_PERMUTATIONS = int(os.environ.get("REPRO_BENCH_ENGINE_PERMS", "6"))
N_VALID = 40
MICROBENCH_CALLS = 200_000
#: Every span comes with a handful of ``enabled()``-gated metric updates;
#: 4 flag checks per span over-counts every instrumentation site in tree.
SITES_PER_SPAN = 4


def _utility() -> Utility:
    X, y = make_classification(n=ENGINE_N + N_VALID, n_features=4, seed=1)
    return Utility(
        LogisticRegression(max_iter=30),
        X[:ENGINE_N], y[:ENGINE_N], X[ENGINE_N:], y[ENGINE_N:],
    )


def _workload(engine: ValuationEngine) -> np.ndarray:
    return shapley_mc(
        None, n_permutations=ENGINE_PERMUTATIONS, seed=0, engine=engine
    ).values


def _disabled_site_cost() -> float:
    """Seconds per instrumentation site while tracing is off."""
    assert not obs.enabled()
    start = time.perf_counter()
    for __ in range(MICROBENCH_CALLS):
        obs.span("bench.noop")
    return (time.perf_counter() - start) / MICROBENCH_CALLS


def run_overhead() -> dict:
    obs.disable()
    obs.get_recorder().reset()

    start = time.perf_counter()
    disabled_values = _workload(ValuationEngine(_utility()))
    disabled_wall = time.perf_counter() - start
    assert len(obs.get_recorder()) == 0  # no stray spans while off

    reports = []
    enabled_wall = []
    for __ in range(2):
        start = time.perf_counter()
        with tracing() as report:
            values = _workload(ValuationEngine(_utility()))
        enabled_wall.append(time.perf_counter() - start)
        reports.append(report)
    assert np.array_equal(values, disabled_values)

    per_site = _disabled_site_cost()
    n_spans = len(reports[0].spans)
    projected = per_site * n_spans * SITES_PER_SPAN
    return {
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(min(enabled_wall), 4),
        "n_spans": n_spans,
        "per_site_ns": round(per_site * 1e9, 1),
        "projected_disabled_overhead_s": projected,
        "overhead_fraction": projected / disabled_wall,
        "_reports": reports,
        "_disabled_wall": disabled_wall,
    }


def test_disabled_overhead_under_five_percent(benchmark, write_report, results_dir):
    row = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    reports = row.pop("_reports")
    disabled_wall = row.pop("_disabled_wall")
    row["overhead_fraction"] = round(row["overhead_fraction"], 6)
    row["projected_disabled_overhead_s"] = round(
        row["projected_disabled_overhead_s"], 6
    )

    trace_path = results_dir / "obs_trace.jsonl"
    reports[0].save_jsonl(trace_path)
    write_report("obs_overhead", format_records([row]), records=row)

    # The disabled instrumentation path must cost < 5% of the workload even
    # when every site is over-counted 4× at the measured per-call price.
    assert row["projected_disabled_overhead_s"] < 0.05 * disabled_wall

    # Observation fidelity: identical skeletons across repeats, and the
    # engine activity actually landed in the window.
    skeletons = [[s.name for s in r.spans] for r in reports]
    assert skeletons[0] == skeletons[1]
    assert "engine.run_permutations" in skeletons[0]
    assert reports[0].metrics["engine.permutations"]["value"] == (
        ENGINE_PERMUTATIONS
    )
    assert trace_path.exists()
