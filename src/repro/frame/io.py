"""CSV serialisation for :class:`repro.frame.DataFrame`.

Only the small CSV dialect needed for shipping synthetic datasets and
benchmark outputs is supported: comma separator, double-quote quoting, a
header row, and empty fields meaning *missing*.
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path
from typing import Any

import numpy as np

from .column import Column
from .frame import DataFrame

__all__ = ["read_csv", "write_csv", "to_csv_string", "from_csv_string"]


_INT_PATTERN = re.compile(r"^[+-]?\d+$")
# Digits-anchored float syntax only: words Python's float() accepts, like
# "inf"/"nan"/"INF", must stay strings.
_FLOAT_PATTERN = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")


def _infer_column(raw: list[str]) -> Column:
    """Infer int → float → bool → string, treating '' as missing."""
    mask = np.asarray([cell == "" for cell in raw], dtype=bool)
    present = [cell for cell in raw if cell != ""]

    def all_parse(pattern) -> bool:
        return all(pattern.match(cell) for cell in present)

    if present and all(cell in ("True", "False") for cell in present):
        values = np.asarray([cell == "True" for cell in raw], dtype=bool)
        return Column(values, mask)
    if present and all_parse(_INT_PATTERN):
        if mask.any():
            values = np.asarray(
                [float(c) if c != "" else np.nan for c in raw], dtype=float
            )
        else:
            values = np.asarray([int(c) for c in raw], dtype=np.int64)
        return Column(values, mask)
    if present and all_parse(_FLOAT_PATTERN):
        values = np.asarray(
            [float(c) if c != "" else np.nan for c in raw], dtype=float
        )
        return Column(values, mask)
    values = np.asarray(raw, dtype=str)
    return Column(values, mask)


def from_csv_string(text: str) -> DataFrame:
    """Parse CSV text into a frame, inferring column types."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise ValueError("empty CSV input")
    header, body = rows[0], rows[1:]
    columns: dict[str, Column] = {}
    for j, name in enumerate(header):
        raw = [row[j] if j < len(row) else "" for row in body]
        columns[name] = _infer_column(raw)
    return DataFrame(columns)


def read_csv(path: str | Path) -> DataFrame:
    """Load a CSV file written by :func:`write_csv` (or compatible)."""
    return from_csv_string(Path(path).read_text())


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_csv_string(frame: DataFrame) -> str:
    """Serialise a frame to CSV text; missing cells become empty fields."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(frame.columns)
    for row in frame.to_rows():
        writer.writerow([_format_cell(row[name]) for name in frame.columns])
    return buffer.getvalue()


def write_csv(frame: DataFrame, path: str | Path) -> None:
    """Write the frame as CSV; missing cells become empty fields."""
    Path(path).write_text(to_csv_string(frame))
