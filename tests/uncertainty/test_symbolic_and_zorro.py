"""Tests for symbolic datasets and the Zorro possible-worlds trainer.

The load-bearing property: for any sampled (or adversarial corner) world,
the exact ridge solution lies inside Zorro's returned parameter enclosure,
and hence every concrete prediction/loss lies inside the reported ranges.
"""

import numpy as np
import pytest

from repro.datasets import load_recommendation_letters, make_regression
from repro.uncertainty import (
    UncertainDataset,
    ZorroTrainer,
    encode_symbolic,
    estimate_with_zorro,
    from_matrix_with_nans,
    gradient_descent_train,
    ridge_solve,
)


@pytest.fixture(scope="module")
def regression_task():
    X, y, __ = make_regression(n=100, n_features=4, noise=0.2, seed=2)
    return X, y


def make_uncertain(X, y, fraction, seed=0):
    rng = np.random.default_rng(seed)
    Xm = X.copy()
    Xm[rng.random(X.shape) < fraction] = np.nan
    return from_matrix_with_nans(Xm, y)


class TestSymbolicDataset:
    def test_from_nans_marks_cells(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.1)
        assert ds.n_uncertain == np.isnan(
            np.where(ds.uncertain_cells, np.nan, 0.0)
        ).sum()
        assert ds.n_uncertain > 0

    def test_certain_cells_degenerate(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.1)
        certain = ~ds.uncertain_cells
        assert np.allclose(ds.X.lo[certain], ds.X.hi[certain])

    def test_bounds_cover_column_range(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.1, seed=1)
        for i, j in zip(*np.nonzero(ds.uncertain_cells)):
            col = X[:, j]
            assert ds.X.lo[i, j] <= np.nanmin(col) + 1e-9
            assert ds.X.hi[i, j] >= np.nanmax(col) - 1e-9

    def test_sample_world_within_bounds(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.2)
        world = ds.sample_world(3)
        assert np.all(world >= ds.X.lo - 1e-12)
        assert np.all(world <= ds.X.hi + 1e-12)

    def test_center_world_is_midpoint(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.2)
        assert np.allclose(ds.center_world(), 0.5 * (ds.X.lo + ds.X.hi))

    def test_standardized_preserves_membership(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.1)
        std, mean, scale = ds.standardized()
        world = ds.sample_world(1)
        std_world = (world - mean) / scale
        assert np.all(std_world >= std.X.lo - 1e-9)
        assert np.all(std_world <= std.X.hi + 1e-9)

    def test_shape_validation(self):
        from repro.uncertainty import Interval

        with pytest.raises(ValueError):
            UncertainDataset(
                Interval(np.zeros((2, 2)), np.ones((2, 2))),
                np.zeros(3),
                np.zeros((2, 2), dtype=bool),
            )


class TestEncodeSymbolic:
    def test_paper_call_shape(self, letters_small):
        train, __, __ = letters_small
        ds = encode_symbolic(
            train,
            uncertain_feature="employer_rating",
            feature_columns=["employer_rating", "age"],
            label_column="sentiment",
            missing_percentage=10.0,
            missingness="MNAR",
            positive_label="positive",
            seed=0,
        )
        assert ds.n_rows == train.num_rows
        assert set(np.unique(ds.y)) == {-1.0, 1.0}
        expected = int(round(0.10 * train.num_rows))
        assert ds.n_uncertain == expected
        # Only the declared feature carries uncertainty.
        assert not ds.uncertain_cells[:, 1].any()

    def test_uncertain_feature_must_be_listed(self, letters_small):
        train, __, __ = letters_small
        with pytest.raises(ValueError):
            encode_symbolic(
                train,
                uncertain_feature="employer_rating",
                feature_columns=["age"],
                label_column="sentiment",
            )


class TestZorroSoundness:
    @pytest.mark.parametrize("fraction", [0.02, 0.1, 0.3])
    def test_sampled_worlds_inside_enclosure(self, regression_task, fraction):
        X, y = regression_task
        ds = make_uncertain(X, y, fraction, seed=0)
        model = ZorroTrainer(l2=0.5).fit(ds)
        for seed in range(15):
            world = ds.sample_world(seed)
            theta = ridge_solve((world - model.mean) / model.scale, y, l2=0.5)
            assert model.theta.contains(theta, atol=1e-7)

    def test_corner_worlds_inside_enclosure(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.15, seed=1)
        model = ZorroTrainer(l2=0.5).fit(ds)
        for corner in (ds.X.lo, ds.X.hi):
            theta = ridge_solve((corner - model.mean) / model.scale, y, l2=0.5)
            assert model.theta.contains(theta, atol=1e-7)

    def test_prediction_ranges_cover_world_predictions(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.1, seed=2)
        model = ZorroTrainer(l2=0.5).fit(ds)
        x_test = X[:20]
        ranges = model.predict_range(x_test)
        for seed in range(10):
            world = ds.sample_world(seed)
            theta = ridge_solve((world - model.mean) / model.scale, y, l2=0.5)
            design = np.column_stack(
                [(x_test - model.mean) / model.scale, np.ones(len(x_test))]
            )
            preds = design @ theta
            assert np.all(preds >= ranges.lo - 1e-7)
            assert np.all(preds <= ranges.hi + 1e-7)

    def test_loss_ranges_cover_world_losses(self, regression_task):
        X, y = regression_task
        ds = make_uncertain(X, y, 0.1, seed=3)
        model = ZorroTrainer(l2=0.5).fit(ds)
        losses = model.squared_loss_range(X[:20], y[:20])
        for seed in range(10):
            world = ds.sample_world(seed)
            theta = ridge_solve((world - model.mean) / model.scale, y, l2=0.5)
            design = np.column_stack(
                [(X[:20] - model.mean) / model.scale, np.ones(20)]
            )
            concrete = (design @ theta - y[:20]) ** 2
            assert np.all(concrete >= losses.lo - 1e-6)
            assert np.all(concrete <= losses.hi + 1e-6)

    def test_no_uncertainty_gives_point_model(self, regression_task):
        X, y = regression_task
        ds = from_matrix_with_nans(X, y)
        model = ZorroTrainer(l2=0.5).fit(ds)
        assert np.allclose(model.theta_bounds().width, 0.0)
        theta = ridge_solve((X - model.mean) / model.scale, y, l2=0.5)
        assert np.allclose(model.theta.center, theta, atol=1e-8)


class TestZorroBehaviour:
    def test_worst_case_loss_monotone_in_missingness(self, regression_task):
        X, y = regression_task
        previous = 0.0
        for fraction in (0.05, 0.15, 0.25):
            ds = make_uncertain(X, y, fraction, seed=4)
            report = estimate_with_zorro(ds, X[:30], y[:30], l2=0.5)
            assert report["max_worst_case_loss"] >= previous - 1e-9
            previous = report["max_worst_case_loss"]

    def test_certified_fraction_decreases_with_missingness(self, letters_small):
        train, __, test = letters_small
        fractions = []
        for pct in (2.0, 30.0):
            ds = encode_symbolic(
                train,
                uncertain_feature="employer_rating",
                feature_columns=["employer_rating", "age"],
                label_column="sentiment",
                missing_percentage=pct,
                positive_label="positive",
                seed=0,
            )
            model = ZorroTrainer(l2=0.5).fit(ds)
            x_test = test.select(["employer_rating", "age"]).to_numpy()
            certain, __ = model.certified_predictions(x_test)
            fractions.append(certain.mean())
        assert fractions[1] <= fractions[0]

    def test_gd_converges_to_ridge_solution(self, regression_task):
        X, y = regression_task
        eta = 1.0 / (0.5 + float(np.linalg.eigvalsh(X.T @ X / len(X)).max()) + 1)
        gd = gradient_descent_train(X, y, l2=0.5, learning_rate=eta, n_iters=3000)
        exact = ridge_solve(X, y, l2=0.5)
        assert np.allclose(gd, exact, atol=1e-5)

    def test_invalid_l2_raises(self):
        with pytest.raises(ValueError):
            ZorroTrainer(l2=0.0)
