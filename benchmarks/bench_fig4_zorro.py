"""Experiment F4 — Figure 4: worst-case loss under growing missingness.

Paper storyline: inject 5–25% MNAR missing values into ``employer_rating``,
propagate the uncertainty symbolically with Zorro, and plot the maximum
worst-case loss. Shape to reproduce: the curve is monotonically
non-decreasing in the missing percentage.
"""

import repro.core as nde
from repro.viz import line_chart

PERCENTAGES = [5, 10, 15, 20, 25]


def run_figure4() -> dict:
    train, __, test = nde.load_recommendation_letters(n=400, seed=7)
    max_losses = {}
    for percentage in PERCENTAGES:
        symbolic = nde.encode_symbolic(
            train,
            uncertain_feature="employer_rating",
            missing_percentage=percentage,
            missingness="MNAR",
            seed=1,
        )
        max_losses[percentage] = nde.estimate_with_zorro(symbolic, test)
    return max_losses


def test_fig4_zorro_missingness_curve(benchmark, write_report):
    max_losses = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    chart = line_chart(
        PERCENTAGES,
        {"max worst-case loss": [max_losses[p] for p in PERCENTAGES]},
        title="Maximum worst-case loss vs % MNAR-missing employer_rating (Figure 4)",
        x_label="percentage of missing values",
    )
    rows = "\n".join(
        f"{p:>3}% missing: max worst-case loss = {max_losses[p]:.4f}"
        for p in PERCENTAGES
    )
    write_report("fig4_zorro", chart + "\n\n" + rows)

    losses = [max_losses[p] for p in PERCENTAGES]
    assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:])), (
        "worst-case loss must grow with missingness"
    )
    assert losses[-1] > losses[0]
