"""Admission control: bounded queues, fair share, shedding, circuit breaking.

Unbounded queues are how services die politely — accept everything, answer
nothing. This module is the explicit alternative, as pure synchronous state
machines (no asyncio) so the hypothesis suites can drive them through
millions of random submit/complete/fail sequences:

- :class:`FairShareQueue` — per-tenant FIFO lanes drained round-robin, so
  one tenant's submit storm cannot starve the others; within a lane,
  higher priority runs first.
- :class:`AdmissionController` — bounded total depth and optional
  per-tenant quota. A submission over the bound either *sheds* the
  lowest-priority queued job (when the newcomer strictly outranks it) or
  is itself rejected — either way someone gets an explicit
  :class:`~repro.service.job.JobRejected`, and the bound holds as a hard
  invariant.
- :class:`CircuitBreaker` — per-tenant: ``failure_threshold`` consecutive
  job failures open the circuit, rejecting that tenant's submissions for
  ``cooldown_s``; after the cooldown the breaker goes half-open and lets
  probes through — one success closes it, one failure re-opens. A broken
  workload stops burning engine time without ever locking a tenant out
  permanently.
- :class:`RetryPolicy` — exponential backoff schedule for per-job retry
  budgets.

All decision logic takes an injectable ``clock`` so tests (and the
hypothesis state machines) can step time deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .job import Job, JobRejected

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "FairShareQueue",
    "RetryPolicy",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds on what the runtime accepts.

    ``max_queue_depth`` caps jobs *queued* (running jobs are bounded
    separately by the runtime's concurrency). ``max_queued_per_tenant``
    optionally caps one tenant's share of the queue.
    ``shed_lower_priority`` enables evicting the lowest-priority queued
    job when a strictly higher-priority one arrives at a full queue.
    """

    max_queue_depth: int = 64
    max_queued_per_tenant: int | None = None
    shed_lower_priority: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if (
            self.max_queued_per_tenant is not None
            and self.max_queued_per_tenant < 1
        ):
            raise ValueError("max_queued_per_tenant must be >= 1 (or None)")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for handler-failure retries."""

    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay_s(self, retry_index: int) -> float:
        """Sleep before retry number ``retry_index`` (0-based)."""
        return min(
            self.backoff_base_s * self.backoff_factor ** max(0, int(retry_index)),
            self.max_backoff_s,
        )


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-tenant circuit-breaker thresholds."""

    failure_threshold: int = 3
    cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


class CircuitBreaker:
    """Consecutive-failure breaker: closed → open → half-open → closed.

    The state machine the hypothesis suite pins:

    - *closed*: everything allowed; ``failure_threshold`` consecutive
      failures (no intervening success) trip it open.
    - *open*: nothing allowed until ``cooldown_s`` elapses, then the next
      :meth:`allow` observes *half-open*.
    - *half-open*: probes allowed; the first success closes the breaker
      (full reset), the first failure re-opens it with a fresh cooldown.

    There is deliberately no terminal "stuck" state: from any state, a
    cooldown plus one successful probe always returns to closed.
    """

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.policy.cooldown_s:
            return "half_open"
        return "open"

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """May this tenant submit right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        if self.state == "half_open":
            # Failed probe: re-open with a fresh cooldown.
            self._opened_at = self._clock()
            return
        self._consecutive_failures += 1
        if (
            self._opened_at is None
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._opened_at = self._clock()


class FairShareQueue:
    """Per-tenant FIFO lanes drained round-robin; priority within a lane.

    ``pop`` serves tenants in rotating order (each pop advances the
    rotation), so a tenant that floods the queue still only gets one slot
    per full rotation. Within a tenant's lane, the highest-priority job
    wins, FIFO among equals. All operations are O(queued) — queues are
    admission-bounded, so scans stay trivially small.
    """

    def __init__(self) -> None:
        self._lanes: dict[str, list[Job]] = {}
        self._rotation: list[str] = []

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def depth(self, tenant: str) -> int:
        return len(self._lanes.get(tenant, ()))

    def tenants(self) -> list[str]:
        return [t for t in self._rotation if self._lanes.get(t)]

    def push(self, job: Job) -> None:
        tenant = job.request.tenant
        if tenant not in self._lanes:
            self._lanes[tenant] = []
            self._rotation.append(tenant)
        self._lanes[tenant].append(job)

    def pop(self) -> Job | None:
        """Next job under fair-share rotation, or None when empty."""
        active = self.tenants()
        if not active:
            return None
        tenant = active[0]
        # Advance the rotation: the served tenant goes to the back.
        self._rotation.remove(tenant)
        self._rotation.append(tenant)
        lane = self._lanes[tenant]
        best = max(range(len(lane)), key=lambda i: (lane[i].request.priority, -i))
        return lane.pop(best)

    def lowest_priority(self) -> Job | None:
        """Shedding candidate: globally lowest priority, newest first.

        The newest of the lowest-priority jobs is evicted — the oldest has
        waited longest and keeps its place.
        """
        candidate: Job | None = None
        for lane in self._lanes.values():
            for job in lane:
                if (
                    candidate is None
                    or job.request.priority < candidate.request.priority
                    or (
                        job.request.priority == candidate.request.priority
                        and job.submitted_at >= candidate.submitted_at
                    )
                ):
                    candidate = job
        return candidate

    def remove(self, job: Job) -> bool:
        lane = self._lanes.get(job.request.tenant)
        if lane is None or job not in lane:
            return False
        lane.remove(job)
        return True


class AdmissionController:
    """Combines queue bounds, per-tenant quotas, shedding, and breakers.

    The single invariant everything else hangs off: after any sequence of
    :meth:`admit` / :meth:`next_job` / :meth:`record_result` calls,
    ``len(self.queue) <= policy.max_queue_depth``.
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or AdmissionPolicy()
        self.breaker_policy = breaker_policy or BreakerPolicy()
        self._clock = clock
        self.queue = FairShareQueue()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, tenant: str) -> CircuitBreaker:
        if tenant not in self._breakers:
            self._breakers[tenant] = CircuitBreaker(
                self.breaker_policy, clock=self._clock
            )
        return self._breakers[tenant]

    def admit(self, job: Job) -> Job | None:
        """Queue ``job`` or raise :class:`JobRejected`.

        Returns the job shed to make room (already removed from the
        queue), or None when no eviction was needed. The caller owns
        marking the shed job rejected and notifying its subscribers.
        """
        tenant = job.request.tenant
        if not self.breaker(tenant).allow():
            raise JobRejected(
                "circuit_open",
                f"tenant {tenant!r} is cooling down after repeated failures",
            )
        if (
            self.policy.max_queued_per_tenant is not None
            and self.queue.depth(tenant) >= self.policy.max_queued_per_tenant
        ):
            raise JobRejected(
                "tenant_quota",
                f"tenant {tenant!r} already has "
                f"{self.queue.depth(tenant)} queued jobs",
            )
        shed: Job | None = None
        if len(self.queue) >= self.policy.max_queue_depth:
            victim = (
                self.queue.lowest_priority()
                if self.policy.shed_lower_priority
                else None
            )
            if (
                victim is not None
                and victim.request.priority < job.request.priority
            ):
                self.queue.remove(victim)
                shed = victim
            else:
                raise JobRejected(
                    "queue_full",
                    f"depth={len(self.queue)} "
                    f"(max {self.policy.max_queue_depth})",
                )
        self.queue.push(job)
        return shed

    def next_job(self) -> Job | None:
        """Dequeue the next job under fair-share rotation."""
        return self.queue.pop()

    def record_result(self, tenant: str, ok: bool) -> None:
        """Feed a job's terminal outcome into the tenant's breaker."""
        if ok:
            self.breaker(tenant).record_success()
        else:
            self.breaker(tenant).record_failure()
