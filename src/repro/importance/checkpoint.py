"""Checkpoint/resume for valuation runs.

The Identify track's Monte-Carlo estimators are the most expensive jobs in
the toolkit — hours of model retrainings whose only output is a handful of
accumulator arrays. A preempted or killed run used to lose every
permutation already paid for. This module makes valuation state durable:

- :class:`CheckpointStore` persists a schema-versioned, CRC-framed JSON
  snapshot atomically (staged + fsync + rename + directory fsync, via
  :mod:`repro.obs.atomicio`), so a run killed *mid-write* leaves the
  previous snapshot intact and a resumed run never loads a torn file.
  Loads verify the envelope checksum; a primary snapshot corrupted *after*
  the fact (bit rot, a partial restore) is quarantined to a
  ``<file>.corrupt`` sidecar and recovery falls back generation by
  generation through the retained ``keep_last`` wave archives to the
  newest valid snapshot — resuming from an older watermark is always
  correct (merely slower) because the RNG position is fully captured by
  ``(seed, completed watermark)``.
- :func:`config_fingerprint` hashes everything that determines the
  sampling trajectory — game size, seed, target budget, position weights,
  truncation/convergence settings, antithetic pairing — and the store
  refuses to resume when the fingerprint disagrees
  (:class:`CheckpointMismatchError`): resuming a run under a different
  configuration would silently blend two different estimators.

The resume invariant, which the engine's tests enforce bit-for-bit: because
every permutation ordering is pre-drawn from the master
``np.random.default_rng(seed)`` stream, the *RNG position* of a run is
fully captured by ``(seed, completed-permutation watermark)``. A resumed
run re-draws the same orderings, restores the per-row sums / sums of
squares / evaluation census exactly (JSON round-trips IEEE-754 doubles
losslessly), skips the watermarked prefix, and accumulates the remaining
waves in the original order — producing values bit-identical to a run that
was never interrupted, for any worker count.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..obs.atomicio import (
    atomic_write_text,
    frame_line,
    quarantine_file,
    record_storage_alert,
    unframe,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "config_fingerprint",
]

#: Bump when the snapshot layout changes incompatibly. Loaders refuse to
#: resume from a different major version — unlike the lenient ledger
#: readers, a checkpoint read wrong silently corrupts results.
CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded (unreadable, wrong schema, ...)."""


class CheckpointMismatchError(CheckpointError):
    """Refusing to resume: the stored run had a different configuration."""


def _canonical(value: Any) -> Any:
    """JSON-stable form of a config value (arrays → hashed, tuples → lists)."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """Deterministic hex digest of a run configuration."""
    payload = json.dumps(_canonical(dict(config)), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class CheckpointStore:
    """Atomic, schema-versioned snapshot file for one valuation run.

    By default one store holds one snapshot (the latest wave boundary);
    history is not kept — the point is crash durability, not time travel.
    The snapshot is a single JSON document::

        {"schema_version": 1, "kind": "permutation", "fingerprint": "...",
         "completed": 40, "totals": [...], "sumsq": [...], ...}

    ``save`` goes through :func:`repro.obs.atomicio.atomic_write_text`;
    ``load`` validates the schema version and (when asked) the config
    fingerprint before handing state back.

    ``keep_last=N`` additionally archives each wave snapshot next to the
    primary file (``<name>.wave<completed>``) and prunes superseded
    archives beyond the newest ``N`` — the retention knob long service
    runs need so a checkpoint directory holding many jobs' stores stays
    bounded while still allowing a short rewind. Resume always reads the
    primary file, so pruning never affects crash recovery.
    """

    def __init__(self, path: Any, keep_last: int | None = None) -> None:
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be >= 1 (or None)")
        self.path = Path(path)
        self.keep_last = keep_last
        #: Accounting for the most recent :meth:`load` that had to recover
        #: (quarantined primary, archives tried, winning watermark);
        #: ``None`` when the last load was clean.
        self.last_recovery: dict[str, Any] | None = None

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, state: Mapping[str, Any]) -> None:
        """Atomically replace the snapshot with ``state``.

        With ``keep_last`` set, also write a per-wave archive and prune
        superseded archives so at most ``keep_last`` remain.
        """
        payload = {"schema_version": CHECKPOINT_SCHEMA_VERSION, **state}
        text = frame_line(payload) + "\n"
        atomic_write_text(self.path, text)
        if self.keep_last is not None:
            completed = int(state.get("completed", 0))
            archive = self.path.with_name(
                f"{self.path.name}.wave{completed:08d}"
            )
            atomic_write_text(archive, text)
            self._prune()

    def archives(self) -> list[Path]:
        """Retained per-wave archives, oldest watermark first."""
        pattern = f"{self.path.name}.wave*"
        return sorted(self.path.parent.glob(pattern))

    def _prune(self) -> None:
        for stale in self.archives()[: -int(self.keep_last)]:
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent prune
                pass

    def _read_snapshot(
        self, path: Path
    ) -> tuple[dict[str, Any] | None, str | None, str | None]:
        """Parse + CRC-verify one snapshot file.

        Returns ``(payload, error_message, reason_tag)`` — exactly one of
        ``payload`` / ``error_message`` is set. Never raises: callers
        decide whether an invalid snapshot is fatal (no archive left) or
        merely the next fallback candidate.
        """
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                obj = json.loads(handle.read())
        except OSError as exc:
            return None, f"unreadable checkpoint at {path}: {exc}", "unreadable"
        except json.JSONDecodeError as exc:
            return None, f"unreadable checkpoint at {path}: {exc}", "not_json"
        payload, err = unframe(obj)
        if err is not None:
            return None, f"unreadable checkpoint at {path}: {err}", err
        if not isinstance(payload, dict):
            return None, f"malformed checkpoint at {path}", "not_object"
        version = payload.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            return (
                None,
                f"checkpoint schema v{version} at {path} is not readable "
                f"by this runtime (expected v{CHECKPOINT_SCHEMA_VERSION})",
                "schema_mismatch",
            )
        return payload, None, None

    def load(self) -> dict[str, Any] | None:
        """The stored snapshot, or None when no checkpoint exists yet.

        A primary snapshot that fails to parse, fails its CRC, or carries
        the wrong schema version is quarantined to ``<path>.corrupt`` and
        recovery walks the retained wave archives newest-first to the most
        recent valid snapshot (see :attr:`last_recovery`); the primary is
        healed from the winning archive so the next load is clean. Only
        when *no* valid generation remains does the load raise
        :class:`CheckpointError`.
        """
        self.last_recovery = None
        if not self.path.exists():
            return None
        payload, error, reason = self._read_snapshot(self.path)
        if error is None:
            return payload
        return self._fall_back(error, reason or "unreadable")

    def _fall_back(self, primary_error: str, reason: str) -> dict[str, Any]:
        """Quarantine the corrupt primary and resume from the newest valid
        archive generation, healing the primary on the way out."""
        quarantine_file(self.path, artifact="checkpoint", reason=reason)
        recovery: dict[str, Any] = {
            "path": str(self.path),
            "primary_error": primary_error,
            "archives_tried": 0,
            "recovered_from": None,
            "completed": None,
        }
        for archive in reversed(self.archives()):
            recovery["archives_tried"] += 1
            candidate, c_error, _ = self._read_snapshot(archive)
            if c_error is not None:
                continue
            atomic_write_text(
                self.path, archive.read_text(encoding="utf-8")
            )
            recovery["recovered_from"] = archive.name
            recovery["completed"] = candidate.get("completed")
            self.last_recovery = recovery
            self._note_fallback(recovery)
            return candidate
        self.last_recovery = recovery
        raise CheckpointError(primary_error)

    def _note_fallback(self, recovery: dict[str, Any]) -> None:
        # Lazy: keep checkpoint importable without dragging in the whole
        # observability stack at module load.
        from ..obs import flight as _flight
        from ..obs import metrics as _metrics
        from ..obs.diff import Alert

        _metrics.counter(
            "storage.checkpoint_fallback", artifact="checkpoint"
        ).inc()
        _flight.record("storage.checkpoint_fallback", **recovery)
        record_storage_alert(
            Alert(
                severity="warn",
                kind="storage_corruption",
                node="checkpoint",
                column=None,
                metric="storage.checkpoint_fallback",
                value=float(recovery["archives_tried"]),
                threshold=0.0,
                message=(
                    f"checkpoint at {self.path} was corrupt "
                    f"({recovery['primary_error']}); resumed from archive "
                    f"{recovery['recovered_from']} at watermark "
                    f"{recovery['completed']}"
                ),
            )
        )

    def load_matching(
        self, kind: str, fingerprint: str
    ) -> dict[str, Any] | None:
        """Load and validate against the resuming run's identity.

        Returns None when no checkpoint exists; raises
        :class:`CheckpointMismatchError` when one exists but belongs to a
        different run kind or configuration.
        """
        payload = self.load()
        if payload is None:
            return None
        if payload.get("kind") != kind:
            raise CheckpointMismatchError(
                f"checkpoint at {self.path} is a {payload.get('kind')!r} "
                f"snapshot, not {kind!r}"
            )
        if payload.get("fingerprint") != fingerprint:
            raise CheckpointMismatchError(
                f"checkpoint at {self.path} was written under a different "
                "run configuration (fingerprint mismatch); refusing to "
                "resume — delete the file or rerun with the original "
                "settings"
            )
        return payload

    def clear(self) -> None:
        """Remove the snapshot and any archives (e.g. after a run completes)."""
        for target in [self.path, *self.archives()]:
            try:
                target.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "present" if self.exists() else "absent"
        return f"CheckpointStore({str(self.path)!r}, {state})"
