"""The ``navigating_data_errors``-style facade (the paper's ``nde`` module).

This module reproduces, call for call, the API the paper's hands-on session
shows in Figures 2–4::

    import repro.core as nde

    train_df, valid_df, test_df = nde.load_recommendation_letters()
    train_df_err = nde.inject_labelerrors(train_df, fraction=0.1)
    acc_dirty = nde.evaluate_model(train_df_err, valid_df)

    importances = nde.knn_shapley_values(train_df_err, validation=valid_df)
    lowest = np.argsort(importances)[:25]
    nde.pretty_print(train_df_err.take(lowest))

Each function is a thin composition of the real subsystems
(:mod:`repro.errors`, :mod:`repro.importance`, :mod:`repro.pipeline`,
:mod:`repro.uncertainty`), so the facade stays honest: everything it does
can also be done, with more control, through the underlying packages.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..datasets import load_recommendation_letters, load_sidedata
from ..errors import inject_label_errors
from ..frame import DataFrame
from ..learn.base import Estimator, clone
from ..learn.models.logistic import LogisticRegression
from ..importance.banzhaf import banzhaf_mc
from ..importance.base import ImportanceResult
from ..importance.beta_shapley import beta_shapley_mc
from ..importance.checkpoint import CheckpointStore
from ..importance.engine import DEFAULT_CACHE_SIZE, ValuationEngine, ValuationResult
from ..importance.knn_shapley import knn_shapley
from ..importance.pool import PoolRegistry, WorkerPool, valuation_pool
from ..importance.shapley import shapley_mc
from ..importance.utility import Utility
from ..obs import (
    DriftThresholds,
    PipelineMonitor,
    RunDiff,
    RunLedger,
    RunRecord,
    SLOPolicy,
    SLOTracker,
    TraceReport,
    compare_runs,
    flight_recorder,
    parse_openmetrics,
    render_openmetrics,
    tracing,
)
from ..pipeline.canonical import CanonicalPipeline, compile_pipeline
from ..pipeline.datascope import SourceImportance, datascope_importance
from ..service import (
    AdmissionPolicy,
    BreakerPolicy,
    JobRejected,
    JobRequest,
    JobRuntime,
    JobState,
    RetryPolicy,
    TelemetryServer,
    register_valuation,
)
from ..pipeline.execute import PipelineResult, execute
from ..pipeline.execute import execute_robust as _execute_robust
from ..pipeline.operators import Node
from ..pipeline.resilience import ExecutionPolicy
from ..pipeline.plan import show_query_plan
from ..text import TextEmbedder
from ..uncertainty.symbolic import UncertainDataset, encode_symbolic as _encode_symbolic
from ..uncertainty.zorro import estimate_with_zorro as _estimate_with_zorro
from ..viz.ascii_chart import line_chart
from ..viz.table import pretty_print

__all__ = [
    "CheckpointStore",
    "ValuationResult",
    "load_recommendation_letters",
    "load_sidedata",
    "inject_labelerrors",
    "default_featurize",
    "evaluate_model",
    "knn_shapley_values",
    "shapley_values",
    "banzhaf_values",
    "beta_shapley_values",
    "valuation_engine",
    "valuation_pool",
    "WorkerPool",
    "PoolRegistry",
    "pretty_print",
    "show_query_plan",
    "with_provenance",
    "execute_robust",
    "datascope",
    "exact_knn_values",
    "compile_pipeline",
    "CanonicalPipeline",
    "remove",
    "evaluate_change",
    "encode_symbolic",
    "estimate_with_zorro",
    "visualize_uncertainty",
    "tracing",
    "TraceReport",
    "monitor",
    "compare_runs",
    "PipelineMonitor",
    "RunLedger",
    "RunRecord",
    "RunDiff",
    "DriftThresholds",
    "AdmissionPolicy",
    "BreakerPolicy",
    "JobRejected",
    "JobRequest",
    "JobRuntime",
    "JobState",
    "RetryPolicy",
    "SLOPolicy",
    "SLOTracker",
    "TelemetryServer",
    "flight_recorder",
    "job_runtime",
    "parse_openmetrics",
    "register_valuation",
    "render_openmetrics",
    "telemetry_server",
]

_DEFAULT_EMBEDDER = TextEmbedder(n_features=48)
# column -> (imputation default, centre, scale); scaling keeps the numeric
# features commensurate with the unit-norm text embedding so distance-based
# methods (KNN, KNN-Shapley) are not dominated by raw ages.
_NUMERIC_SPECS = {"employer_rating": (3.0, 3.3, 1.0), "age": (40.0, 43.0, 13.0)}


def inject_labelerrors(
    train_df: DataFrame, fraction: float = 0.1, seed: int = 0
) -> DataFrame:
    """Flip a fraction of sentiment labels (Figure 2's ``nde.inject_labelerrors``).

    Returns only the corrupted frame, as in the paper's snippet; use
    :func:`repro.errors.inject_label_errors` when the ground-truth report is
    needed.
    """
    corrupted, __ = inject_label_errors(train_df, "sentiment", fraction, seed=seed)
    return corrupted


def default_featurize(frame: DataFrame) -> np.ndarray:
    """The scenario's standard featurisation: letter embedding + numerics."""
    blocks = [_DEFAULT_EMBEDDER.transform(frame.column("letter_text"))]
    for column, (default, centre, scale) in _NUMERIC_SPECS.items():
        if column in frame:
            values = frame.column(column).fillna(default).to_numpy().astype(float)
            blocks.append(((values - centre) / scale).reshape(-1, 1))
    return np.column_stack(blocks)


def evaluate_model(
    train_df: DataFrame,
    valid_df: DataFrame,
    label_column: str = "sentiment",
    model: Estimator | None = None,
) -> float:
    """Train the scenario classifier and return validation accuracy."""
    model = model if model is not None else LogisticRegression(max_iter=100)
    y_train = np.asarray(train_df.column(label_column).to_list())
    fitted = clone(model).fit(default_featurize(train_df), y_train)
    y_valid = np.asarray(valid_df.column(label_column).to_list())
    return float(fitted.score(default_featurize(valid_df), y_valid))


def knn_shapley_values(
    train_df: DataFrame,
    validation: DataFrame,
    label_column: str = "sentiment",
    k: int = 5,
    block_size: int = 1024,
) -> np.ndarray:
    """Per-training-row KNN-Shapley importance (Figure 2's core call).

    ``block_size`` streams the train×valid distance matrix in fixed-size
    slabs, so memory stays bounded for large validation sets.
    """
    values = knn_shapley(
        default_featurize(train_df),
        np.asarray(train_df.column(label_column).to_list()),
        default_featurize(validation),
        np.asarray(validation.column(label_column).to_list()),
        k=k,
        block_size=block_size,
    )
    return values.values


def valuation_engine(
    train_df: DataFrame,
    validation: DataFrame,
    label_column: str = "sentiment",
    model: Estimator | None = None,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    checkpoint=None,
    resume: bool = False,
    pool: Any | None = None,
) -> ValuationEngine:
    """A shared Monte-Carlo valuation engine over the scenario featurisation.

    Pass the returned engine to :func:`shapley_values`,
    :func:`banzhaf_values`, or :func:`beta_shapley_values` to amortize one
    subset-utility memo (and one worker pool configuration) across several
    estimator calls::

        engine = nde.valuation_engine(train_df_err, valid_df, n_workers=4)
        shap = nde.shapley_values(train_df_err, valid_df, engine=engine)
        banz = nde.banzhaf_values(train_df_err, valid_df, engine=engine)
        engine.cache.stats()   # hits / misses / evictions / hit_rate

    ``pool=True`` gives the engine its own persistent
    :class:`~repro.importance.WorkerPool` (shared-memory data plane, no
    fork-per-run); inside a :func:`valuation_pool` block the default
    (``pool=None``) leases a warm pool from the registry automatically.

    ``checkpoint=`` (a file path) makes valuation runs snapshot their
    accumulator state at wave boundaries; ``resume=True`` restores a killed
    run from its snapshot and finishes bit-identical to an uninterrupted
    one (refusing on a configuration mismatch).
    """
    model = model if model is not None else LogisticRegression(max_iter=100)
    return ValuationEngine(
        Utility(
            model,
            default_featurize(train_df),
            np.asarray(train_df.column(label_column).to_list()),
            default_featurize(validation),
            np.asarray(validation.column(label_column).to_list()),
        ),
        n_workers=n_workers,
        cache_size=cache_size,
        checkpoint=checkpoint,
        resume=resume,
        pool=pool,
    )


def shapley_values(
    train_df: DataFrame,
    validation: DataFrame,
    label_column: str = "sentiment",
    n_permutations: int = 50,
    truncation_tolerance: float = 0.0,
    convergence_tolerance: float | None = None,
    check_every: int = 10,
    antithetic: bool = False,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    deadline_s: float | None = None,
    max_evals: int | None = None,
    checkpoint=None,
    resume: bool = False,
    return_result: bool = False,
    model: Estimator | None = None,
    engine: ValuationEngine | None = None,
    pool: Any | None = None,
) -> np.ndarray | ImportanceResult:
    """Per-training-row Monte-Carlo (TMC) Shapley importance.

    The retraining-based sibling of :func:`knn_shapley_values`, run on the
    shared valuation engine: ``n_workers`` fans permutations out over
    processes (the values do not depend on the worker count),
    ``cache_size`` bounds the subset-utility memo, and
    ``convergence_tolerance`` stops sampling once every point's standard
    error is below it. ``pool=`` (or an enclosing :func:`valuation_pool`
    block) runs the fan-out on a persistent shared-memory worker pool
    instead of forking a fleet per call.

    ``deadline_s``/``max_evals`` degrade gracefully: when the budget runs
    out mid-run the best current estimate comes back instead of an
    exception. ``checkpoint``/``resume`` make the run killable: state is
    snapshotted at wave boundaries and a resumed run finishes bit-identical
    to an uninterrupted one. Pass ``return_result=True`` for the full
    :class:`~repro.importance.ImportanceResult` (per-row ``stderr``,
    ``converged`` flag, evaluation census in ``extras``) instead of the
    bare values array.
    """
    if engine is None:
        engine = valuation_engine(
            train_df, validation, label_column=label_column, model=model,
            n_workers=n_workers, cache_size=cache_size,
            checkpoint=checkpoint, resume=resume, pool=pool,
        )
    result = shapley_mc(
        None,
        n_permutations=n_permutations,
        truncation_tolerance=truncation_tolerance,
        convergence_tolerance=convergence_tolerance,
        check_every=check_every,
        antithetic=antithetic,
        seed=seed,
        deadline_s=deadline_s,
        max_evals=max_evals,
        engine=engine,
    )
    return result if return_result else result.values


def banzhaf_values(
    train_df: DataFrame,
    validation: DataFrame,
    label_column: str = "sentiment",
    n_samples: int = 100,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    checkpoint=None,
    resume: bool = False,
    return_result: bool = False,
    model: Estimator | None = None,
    engine: ValuationEngine | None = None,
    pool: Any | None = None,
) -> np.ndarray | ImportanceResult:
    """Per-training-row Banzhaf importance (MSR estimator) on the engine.

    ``checkpoint``/``resume`` snapshot the evaluated subset utilities in
    waves, so a killed run resumes without re-paying for finished subsets.
    ``pool=`` (or an enclosing :func:`valuation_pool` block) runs subset
    evaluation on a persistent shared-memory worker pool.
    """
    if engine is None:
        engine = valuation_engine(
            train_df, validation, label_column=label_column, model=model,
            n_workers=n_workers, cache_size=cache_size,
            checkpoint=checkpoint, resume=resume, pool=pool,
        )
    result = banzhaf_mc(None, n_samples=n_samples, seed=seed, engine=engine)
    return result if return_result else result.values


def beta_shapley_values(
    train_df: DataFrame,
    validation: DataFrame,
    label_column: str = "sentiment",
    alpha: float = 1.0,
    beta: float = 16.0,
    n_permutations: int = 50,
    convergence_tolerance: float | None = None,
    check_every: int = 10,
    antithetic: bool = False,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    deadline_s: float | None = None,
    max_evals: int | None = None,
    checkpoint=None,
    resume: bool = False,
    return_result: bool = False,
    model: Estimator | None = None,
    engine: ValuationEngine | None = None,
    pool: Any | None = None,
) -> np.ndarray | ImportanceResult:
    """Per-training-row Beta(α, β)-Shapley importance on the engine.

    Shares :func:`shapley_values`' budget (``deadline_s``/``max_evals``),
    checkpoint/resume, and ``pool=`` semantics.
    """
    if engine is None:
        engine = valuation_engine(
            train_df, validation, label_column=label_column, model=model,
            n_workers=n_workers, cache_size=cache_size,
            checkpoint=checkpoint, resume=resume, pool=pool,
        )
    result = beta_shapley_mc(
        None,
        alpha=alpha,
        beta=beta,
        n_permutations=n_permutations,
        convergence_tolerance=convergence_tolerance,
        check_every=check_every,
        antithetic=antithetic,
        seed=seed,
        deadline_s=deadline_s,
        max_evals=max_evals,
        engine=engine,
    )
    return result if return_result else result.values


def with_provenance(
    pipeline_sink: Node, sources: Mapping[str, DataFrame]
) -> tuple[np.ndarray, PipelineResult]:
    """Run a pipeline and return ``(X_train, result-with-provenance)``.

    Mirrors Figure 3's ``X_train, prov = nde.with_provenance(pipeline(...))``
    — the returned result object carries the provenance.
    """
    result = execute(pipeline_sink, sources, fit=True)
    if result.X is None:
        raise TypeError("pipeline must end in an encode() node")
    return result.X, result


def monitor(bins: int = 10, max_rows: int | None = None) -> PipelineMonitor:
    """A fresh per-node data-quality monitor for ``monitor=`` knobs.

    Pass it to :func:`execute_robust` (or ``pipeline.execute``) to stream
    per-column quality profiles — completeness, distinctness, moments,
    histograms, categorical top-k — at every pipeline node, then persist
    them with :class:`RunLedger` and diff runs with :func:`compare_runs`::

        mon = nde.monitor()
        result = nde.execute_robust(sink, sources, monitor=mon)
        ledger = nde.RunLedger("runs.jsonl")
        record = ledger.record_run(result, monitor=mon, sources=sources)
        diff = nde.compare_runs(ledger.last(2)[0], record)
        print(diff.render())
    """
    return PipelineMonitor(bins=bins, max_rows=max_rows)


def execute_robust(
    pipeline_sink: Node,
    sources: Mapping[str, DataFrame],
    fit: bool = True,
    policy: ExecutionPolicy | None = None,
    monitor: PipelineMonitor | bool | None = None,
    **policy_overrides: Any,
) -> PipelineResult:
    """Run a pipeline with row-level quarantine instead of fail-fast crashes.

    Rows that an operator cannot process (UDF exceptions, poisonous join
    keys, timeouts, silently corrupted cells) are dropped into
    ``result.quarantine`` with their why-provenance, so they can be fed
    straight back into the Identify tooling::

        result = nde.execute_robust(sink, sources)
        bad_ids = result.quarantine.row_ids("train_df")   # identified errors
        report = result.quarantine.to_error_report("train_df")

    Keyword overrides (``max_retries=3``, ``timeout=0.5``, ...) are forwarded
    to :meth:`repro.pipeline.ExecutionPolicy.robust`. ``monitor`` (an
    :func:`nde.monitor` object, or ``True`` for a default one) streams
    per-node data-quality profiles into ``result.quality_profiles``.
    """
    return _execute_robust(
        pipeline_sink,
        sources,
        fit=fit,
        policy=policy,
        monitor=monitor,
        **policy_overrides,
    )


def datascope(
    train_result: PipelineResult,
    validation_result: PipelineResult,
    source: str | None = None,
    k: int = 5,
    method: str = "knn",
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    **method_options: Any,
) -> SourceImportance:
    """Shapley importance over the pipeline's source tuples (Figure 3).

    ``method="knn"`` (default) is the exact polynomial-time KNN proxy;
    ``method="shapley_mc"`` retrains the real downstream model on the
    shared valuation engine with ``n_workers``-way fan-out (extra options
    like ``n_permutations``/``convergence_tolerance``/``model`` pass
    through to :func:`repro.pipeline.datascope.datascope_importance`).
    """
    if validation_result.X is None:
        raise TypeError("validation pipeline result has no encoded output")
    return datascope_importance(
        train_result,
        validation_result.X,
        validation_result.y,
        source=source,
        k=k,
        method=method,
        n_workers=n_workers,
        cache_size=cache_size,
        **method_options,
    )


def exact_knn_values(
    train_result: PipelineResult,
    validation_result: PipelineResult,
    source: str | None = None,
    k: int = 1,
    ledger: RunLedger | None = None,
    **options: Any,
) -> SourceImportance:
    """Exact PTIME Shapley over the pipeline's source rows (Datascope).

    The sub-second replacement for hours of Monte-Carlo retraining: the
    pipeline is compiled to canonical provenance form
    (:func:`compile_pipeline`) and the KNN-Shapley game is played with
    *source rows as players*, valued exactly — ``stderr`` is identically
    zero and ``extras["valuation"].stop_reason == "exact"``. Any ``k``
    for map-form pipelines; fork-form (a source row feeding several
    encoded rows) requires ``k=1``. Pass ``ledger=`` to record the
    compile fingerprint in the run ledger.
    """
    if validation_result.X is None:
        raise TypeError("validation pipeline result has no encoded output")
    return datascope_importance(
        train_result,
        validation_result.X,
        validation_result.y,
        source=source,
        k=k,
        method="exact_knn",
        ledger=ledger,
        **options,
    )


def remove(
    result: PipelineResult, source: str, row_ids: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Drop source tuples from the encoded matrix via provenance (Figure 3)."""
    return result.remove_source_rows(source, row_ids)


def evaluate_change(
    X_before: np.ndarray,
    y_before: np.ndarray,
    X_after: np.ndarray,
    y_after: np.ndarray,
    x_valid: np.ndarray,
    y_valid: np.ndarray,
    model: Estimator | None = None,
) -> float:
    """Accuracy delta from retraining on a modified matrix (Figure 3's
    ``nde.evaluate_change``): positive = the change helped."""
    model = model if model is not None else LogisticRegression(max_iter=100)
    before = clone(model).fit(X_before, y_before).score(x_valid, y_valid)
    after = clone(model).fit(X_after, y_after).score(x_valid, y_valid)
    return float(after - before)


def encode_symbolic(
    train_df: DataFrame,
    uncertain_feature: str = "employer_rating",
    missing_percentage: float = 10.0,
    missingness: str = "MNAR",
    feature_columns: Sequence[str] = ("employer_rating", "age"),
    label_column: str = "sentiment",
    positive_label: Any = "positive",
    seed: int = 0,
) -> UncertainDataset:
    """Figure 4's ``nde.encode_symbolic``: inject missingness, lift to intervals."""
    return _encode_symbolic(
        train_df,
        uncertain_feature=uncertain_feature,
        feature_columns=list(feature_columns),
        label_column=label_column,
        missing_percentage=missing_percentage,
        missingness=missingness,
        positive_label=positive_label,
        seed=seed,
    )


def estimate_with_zorro(
    symbolic_train: UncertainDataset,
    test_df: DataFrame,
    feature_columns: Sequence[str] = ("employer_rating", "age"),
    label_column: str = "sentiment",
    positive_label: Any = "positive",
    l2: float = 0.5,
) -> float:
    """Figure 4's ``nde.estimate_with_zorro``: maximum worst-case loss."""
    x_test = test_df.select(list(feature_columns)).to_numpy()
    # Test features must be concrete: impute any missing test cells at the
    # column mean of the symbolic training data's centers.
    centers = symbolic_train.X.center
    for j in range(x_test.shape[1]):
        column = x_test[:, j]
        column[np.isnan(column)] = centers[:, j].mean()
    y_test = test_df.column(label_column).to_list()
    report = _estimate_with_zorro(
        symbolic_train, x_test, y_test, l2=l2, positive_label=positive_label
    )
    return report["max_worst_case_loss"]


def visualize_uncertainty(max_losses: Mapping[float, float], feature: str) -> str:
    """Figure 4's ``nde.visualize_uncertainty``: render the loss curve."""
    xs = sorted(max_losses)
    chart = line_chart(
        xs,
        {"max worst-case loss": [max_losses[x] for x in xs]},
        title=f"Maximum worst-case loss vs % missing values in {feature!r}",
        x_label="percentage of missing values",
        y_label="max worst-case loss",
    )
    print(chart)
    return chart


def job_runtime(
    journal: Any | None = None,
    checkpoint_dir: Any | None = None,
    ledger: RunLedger | None = None,
    max_queue_depth: int = 64,
    max_queued_per_tenant: int | None = None,
    max_concurrency: int = 2,
    failure_threshold: int = 3,
    cooldown_s: float = 30.0,
    chaos: Any | None = None,
    train_df: DataFrame | None = None,
    validation: DataFrame | None = None,
    label_column: str = "sentiment",
    model: Estimator | None = None,
    n_workers: int = 1,
    pool: Any | None = None,
    slo: SLOPolicy | SLOTracker | None = None,
    flight_dir: Any | None = None,
) -> JobRuntime:
    """A ready-to-serve :class:`~repro.service.JobRuntime` (the nde facade).

    Wires up admission control (``max_queue_depth``, per-tenant quota),
    per-tenant circuit breakers (``failure_threshold``/``cooldown_s``),
    the crash-safe job journal, per-job checkpointing, per-tenant SLO
    tracking (``slo`` — a policy or a shared tracker), and the crash
    flight recorder (``flight_dir`` — where dumps land on worker crashes
    and failed jobs). ``pool=4``
    (an int, or a :class:`PoolRegistry`) gives valuation jobs a warm
    shared-memory worker-pool registry: sequential jobs over the same
    dataset fingerprint reuse one long-lived fleet instead of forking per
    run. When ``train_df``/``validation`` are given, a ``"valuation"``
    handler over the scenario featurisation is registered too, so::

        runtime = nde.job_runtime(journal="svc.jsonl", checkpoint_dir="ck",
                                  train_df=train_df_err, validation=valid_df)
        async with runtime:
            job = runtime.submit(nde.JobRequest(
                kind="valuation",
                params={"n_permutations": 100, "seed": 0},
                tenant="alice", deadline_s=30.0,
            ))
            values = (await job.wait()).values()

    serves deduplicated, deadline-bounded Shapley runs to many tenants.
    """
    runtime = JobRuntime(
        journal=journal,
        checkpoint_dir=checkpoint_dir,
        ledger=ledger,
        policy=AdmissionPolicy(
            max_queue_depth=max_queue_depth,
            max_queued_per_tenant=max_queued_per_tenant,
        ),
        breaker_policy=BreakerPolicy(
            failure_threshold=failure_threshold, cooldown_s=cooldown_s
        ),
        max_concurrency=max_concurrency,
        pool=pool,
        chaos=chaos,
        slo=slo,
        flight_dir=flight_dir,
    )
    if train_df is not None and validation is not None:
        engine = valuation_engine(
            train_df,
            validation,
            label_column=label_column,
            model=model,
            n_workers=n_workers,
        )
        register_valuation(runtime, lambda params: engine)
    return runtime


def telemetry_server(
    runtime: JobRuntime,
    host: str = "127.0.0.1",
    port: int = 0,
) -> TelemetryServer:
    """The operational HTTP surface for a runtime (the nde facade).

    Returns an (unstarted) :class:`~repro.service.TelemetryServer` bound to
    ``runtime``, serving ``/metrics`` (OpenMetrics text with tenant-labeled
    latency histograms), ``/healthz`` (flips to 503 while draining),
    ``/jobs``, and ``/slo``::

        runtime = nde.job_runtime(train_df=train_df_err, validation=valid_df)
        async with runtime, nde.telemetry_server(runtime) as server:
            print(f"scrape {server.url}/metrics")

    ``port=0`` (the default) binds an ephemeral port; read ``server.port``
    after ``start()``.
    """
    return TelemetryServer(runtime, host=host, port=port)
