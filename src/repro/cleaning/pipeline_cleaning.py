"""Iterative cleaning over an ML pipeline's *source* data.

The second attendee task of the hands-on session: take the flat iterative
cleaning loop and make it work when training data is produced by a
preprocessing pipeline. Each round now:

1. executes the pipeline with provenance over the current (partially
   cleaned) sources,
2. computes Datascope importance of the source tuples,
3. hands the most suspicious batch of *source rows* to the cleaning oracle,
4. re-executes and retrains, recording the quality curve.

The ranking lives in encoded space but the repairs land on raw source
tuples — the provenance round-trip that distinguishes pipeline debugging
from flat-table debugging.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..frame import DataFrame
from ..learn.base import Estimator, clone
from ..pipeline.datascope import datascope_importance
from ..pipeline.execute import execute
from ..pipeline.operators import Node
from .iterative import CleaningCurve
from .oracle import CleaningOracle

__all__ = ["pipeline_iterative_cleaning"]


def pipeline_iterative_cleaning(
    sink: Node,
    sources: Mapping[str, DataFrame],
    valid_sources: Mapping[str, DataFrame],
    train_source: str,
    oracle: CleaningOracle,
    model: Estimator,
    batch_size: int = 25,
    n_rounds: int = 4,
    k: int = 5,
) -> CleaningCurve:
    """Prioritised cleaning of a pipeline's training source table.

    Parameters
    ----------
    sink:
        The pipeline (must end in an encode node).
    sources / valid_sources:
        Source bindings for the training and validation runs; they differ
        only in the ``train_source`` entry.
    train_source:
        Name of the source table being cleaned.
    oracle:
        Budgeted ground-truth repairer for the training source.
    model:
        Unfitted classifier retrained each round on the encoded output.
    """
    current = dict(sources)
    cleaned: set[int] = set()
    curve = CleaningCurve(strategy="datascope_pipeline")

    def evaluate() -> tuple[float, "object", "object"]:
        train_result = execute(sink, current, fit=True)
        valid_result = execute(sink, valid_sources, fit=False)
        fitted = clone(model).fit(train_result.X, train_result.y)
        accuracy = float(fitted.score(valid_result.X, valid_result.y))
        return accuracy, train_result, valid_result

    accuracy, train_result, valid_result = evaluate()
    curve.records.append(
        {"round": 0, "n_cleaned": 0, "valid_accuracy": accuracy}
    )
    for round_no in range(1, n_rounds + 1):
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y,
            source=train_source, k=k,
        )
        frame = current[train_source]
        ranking = importance.lowest(frame, frame.num_rows)
        batch_ids = [
            int(frame.row_ids[p]) for p in ranking
            if int(frame.row_ids[p]) not in cleaned
        ][:batch_size]
        if not batch_ids:
            break
        current[train_source] = oracle.clean(frame, batch_ids)
        cleaned.update(batch_ids)
        accuracy, train_result, valid_result = evaluate()
        curve.records.append(
            {"round": round_no, "n_cleaned": len(cleaned), "valid_accuracy": accuracy}
        )
    return curve
