"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_recommendation_letters, make_classification
from repro.frame import DataFrame


@pytest.fixture(scope="session")
def letters_small():
    """A small letters split reused across tests (read-only)."""
    return load_recommendation_letters(n=240, seed=7)


@pytest.fixture()
def simple_frame() -> DataFrame:
    return DataFrame(
        {
            "a": [1, 2, 3, 4, 5],
            "b": ["x", "y", None, "x", "y"],
            "c": [1.5, None, 3.0, 4.5, 5.0],
            "flag": [True, False, True, True, False],
        }
    )


@pytest.fixture(scope="session")
def binary_data():
    """(x_train, y_train, x_valid, y_valid) for a separable binary task."""
    X, y = make_classification(n=160, n_features=4, seed=11)
    return X[:120], y[:120], X[120:], y[120:]


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
