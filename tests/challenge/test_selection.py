"""Tests for the DataPerf-style selection challenge."""

import numpy as np
import pytest

from repro.challenge import SelectionChallenge
from repro.importance import knn_shapley


@pytest.fixture(scope="module")
def game():
    return SelectionChallenge(n=400, budget=120, error_fraction=0.25, error_seed=31)


class TestSelectionChallenge:
    def test_budget_enforced(self, game):
        too_many = game.pool.row_ids[: game.budget + 1].tolist()
        with pytest.raises(ValueError):
            game.submit("greedy", too_many)

    def test_duplicates_rejected(self, game):
        ids = game.pool.row_ids[:5].tolist()
        with pytest.raises(ValueError):
            game.submit("cheater", ids + [ids[0]])

    def test_single_class_selection_rejected(self, game):
        labels = np.asarray(game.pool.column("sentiment").to_list())
        positives = game.pool.row_ids[labels == "positive"][:20]
        with pytest.raises(ValueError):
            game.submit("one-note", positives.tolist())

    def test_submission_recorded_on_leaderboard(self, game):
        result = game.random_baseline(seed=3)
        assert 0.0 <= result.hidden_test_accuracy <= 1.0
        names = [e.participant for e in game.leaderboard.standings()]
        assert "random-baseline-3" in names

    def test_importance_selection_avoids_errors(self, game):
        """The deterministic claim: a high-importance selection contains far
        fewer corrupted tuples than a random one would in expectation."""
        X = game.featurize(game.pool)
        y = np.asarray(game.pool.column("sentiment").to_list())
        Xv = game.featurize(game.valid)
        yv = np.asarray(game.valid.column("sentiment").to_list())
        chosen = game.pool.row_ids[
            knn_shapley(X, y, Xv, yv, k=5).highest(game.budget)
        ]
        errors = set(game.reveal_errors().tolist())
        selected_errors = len(set(chosen.tolist()) & errors)
        expected_random = game.budget * len(errors) / game.pool.num_rows
        assert selected_errors < 0.6 * expected_random

    def test_filter_and_sample_beats_random(self):
        """The DataPerf lesson: drop the harmful tail, keep diversity."""
        random_accs, fs_accs = [], []
        for seed in (31, 7):
            game = SelectionChallenge(
                n=400, budget=120, error_fraction=0.25, error_seed=seed
            )
            X = game.featurize(game.pool)
            y = np.asarray(game.pool.column("sentiment").to_list())
            Xv = game.featurize(game.valid)
            yv = np.asarray(game.valid.column("sentiment").to_list())
            importance = knn_shapley(X, y, Xv, yv, k=5)
            keep = importance.highest(int(0.7 * game.pool.num_rows))
            rng = np.random.default_rng(1)
            chosen = rng.choice(keep, size=game.budget, replace=False)
            fs_accs.append(
                game.submit("fs", game.pool.row_ids[chosen].tolist()).hidden_test_accuracy
            )
            random_accs.append(game.random_baseline(seed=0).hidden_test_accuracy)
        assert np.mean(fs_accs) > np.mean(random_accs) - 0.02
