"""Atomic file writes — readers never observe torn lines.

Every on-disk artifact this library produces (the :class:`~repro.obs.ledger.
RunLedger` JSONL, trace exports, valuation checkpoints) may be read while a
writer is mid-flight — a monitoring dashboard tailing the ledger, a resumed
run loading the checkpoint a killed run was writing. A plain ``open(...,
"w")`` or ``"a"`` exposes two failure windows: a reader can observe a
half-written ("torn") line, and a writer killed mid-write leaves a corrupt
file behind permanently.

The helpers here close both windows with the classic ``write temp + fsync +
rename`` protocol: content is staged in a temporary file *in the target's
directory* (same filesystem, so the rename is atomic), flushed and fsync'd,
then moved over the target with :func:`os.replace`. POSIX guarantees that
readers see either the old file or the new one, never a mixture; a writer
killed at any point leaves the target untouched (the orphaned ``*.tmp``
staging file is invisible to loaders and reclaimed on the next write).

Appends (:func:`atomic_append_line`) are implemented as copy + append +
rename, which is O(file size) per append — the right trade for the small,
human-scale ledgers this library writes. Lenient line-skipping loaders stay
in place downstream as defense-in-depth for files produced by third-party
writers that do not use this module.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

__all__ = ["atomic_writer", "atomic_write_text", "atomic_append_line"]


@contextmanager
def atomic_writer(path: Any, encoding: str = "utf-8") -> Iterator[TextIO]:
    """Context manager yielding a text handle whose contents replace ``path``
    atomically on clean exit.

    On an exception inside the body, the staging file is removed and the
    target is left exactly as it was — a crashed writer is invisible.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Any, text: str, encoding: str = "utf-8") -> None:
    """Replace ``path``'s contents with ``text`` atomically."""
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)


def atomic_append_line(path: Any, line: str, encoding: str = "utf-8") -> None:
    """Append one line to ``path`` so readers never see a torn suffix.

    The existing contents are copied to a staging file, the new line is
    appended (a trailing newline is added if missing), and the staging file
    is renamed over the original. Concurrent readers observe either the old
    file or the old file plus the complete new line — never a prefix of it.
    """
    path = Path(path)
    if not line.endswith("\n"):
        line += "\n"
    existing = ""
    if path.exists():
        with open(path, "r", encoding=encoding) as handle:
            existing = handle.read()
        if existing and not existing.endswith("\n"):
            # A torn tail from a non-atomic writer: quarantine it behind a
            # newline so the lenient loader skips exactly one bad line.
            existing += "\n"
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(existing)
        handle.write(line)
