"""Fault-tolerant valuation runtime: recovery overhead and resume fidelity.

Two questions the supervision + checkpoint layers must answer with numbers:

1. **What does surviving a fault cost?** A parallel Shapley run with an
   injected worker crash *and* an injected worker hang is timed against the
   same run with no faults. The gap is the recovery overhead: detection
   latency (the hang deadline), two re-forks, and one re-executed chunk
   each. Values must stay bit-identical to serial throughout.
2. **What does a kill cost after a checkpoint?** A run is stopped partway
   (budget knob standing in for ``kill -9`` — the snapshot format is
   identical) and resumed from its wave-boundary snapshot. Fidelity must be
   bit-exact, and the resumed run must only pay for the permutations that
   were *not* yet in the snapshot.

Environment knobs (CI smoke sizes): ``REPRO_BENCH_FT_N`` (game size),
``REPRO_BENCH_FT_PERMS`` (permutations), ``REPRO_BENCH_FT_DELAY`` (per-eval
sleep, seconds — gives chunks a measurable latency so hang detection has
something to time).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.errors import ChaosMonkey
from repro.importance import SubsetUtility, ValuationEngine
from repro.importance.engine import _FORK_CTX
from repro.viz import format_records

N = int(os.environ.get("REPRO_BENCH_FT_N", "12"))
PERMS = int(os.environ.get("REPRO_BENCH_FT_PERMS", "30"))
DELAY = float(os.environ.get("REPRO_BENCH_FT_DELAY", "0.002"))
SEED = 7


def make_game(delay: float = DELAY) -> SubsetUtility:
    rng = np.random.default_rng(3)
    w = rng.normal(size=N)

    def func(indices):
        if delay:
            time.sleep(delay)
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, N)


def run_fault_tolerance() -> dict:
    serial = ValuationEngine(make_game()).run_permutations(PERMS, seed=SEED)

    t0 = time.perf_counter()
    clean_engine = ValuationEngine(make_game(), n_workers=2)
    clean = clean_engine.run_permutations(PERMS, seed=SEED)
    clean_s = time.perf_counter() - t0

    chaos = ChaosMonkey(
        worker_crash_chunks=[1], worker_hang_chunks=[2], hang_duration=60.0
    )
    t0 = time.perf_counter()
    chaos_engine = ValuationEngine(
        make_game(), n_workers=2, chaos=chaos, chunk_timeout_s=1.0
    )
    chaotic = chaos_engine.run_permutations(PERMS, seed=SEED)
    chaos_s = time.perf_counter() - t0

    # Kill/resume fidelity: stop partway, resume from the snapshot.
    from tempfile import TemporaryDirectory

    full_game = make_game()
    t0 = time.perf_counter()
    uninterrupted = ValuationEngine(full_game).run_permutations(PERMS, seed=SEED)
    full_s = time.perf_counter() - t0
    with TemporaryDirectory() as tmp:
        ck = os.path.join(tmp, "ck.json")
        partial_game = make_game()
        partial = ValuationEngine(partial_game, checkpoint=ck).run_permutations(
            PERMS, seed=SEED, max_evals=max(2, full_game.n_evaluations // 3)
        )
        resumed_game = make_game()
        t0 = time.perf_counter()
        resumed = ValuationEngine(
            resumed_game, checkpoint=ck, resume=True
        ).run_permutations(PERMS, seed=SEED)
        resume_s = time.perf_counter() - t0

    return {
        "clean_parallel_s": round(clean_s, 4),
        "chaos_parallel_s": round(chaos_s, 4),
        "recovery_overhead_s": round(chaos_s - clean_s, 4),
        "worker_restarts": chaos_engine.worker_restarts,
        "crashes": chaos_engine.supervision.crashes,
        "hangs": chaos_engine.supervision.hangs,
        "chunk_retries": chaos_engine.supervision.chunk_retries,
        "parallel_bit_identical": bool(
            np.array_equal(clean.values(), serial.values())
        ),
        "chaos_bit_identical": bool(
            np.array_equal(chaotic.values(), serial.values())
        ),
        "resume": {
            "full_run_s": round(full_s, 4),
            "resume_s": round(resume_s, 4),
            "permutations_checkpointed": partial.n_permutations,
            "evals_full": full_game.n_evaluations,
            "evals_resumed": resumed_game.n_evaluations,
            "evals_saved_frac": round(
                1.0 - resumed_game.n_evaluations / max(1, full_game.n_evaluations),
                3,
            ),
            "resume_bit_identical": bool(
                np.array_equal(resumed.values(), uninterrupted.values())
            ),
        },
    }


@pytest.mark.skipif(_FORK_CTX is None, reason="requires a fork-capable platform")
def test_fault_tolerance(benchmark, write_report):
    result = benchmark.pedantic(run_fault_tolerance, rounds=1, iterations=1)
    resume = result["resume"]
    rows = [
        {
            "scenario": "parallel, no faults",
            "wall_s": result["clean_parallel_s"],
            "bit_identical": result["parallel_bit_identical"],
        },
        {
            "scenario": "parallel, 1 crash + 1 hang injected",
            "wall_s": result["chaos_parallel_s"],
            "bit_identical": result["chaos_bit_identical"],
        },
        {
            "scenario": "serial, uninterrupted",
            "wall_s": resume["full_run_s"],
            "bit_identical": True,
        },
        {
            "scenario": "serial, killed + resumed",
            "wall_s": resume["resume_s"],
            "bit_identical": resume["resume_bit_identical"],
        },
    ]
    report = format_records(rows)
    report += (
        f"\n\nrecovery overhead: {result['recovery_overhead_s']:.3f}s"
        f" ({result['worker_restarts']} restarts:"
        f" {result['crashes']} crash, {result['hangs']} hang,"
        f" {result['chunk_retries']} chunk retries)"
        f"\nresume skipped {resume['permutations_checkpointed']}/{PERMS}"
        f" checkpointed permutations"
        f" ({resume['evals_saved_frac']:.0%} of evaluations saved)"
    )
    write_report("fault_tolerance", report, records=result)

    # Fidelity is non-negotiable; timing asserts stay loose (shared runners).
    assert result["parallel_bit_identical"]
    assert result["chaos_bit_identical"]
    assert resume["resume_bit_identical"]
    assert result["worker_restarts"] >= 2
    assert result["crashes"] == 1 and result["hangs"] == 1
    assert resume["evals_resumed"] < resume["evals_full"]
