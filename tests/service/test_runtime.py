"""JobRuntime behaviour: dedup fan-out, deadlines, retries, breakers, chaos.

Tests drive the runtime through ``asyncio.run`` (no pytest-asyncio
dependency); handlers are cheap synthetic callables except where the real
valuation engine is the point.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.errors.chaos import ChaosError, ChaosMonkey
from repro.importance import SubsetUtility, ValuationEngine
from repro.obs import RunLedger
from repro.service import (
    AdmissionPolicy,
    BreakerPolicy,
    JobJournal,
    JobRejected,
    JobRequest,
    JobRuntime,
    JobState,
    RetryPolicy,
    register_valuation,
)


def tanh_game(n: int = 8, seed: int = 3) -> SubsetUtility:
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, n)


def run(coro):
    return asyncio.run(coro)


class TestBasicExecution:
    def test_jobs_complete_and_journal_terminates(self, tmp_path):
        async def main():
            runtime = JobRuntime(journal=tmp_path / "j.jsonl", max_concurrency=2)
            runtime.register_handler("echo", lambda p, ctx: p["x"])
            async with runtime:
                jobs = [
                    runtime.submit(
                        JobRequest(kind="echo", params={"x": i}, dedup=False)
                    )
                    for i in range(5)
                ]
                results = [await job.wait() for job in jobs]
            assert results == list(range(5))
            assert all(job.state is JobState.COMPLETED for job in jobs)
            assert JobJournal(tmp_path / "j.jsonl").in_flight() == []

        run(main())

    def test_unknown_kind_is_rejected_with_reason(self):
        async def main():
            runtime = JobRuntime()
            async with runtime:
                with pytest.raises(JobRejected, match="unknown_kind"):
                    runtime.submit(JobRequest(kind="nope"))
            assert runtime.counts["rejected"] == 1

        run(main())

    def test_stats_shape(self):
        async def main():
            runtime = JobRuntime()
            runtime.register_handler("noop", lambda p, ctx: None)
            async with runtime:
                await runtime.submit(JobRequest(kind="noop")).wait()
            return runtime.stats()

        stats = run(main())
        assert stats["completed"] == 1 and stats["queue_depth"] == 0
        assert stats["max_queue_depth_seen"] >= 0


class TestDedup:
    def test_identical_requests_share_one_execution(self):
        executions = []

        async def main():
            runtime = JobRuntime(max_concurrency=1)
            gate = threading.Event()

            def handler(params, ctx):
                executions.append(params)
                gate.wait(timeout=5.0)
                return "shared"

            runtime.register_handler("v", handler)
            async with runtime:
                request = JobRequest(
                    kind="v", params={"n": 3}, dataset_fingerprint="fp"
                )
                first = runtime.submit(request)
                while first.state is not JobState.RUNNING:
                    await asyncio.sleep(0.001)
                # Different tenant, same computation: dedups onto `first`.
                second = runtime.submit(
                    JobRequest(
                        kind="v", params={"n": 3}, dataset_fingerprint="fp",
                        tenant="other",
                    )
                )
                assert second is first and first.subscribers == 2
                gate.set()
                assert await first.wait() == "shared"
            assert runtime.counts["deduplicated"] == 1

        run(main())
        assert len(executions) == 1

    def test_different_fingerprints_do_not_dedup(self):
        async def main():
            runtime = JobRuntime()
            runtime.register_handler("v", lambda p, ctx: None)
            async with runtime:
                a = runtime.submit(
                    JobRequest(kind="v", dataset_fingerprint="one")
                )
                b = runtime.submit(
                    JobRequest(kind="v", dataset_fingerprint="two")
                )
                assert a is not b
                await a.wait(), await b.wait()

        run(main())

    def test_dedup_opt_out(self):
        async def main():
            runtime = JobRuntime(max_concurrency=1)
            runtime.register_handler("v", lambda p, ctx: None)
            async with runtime:
                a = runtime.submit(JobRequest(kind="v", dedup=False))
                b = runtime.submit(JobRequest(kind="v", dedup=False))
                assert a is not b

        run(main())

    def test_subscribers_stream_partial_results(self):
        async def main():
            runtime = JobRuntime(max_concurrency=1)

            def handler(params, ctx):
                for step in range(3):
                    ctx.progress({"completed": step + 1, "target": 3})
                    time.sleep(0.01)
                return "done"

            runtime.register_handler("v", handler)
            async with runtime:
                job = runtime.submit(JobRequest(kind="v"))
                seen = [s["completed"] async for s in job.stream()]
                assert await job.wait() == "done"
            return seen

        seen = run(main())
        assert seen and seen == sorted(seen) and seen[-1] == 3


class TestDeadlines:
    def test_expired_deadline_degrades_valuation_to_partial(self):
        async def main():
            runtime = JobRuntime()
            engine = ValuationEngine(tanh_game())
            register_valuation(runtime, lambda params: engine)
            async with runtime:
                job = runtime.submit(
                    JobRequest(
                        kind="valuation",
                        params={"n_permutations": 4, "seed": 0},
                        deadline_s=0.0,  # already expired at submission
                    )
                )
                result = await job.wait()
            assert job.state is JobState.DEGRADED
            assert job.stop_reason == "deadline"
            assert result.n_evaluations == 0  # returned immediately
            assert np.all(np.isfinite(result.values()))

        run(main())

    def test_remaining_deadline_shrinks_while_queued(self):
        async def main():
            runtime = JobRuntime()
            runtime.register_handler("v", lambda p, ctx: ctx.deadline_s)
            async with runtime:
                job = runtime.submit(JobRequest(kind="v", deadline_s=60.0))
                remaining = await job.wait()
            assert 0.0 < remaining <= 60.0

        run(main())


class TestRetriesAndBreaker:
    def test_retry_budget_then_success(self):
        attempts = []

        async def main():
            runtime = JobRuntime(
                retry=RetryPolicy(backoff_base_s=0.001, max_backoff_s=0.002)
            )

            def flaky(params, ctx):
                attempts.append(ctx.attempt)
                if len(attempts) < 3:
                    raise RuntimeError("transient")
                return "recovered"

            runtime.register_handler("v", flaky)
            async with runtime:
                job = runtime.submit(JobRequest(kind="v", max_retries=3))
                assert await job.wait() == "recovered"
            assert job.attempts == 3
            assert runtime.counts["retries"] == 2

        run(main())
        assert attempts == [0, 1, 2]

    def test_exhausted_retries_fail_terminally(self):
        async def main():
            runtime = JobRuntime(retry=RetryPolicy(backoff_base_s=0.001))

            def always_broken(params, ctx):
                raise ValueError("permanently wrong")

            runtime.register_handler("v", always_broken)
            async with runtime:
                job = runtime.submit(JobRequest(kind="v", max_retries=1))
                with pytest.raises(RuntimeError, match="permanently wrong"):
                    await job.wait()
            assert job.state is JobState.FAILED and job.attempts == 2

        run(main())

    def test_failing_tenant_trips_its_breaker_only(self):
        async def main():
            runtime = JobRuntime(
                breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_s=60.0),
                retry=RetryPolicy(backoff_base_s=0.0),
            )

            def broken(params, ctx):
                raise RuntimeError("boom")

            runtime.register_handler("bad", broken)
            runtime.register_handler("good", lambda p, ctx: "ok")
            async with runtime:
                for __ in range(2):
                    job = runtime.submit(
                        JobRequest(kind="bad", tenant="sick", dedup=False)
                    )
                    with pytest.raises(RuntimeError):
                        await job.wait()
                with pytest.raises(JobRejected, match="circuit_open"):
                    runtime.submit(JobRequest(kind="bad", tenant="sick"))
                healthy = runtime.submit(
                    JobRequest(kind="good", tenant="healthy")
                )
                assert await healthy.wait() == "ok"

        run(main())


class TestBackpressure:
    def test_queue_full_under_storm_and_every_job_terminal(self):
        async def main():
            runtime = JobRuntime(
                policy=AdmissionPolicy(max_queue_depth=3), max_concurrency=1
            )
            gate = threading.Event()
            runtime.register_handler(
                "v", lambda p, ctx: gate.wait(timeout=10.0)
            )
            async with runtime:
                accepted, rejected = [], 0
                first = runtime.submit(JobRequest(kind="v", dedup=False))
                while first.state is not JobState.RUNNING:
                    await asyncio.sleep(0.001)
                accepted.append(first)
                for __ in range(10):
                    try:
                        accepted.append(
                            runtime.submit(JobRequest(kind="v", dedup=False))
                        )
                    except JobRejected as exc:
                        assert exc.reason == "queue_full"
                        rejected += 1
                assert len(runtime.admission.queue) <= 3
                gate.set()
                for job in accepted:
                    await job.wait()
            assert rejected == 7  # 1 running + 3 queued admitted
            assert all(job.done for job in runtime.jobs.values())

        run(main())

    def test_priority_shed_notifies_the_victim(self):
        async def main():
            runtime = JobRuntime(
                policy=AdmissionPolicy(max_queue_depth=1), max_concurrency=1
            )
            gate = threading.Event()
            runtime.register_handler(
                "v", lambda p, ctx: gate.wait(timeout=10.0)
            )
            async with runtime:
                blocker = runtime.submit(JobRequest(kind="v", dedup=False))
                while blocker.state is not JobState.RUNNING:
                    await asyncio.sleep(0.001)
                victim = runtime.submit(
                    JobRequest(kind="v", priority=0, dedup=False)
                )
                vip = runtime.submit(
                    JobRequest(kind="v", priority=5, dedup=False)
                )
                with pytest.raises(JobRejected, match="shed_by_priority"):
                    await victim.wait()
                assert victim.state is JobState.REJECTED
                gate.set()
                await blocker.wait(), await vip.wait()
            assert runtime.counts["shed"] == 1

        run(main())


class TestChaosAndLedger:
    def test_planned_job_crash_is_retried_then_succeeds(self):
        async def main():
            chaos = ChaosMonkey(
                seed=7, job_crash_jobs=[0]
            )  # first job crashes on attempt 0 only
            runtime = JobRuntime(
                chaos=chaos, retry=RetryPolicy(backoff_base_s=0.001)
            )
            runtime.register_handler("v", lambda p, ctx: "survived")
            async with runtime:
                job = runtime.submit(JobRequest(kind="v", max_retries=1))
                assert await job.wait() == "survived"
            assert job.attempts == 2
            assert any(f.kind == "job_crash" for f in chaos.triggered)

        run(main())

    def test_unretried_chaos_crash_fails_terminally(self):
        async def main():
            runtime = JobRuntime(chaos=ChaosMonkey(seed=7, job_crash_jobs=[0]))
            runtime.register_handler("v", lambda p, ctx: "never")
            async with runtime:
                job = runtime.submit(JobRequest(kind="v"))  # max_retries=0
                with pytest.raises(RuntimeError, match="ChaosError"):
                    await job.wait()
            assert job.state is JobState.FAILED

        run(main())

    def test_terminal_jobs_are_ledger_recorded(self, tmp_path):
        async def main():
            ledger = RunLedger(tmp_path / "ledger.jsonl")
            runtime = JobRuntime(ledger=ledger)
            runtime.register_handler("v", lambda p, ctx: "ok")
            async with runtime:
                await runtime.submit(
                    JobRequest(kind="v", tenant="alice")
                ).wait()
            records = [r for r in ledger.load() if r.kind == "service"]
            assert len(records) == 1
            assert records[0].config["tenant"] == "alice"
            assert records[0].stats["state"] == "completed"

        run(main())
