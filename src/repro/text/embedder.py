"""Dense text embedding: the offline stand-in for SentenceBERT.

The paper's Figure 3 pipeline encodes ``letter_text`` with a
``SentenceBertTransformer``. No pretrained model is available offline, so we
build a deterministic embedding with the same *shape* of behaviour: a dense
fixed-width vector in which sentiment-bearing content is linearly separable.
The embedding concatenates hashed n-gram features (topical content) with
lexicon statistics (polarity signal).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..learn.base import Transformer
from ..learn.preprocessing.encoders import as_cells
from .hashing import HashingVectorizer
from .lexicon import SentimentLexicon

__all__ = ["TextEmbedder", "SentenceBertTransformer"]


class TextEmbedder(Transformer):
    """Embed texts into ``n_features + 4`` dense dimensions.

    The last four dimensions are interpretable lexicon statistics:
    positive-hit rate, negative-hit rate, hedge rate, and log-length.
    Missing texts embed to the zero vector.
    """

    def __init__(self, n_features: int = 64, ngram_range: tuple[int, int] = (1, 2)) -> None:
        self.n_features = int(n_features)
        self.ngram_range = ngram_range
        self._vectorizer = HashingVectorizer(n_features=self.n_features, ngram_range=ngram_range)
        self._lexicon = SentimentLexicon()

    @property
    def output_dim(self) -> int:
        return self.n_features + 4

    def fit(self, X: Any, y: Any = None) -> "TextEmbedder":
        self.fitted_ = True  # stateless; hashing needs no vocabulary
        return self

    def embed_one(self, text: str | None) -> np.ndarray:
        if text is None or not str(text).strip():
            return np.zeros(self.output_dim)
        text = str(text)
        hashed = self._vectorizer.transform_one(text)
        tokens = SentimentLexicon.tokenize(text)
        n_tokens = max(len(tokens), 1)
        pos, neg, hedge = self._lexicon.counts(text)
        # The length statistic is damped to the same O(0.1) scale as the
        # rate features: the hashed block is unit-norm, and an unscaled
        # log-length would dominate every distance computation.
        stats = np.asarray(
            [pos / n_tokens, neg / n_tokens, hedge / n_tokens, np.log1p(n_tokens) / 10.0]
        )
        return np.concatenate([hashed, stats])

    def transform(self, X: Any) -> np.ndarray:
        cells = as_cells(X)
        if not len(cells):
            return np.empty((0, self.output_dim))
        return np.vstack([self.embed_one(c) for c in cells])

    def embed(self, texts: Iterable[str]) -> np.ndarray:
        """Convenience alias used outside transformer pipelines."""
        return self.transform(list(texts))


class SentenceBertTransformer(TextEmbedder):
    """Alias matching the class name used in the paper's code snippets."""
