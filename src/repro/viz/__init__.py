"""Text-based visualisation: tables, line/bar charts, query-plan rendering."""

from .ascii_chart import bar_chart, histogram, line_chart, reliability_chart
from .table import format_records, format_table, pretty_print

__all__ = [
    "bar_chart",
    "histogram",
    "line_chart",
    "reliability_chart",
    "format_records",
    "format_table",
    "pretty_print",
]
