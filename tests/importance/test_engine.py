"""The shared valuation engine: legacy equivalence, worker invariance,
cache accounting, and convergence-based stopping.

The legacy implementations embedded below are verbatim copies of the
pre-engine serial estimators; the engine-backed wrappers must reproduce
them bit-for-bit on deterministic set games (and to FP-roundoff on
retraining games, where the engine's canonical sorted-index evaluation
order can flip low bits of the model fit).
"""

from itertools import chain, combinations

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.importance import (
    SubsetCache,
    SubsetUtility,
    Utility,
    ValuationEngine,
    banzhaf_mc,
    beta_shapley_mc,
    beta_weights,
    loo_importance,
    parallel_map,
    shapley_brute_force,
    shapley_mc,
)
from repro.learn import LogisticRegression

# --------------------------------------------------------------------- #
# legacy (pre-engine) serial implementations                            #
# --------------------------------------------------------------------- #


def legacy_shapley_mc(utility, n_permutations=100, truncation_tolerance=0.0, seed=0):
    rng = np.random.default_rng(seed)
    n = utility.n_train
    full = utility.full_score()
    null = utility.evaluate([])
    totals = np.zeros(n)
    counts = np.zeros(n)
    for __ in range(n_permutations):
        order = rng.permutation(n)
        prev = null
        prefix = []
        for step, i in enumerate(order):
            if (
                truncation_tolerance > 0.0
                and step > 0
                and abs(full - prev) <= truncation_tolerance
            ):
                counts[order[step:]] += 1
                break
            prefix.append(int(i))
            current = utility.evaluate(prefix)
            totals[i] += current - prev
            counts[i] += 1
            prev = current
    return totals / np.maximum(counts, 1)


def legacy_banzhaf_mc(utility, n_samples=200, seed=0):
    rng = np.random.default_rng(seed)
    n = utility.n_train
    membership = rng.random((n_samples, n)) < 0.5
    scores = np.empty(n_samples)
    for s in range(n_samples):
        scores[s] = utility.evaluate(np.flatnonzero(membership[s]))
    values = np.zeros(n)
    for i in range(n):
        with_i = membership[:, i]
        n_with = int(with_i.sum())
        if n_with == 0 or n_with == n_samples:
            values[i] = 0.0
            continue
        values[i] = scores[with_i].mean() - scores[~with_i].mean()
    return values


def legacy_beta_shapley_mc(utility, alpha=1.0, beta=16.0, n_permutations=100, seed=0):
    rng = np.random.default_rng(seed)
    n = utility.n_train
    weights = beta_weights(n, alpha, beta) * n
    null = utility.evaluate([])
    totals = np.zeros(n)
    counts = np.zeros(n)
    for __ in range(n_permutations):
        order = rng.permutation(n)
        prev = null
        prefix = []
        for position, i in enumerate(order):
            prefix.append(int(i))
            current = utility.evaluate(prefix)
            totals[i] += weights[position] * (current - prev)
            counts[i] += 1
            prev = current
    return totals / np.maximum(counts, 1)


# --------------------------------------------------------------------- #
# games                                                                 #
# --------------------------------------------------------------------- #


def table_game(n=8, seed=3):
    """Random set game via table lookup — deterministic and order-free."""
    rng = np.random.default_rng(seed)
    table = {
        frozenset(S): float(rng.normal())
        for S in chain.from_iterable(combinations(range(n), k) for k in range(n + 1))
    }
    table[frozenset()] = 0.0
    return SubsetUtility(lambda S: table[frozenset(S)], n)


def additive_game(weights):
    w = np.asarray(weights, dtype=float)
    return SubsetUtility(
        lambda S: float(np.sum(w[np.asarray(sorted(S), dtype=np.int64)]))
        if len(S)
        else 0.0,
        len(w),
    )


def saturating_game(n=12, plateau=3):
    """v(S) = min(|S|, plateau)/plateau — known Shapley value 1/n each
    (symmetry + efficiency), saturating so truncation is exact."""
    return SubsetUtility(lambda S: min(len(S), plateau) / plateau, n)


@pytest.fixture(scope="module")
def model_game_factory():
    X, y = make_classification(n=36, n_features=3, seed=0)

    def factory():
        return Utility(LogisticRegression(max_iter=25), X[:28], y[:28], X[28:], y[28:])

    return factory


# --------------------------------------------------------------------- #
# legacy regression                                                     #
# --------------------------------------------------------------------- #


class TestLegacyEquivalence:
    """Same seed ⇒ engine-backed wrappers == pre-refactor serial values."""

    def test_shapley_bitwise_on_set_game(self):
        expected = legacy_shapley_mc(table_game(), n_permutations=40, seed=5)
        got = shapley_mc(table_game(), n_permutations=40, seed=5).values
        assert np.array_equal(got, expected)

    def test_truncated_shapley_bitwise_on_set_game(self):
        expected = legacy_shapley_mc(
            table_game(), n_permutations=40, truncation_tolerance=0.6, seed=7
        )
        got = shapley_mc(
            table_game(), n_permutations=40, truncation_tolerance=0.6, seed=7
        ).values
        assert np.array_equal(got, expected)

    def test_banzhaf_bitwise_on_set_game(self):
        expected = legacy_banzhaf_mc(table_game(), n_samples=120, seed=2)
        got = banzhaf_mc(table_game(), n_samples=120, seed=2).values
        assert np.array_equal(got, expected)

    def test_beta_shapley_bitwise_on_set_game(self):
        expected = legacy_beta_shapley_mc(
            table_game(), alpha=1.0, beta=16.0, n_permutations=25, seed=9
        )
        got = beta_shapley_mc(
            table_game(), alpha=1.0, beta=16.0, n_permutations=25, seed=9
        ).values
        assert np.array_equal(got, expected)

    def test_shapley_on_retraining_game(self, model_game_factory):
        expected = legacy_shapley_mc(model_game_factory(), n_permutations=3, seed=1)
        got = shapley_mc(model_game_factory(), n_permutations=3, seed=1).values
        assert np.allclose(got, expected, atol=1e-8)

    def test_banzhaf_on_retraining_game(self, model_game_factory):
        expected = legacy_banzhaf_mc(model_game_factory(), n_samples=20, seed=4)
        got = banzhaf_mc(model_game_factory(), n_samples=20, seed=4).values
        assert np.allclose(got, expected, atol=1e-8)


# --------------------------------------------------------------------- #
# worker invariance                                                     #
# --------------------------------------------------------------------- #


class TestWorkerInvariance:
    """Same seed ⇒ identical values whatever the worker count."""

    @pytest.mark.parametrize("trunc", [0.0, 0.6])
    def test_shapley_set_game(self, trunc):
        serial = shapley_mc(
            table_game(), n_permutations=24, truncation_tolerance=trunc, seed=1
        ).values
        fanned = shapley_mc(
            table_game(),
            n_permutations=24,
            truncation_tolerance=trunc,
            seed=1,
            n_workers=4,
        ).values
        assert np.array_equal(serial, fanned)

    def test_shapley_retraining_game(self, model_game_factory):
        serial = shapley_mc(model_game_factory(), n_permutations=3, seed=0).values
        fanned = shapley_mc(
            model_game_factory(), n_permutations=3, seed=0, n_workers=4
        ).values
        assert np.array_equal(serial, fanned)

    def test_banzhaf_and_beta_and_loo(self):
        assert np.array_equal(
            banzhaf_mc(table_game(), n_samples=50, seed=3).values,
            banzhaf_mc(table_game(), n_samples=50, seed=3, n_workers=3).values,
        )
        assert np.array_equal(
            beta_shapley_mc(table_game(), n_permutations=12, seed=6).values,
            beta_shapley_mc(
                table_game(), n_permutations=12, seed=6, n_workers=3
            ).values,
        )
        assert np.array_equal(
            loo_importance(table_game()).values,
            loo_importance(table_game(), n_workers=3).values,
        )

    def test_convergence_stop_is_worker_invariant(self):
        kwargs = dict(
            n_permutations=200, seed=0, convergence_tolerance=0.3, check_every=5
        )
        serial = shapley_mc(table_game(), **kwargs)
        fanned = shapley_mc(table_game(), n_workers=4, **kwargs)
        assert serial.extras["n_permutations_run"] == fanned.extras["n_permutations_run"]
        assert np.array_equal(serial.values, fanned.values)

    def test_parallel_accounts_evaluations(self):
        game = table_game()
        shapley_mc(game, n_permutations=8, seed=0, n_workers=4)
        # Workers report their evaluation counts back to the driver's game.
        assert game.n_evaluations > 0


# --------------------------------------------------------------------- #
# truncation + convergence-based stopping                               #
# --------------------------------------------------------------------- #


class TestConvergence:
    def test_additive_game_stops_at_first_check(self):
        w = [0.4, -1.2, 2.0, 0.1, 0.7]
        result = shapley_mc(
            additive_game(w),
            n_permutations=500,
            seed=0,
            convergence_tolerance=1e-9,
            check_every=5,
        )
        # Additive ⇒ zero-variance marginals ⇒ stderr 0 after any 2 scans.
        assert result.extras["stopped_early"]
        assert result.extras["n_permutations_run"] == 5
        assert result.extras["max_stderr"] <= 1e-9
        assert np.allclose(result.values, w, atol=1e-12)

    def test_stopped_estimate_matches_full_run_with_truncation(self):
        """Truncation + early stopping together on a known-Shapley game."""
        n, tol = 12, 0.02
        full_run = shapley_mc(saturating_game(n), n_permutations=400, seed=0)
        stopped = shapley_mc(
            saturating_game(n),
            n_permutations=400,
            seed=0,
            truncation_tolerance=1e-9,
            convergence_tolerance=tol,
            check_every=10,
        )
        assert stopped.extras["stopped_early"]
        assert stopped.extras["n_permutations_run"] < 400
        assert stopped.extras["truncated_scans"] > 0
        # True Shapley value is 1/n for every point (symmetry+efficiency);
        # the stopped estimate is within the stderr tolerance of both the
        # truth and the full-budget run.
        assert np.allclose(stopped.values, 1.0 / n, atol=3 * tol)
        assert np.allclose(stopped.values, full_run.values, atol=3 * tol)

    def test_tight_tolerance_exhausts_budget(self):
        result = shapley_mc(
            table_game(),
            n_permutations=12,
            seed=0,
            convergence_tolerance=1e-12,
            check_every=4,
        )
        assert not result.extras["stopped_early"]
        assert result.extras["n_permutations_run"] == 12

    def test_stderr_shrinks_with_more_permutations(self):
        game = table_game(n=6, seed=1)
        engine = ValuationEngine(game)
        short = engine.run_permutations(10, seed=0)
        long = engine.run_permutations(100, seed=0)
        assert np.max(long.stderr()) < np.max(short.stderr())


# --------------------------------------------------------------------- #
# cache                                                                 #
# --------------------------------------------------------------------- #


class TestSubsetCache:
    def test_lru_eviction_and_counters(self):
        cache = SubsetCache(max_size=2)
        cache.put((1,), 1.0)
        cache.put((2,), 2.0)
        assert cache.lookup((1,)) == 1.0  # refresh (1,) — (2,) is now LRU
        cache.put((3,), 3.0)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert (2,) not in cache and (1,) in cache and (3,) in cache

    def test_key_is_sorted_tuple(self):
        assert SubsetCache.key([3, 1, 2]) == (1, 2, 3)
        assert SubsetCache.key(np.asarray([2, 0])) == (0, 2)

    def test_zero_size_disables_memoization(self):
        game = table_game(n=5)
        engine = ValuationEngine(game, cache_size=0)
        engine.evaluate([1, 2])
        engine.evaluate([1, 2])
        assert game.n_evaluations == 2
        assert len(engine.cache) == 0


class TestEngineSharing:
    def test_warm_rerun_is_free_and_identical(self):
        game = table_game()
        engine = ValuationEngine(game)
        first = shapley_mc(None, n_permutations=10, seed=0, engine=engine)
        evals_after_first = game.n_evaluations
        second = shapley_mc(None, n_permutations=10, seed=0, engine=engine)
        assert np.array_equal(first.values, second.values)
        assert game.n_evaluations == evals_after_first  # all cache hits
        assert second.extras["cache"]["hit_rate"] > 0.4

    def test_cache_shared_across_estimators(self):
        game = table_game()
        engine = ValuationEngine(game)
        loo_importance(None, engine=engine)  # seeds v(N) and all v(N\{i})
        evals = game.n_evaluations
        result = banzhaf_mc(None, n_samples=30, seed=0, engine=engine)
        # Banzhaf's half-density samples overlap LOO's subsets rarely, but
        # the engine counters must reflect whatever sharing occurred and
        # the totals must reconcile: evaluations = misses (no double work).
        stats = result.extras["cache"]
        assert stats["hits"] + stats["misses"] == engine.cache.hits + engine.cache.misses
        assert game.n_evaluations >= evals
        assert stats["misses"] == game.n_evaluations

    def test_extras_report_engine_accounting(self):
        result = shapley_mc(table_game(), n_permutations=5, seed=0)
        for key in ("cache", "n_evaluations", "n_workers", "n_permutations_run"):
            assert key in result.extras
        assert result.extras["cache"]["misses"] > 0

    def test_engine_or_utility_required(self):
        with pytest.raises(ValueError):
            shapley_mc(None, n_permutations=3)
        with pytest.raises(ValueError):
            banzhaf_mc(None, n_samples=5)


# --------------------------------------------------------------------- #
# antithetic pairs                                                      #
# --------------------------------------------------------------------- #


class TestAntithetic:
    def test_exact_on_additive_games(self):
        w = [1.0, -2.0, 0.5, 3.0]
        result = shapley_mc(additive_game(w), n_permutations=7, seed=0, antithetic=True)
        assert np.allclose(result.values, w, atol=1e-12)

    def test_unbiased_against_brute_force(self):
        game = table_game(n=5, seed=11)
        exact = shapley_brute_force(table_game(n=5, seed=11)).values
        estimate = shapley_mc(game, n_permutations=2000, seed=0, antithetic=True).values
        assert np.allclose(estimate, exact, atol=0.12)

    def test_orderings_come_in_reversed_pairs(self):
        engine = ValuationEngine(table_game(n=6))
        orderings = engine._draw_orderings(6, seed=0, antithetic=True)
        for base, mirror in zip(orderings[::2], orderings[1::2]):
            assert np.array_equal(base[::-1], mirror)

    def test_worker_invariant(self):
        serial = shapley_mc(
            table_game(), n_permutations=11, seed=2, antithetic=True
        ).values
        fanned = shapley_mc(
            table_game(), n_permutations=11, seed=2, antithetic=True, n_workers=4
        ).values
        assert np.array_equal(serial, fanned)


# --------------------------------------------------------------------- #
# parallel_map                                                          #
# --------------------------------------------------------------------- #


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(17))
        assert parallel_map(lambda x: x * x, items, n_workers=3) == [
            x * x for x in items
        ]

    def test_serial_fallback(self):
        assert parallel_map(lambda x: -x, [4, 2], n_workers=1) == [-4, -2]

    def test_closures_over_unpicklable_state(self):
        # Closures need no pickling under fork; only results must pickle.
        state = {"offset": 10}
        func = lambda x: x + state["offset"]  # noqa: E731
        assert parallel_map(func, [1, 2, 3], n_workers=2) == [11, 12, 13]
