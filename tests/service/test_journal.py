"""Write-ahead job journal: durability, replay folding, recovery set."""

from __future__ import annotations

import json

from repro.service import JobJournal, JobRequest


def submit(journal: JobJournal, job_id: str, **kwargs) -> JobRequest:
    request = JobRequest(kind="v", **kwargs)
    journal.record("submitted", job_id, {"request": request.to_dict()})
    return request


class TestRecordAndReplay:
    def test_events_in_append_order(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        submit(journal, "a")
        journal.record("queued", "a")
        journal.record("started", "a", {"attempt": 0})
        assert [e["event"] for e in journal.events()] == [
            "submitted", "queued", "started",
        ]
        assert len(journal) == 3

    def test_replay_folds_to_latest_state(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        request = submit(journal, "a", params={"n": 3}, tenant="t")
        journal.record("queued", "a")
        journal.record("started", "a", {"attempt": 0})
        journal.record("progress", "a", {"completed": 4, "target": 10})
        journal.record("retrying", "a", {"attempt": 0})
        journal.record("started", "a", {"attempt": 1})
        entry = journal.replay()["a"]
        assert entry.request == request
        assert entry.state == "running"
        assert entry.attempts == 2
        assert entry.progress_completed == 4
        assert not entry.terminal and entry.recoverable

    def test_terminal_events_close_the_entry(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        for job_id, terminal in [
            ("a", "completed"), ("b", "degraded"),
            ("c", "failed"), ("d", "rejected"),
        ]:
            submit(journal, job_id)
            journal.record(terminal, job_id, {"latency_s": 0.1})
        entries = journal.replay()
        assert all(entry.terminal for entry in entries.values())
        assert journal.in_flight() == []
        assert entries["a"].result_summary == {"latency_s": 0.1}

    def test_in_flight_returns_only_recoverable_jobs(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        submit(journal, "done")
        journal.record("completed", "done")
        submit(journal, "queued-at-crash")
        journal.record("queued", "queued-at-crash")
        submit(journal, "running-at-crash")
        journal.record("started", "running-at-crash", {"attempt": 0})
        # A stray event without its submission record (truncated journal):
        journal.record("queued", "orphan")
        in_flight = [entry.job_id for entry in journal.in_flight()]
        assert in_flight == ["queued-at-crash", "running-at-crash"]

    def test_malformed_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        submit(journal, "a")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": \n')
            handle.write("not json at all\n")
            handle.write('{"event": "", "job_id": "x"}\n')  # empty event
        journal.record("completed", "a")
        assert [e["event"] for e in journal.events()] == ["submitted", "completed"]
        assert journal.replay()["a"].terminal

    def test_records_are_schema_versioned_sorted_json(self, tmp_path):
        path = tmp_path / "j.jsonl"
        JobJournal(path).record("submitted", "a", {"z": 1, "a": 2})
        record = json.loads(path.read_text().strip())
        assert record["schema_version"] == 1
        assert list(record) == sorted(record)
        assert record["payload"] == {"z": 1, "a": 2}
