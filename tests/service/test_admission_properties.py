"""Property-based pinning of the backpressure and breaker state machines.

Random submit/pop/fail/succeed sequences must never violate the queue
bound, lose a job silently, or leave a circuit breaker permanently stuck.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    Job,
    JobRejected,
    JobRequest,
)


class SteppableClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class AdmissionMachine(RuleBasedStateMachine):
    """Every admission outcome is explicit and the depth bound is hard."""

    MAX_DEPTH = 5

    def __init__(self):
        super().__init__()
        self.clock = SteppableClock()
        self.controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=self.MAX_DEPTH),
            BreakerPolicy(failure_threshold=3, cooldown_s=10.0),
            clock=self.clock,
        )
        self.seq = 0
        self.departed = 0  # popped + shed + rejected

    @rule(
        tenant=st.sampled_from(["a", "b", "c"]),
        priority=st.integers(min_value=0, max_value=3),
    )
    def submit(self, tenant, priority):
        self.seq += 1
        job = Job(
            f"j{self.seq}",
            JobRequest(kind="v", tenant=tenant, priority=priority),
        )
        before = len(self.controller.queue)
        try:
            shed = self.controller.admit(job)
        except JobRejected as exc:
            assert exc.reason in ("queue_full", "circuit_open")
            assert len(self.controller.queue) == before  # rejection is a no-op
            self.departed += 1
            return
        if shed is not None:
            self.departed += 1
        # Shedding swaps one job for another; plain admission grows by one.
        expected = before + (1 if shed is None else 0)
        assert len(self.controller.queue) == expected

    @rule()
    def pop(self):
        job = self.controller.next_job()
        if job is not None:
            self.departed += 1

    @rule(tenant=st.sampled_from(["a", "b", "c"]), ok=st.booleans())
    def finish(self, tenant, ok):
        self.controller.record_result(tenant, ok)

    @rule(dt=st.floats(min_value=0.0, max_value=20.0))
    def advance_time(self, dt):
        self.clock.now += dt

    @invariant()
    def queue_bound_is_hard(self):
        assert len(self.controller.queue) <= self.MAX_DEPTH

    @invariant()
    def no_job_vanishes(self):
        # queued-now plus everything that left through an explicit door
        # (pop, shed, reject) accounts for every submission.
        assert len(self.controller.queue) + self.departed == self.seq

    @invariant()
    def breakers_are_never_stuck_open_forever(self):
        for breaker in self.controller._breakers.values():
            if breaker.state == "open":
                # A cooldown away from allowing probes again.
                saved = self.clock.now
                # Tiny epsilon absorbs float accumulation in the fake clock.
                self.clock.now += breaker.policy.cooldown_s + 1e-6
                assert breaker.allow()
                self.clock.now = saved


TestAdmissionMachine = AdmissionMachine.TestCase
TestAdmissionMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
    threshold=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_breaker_recovers_after_any_history(outcomes, threshold):
    """From any random success/failure history, cooldown + one successful
    probe always returns the breaker to closed."""
    clock = SteppableClock()
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=threshold, cooldown_s=7.0), clock=clock
    )
    for ok in outcomes:
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()
        clock.now += 0.5
    clock.now += 7.0
    assert breaker.allow()  # at worst half-open, never hard-stuck
    breaker.record_success()
    assert breaker.state == "closed"


@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_breaker_only_opens_at_consecutive_threshold(outcomes):
    """The breaker opens iff some window of 3 consecutive failures occurs
    with no intervening success (and no cooldown elapses: time is frozen)."""
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=3, cooldown_s=1e9),
        clock=lambda: 0.0,
    )
    streak = 0
    tripped = False
    for ok in outcomes:
        if ok:
            breaker.record_success()
            streak = 0
        else:
            breaker.record_failure()
            streak += 1
        if streak >= 3:
            tripped = True
            break  # an open breaker ignores further bookkeeping here
    assert (breaker.state == "open") == tripped
