"""Game-theoretic importance: axioms and brute-force agreement.

These tests pin the estimators to the mathematical definitions: Shapley
efficiency/symmetry/dummy axioms on hand-built games, Monte-Carlo agreement
with exhaustive enumeration, and Beta(1,1) ≡ Shapley.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.importance import (
    SubsetUtility,
    banzhaf_brute_force,
    banzhaf_mc,
    beta_shapley_mc,
    beta_weights,
    loo_importance,
    shapley_brute_force,
    shapley_mc,
)

weight_vectors = st.lists(
    st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2, max_size=6
)


def additive_game(weights):
    w = np.asarray(weights, dtype=float)
    return SubsetUtility(lambda S: float(sum(w[i] for i in S)), len(w))


class TestAxiomsOnAdditiveGames:
    """For additive games every semivalue equals the weights exactly."""

    @given(weights=weight_vectors)
    @settings(max_examples=25, deadline=None)
    def test_shapley_exact_on_additive(self, weights):
        result = shapley_brute_force(additive_game(weights))
        assert np.allclose(result.values, weights, atol=1e-9)

    @given(weights=weight_vectors)
    @settings(max_examples=25, deadline=None)
    def test_banzhaf_exact_on_additive(self, weights):
        result = banzhaf_brute_force(additive_game(weights))
        assert np.allclose(result.values, weights, atol=1e-9)

    @given(weights=weight_vectors)
    @settings(max_examples=15, deadline=None)
    def test_mc_shapley_exact_on_additive(self, weights):
        # Additive games have zero-variance marginals: any sample is exact.
        result = shapley_mc(additive_game(weights), n_permutations=3, seed=0)
        assert np.allclose(result.values, weights, atol=1e-9)

    @given(weights=weight_vectors)
    @settings(max_examples=15, deadline=None)
    def test_loo_exact_on_additive(self, weights):
        result = loo_importance(additive_game(weights))
        assert np.allclose(result.values, weights, atol=1e-9)


class TestShapleyAxiomsGeneralGames:
    def _random_game(self, n, seed):
        rng = np.random.default_rng(seed)
        table = {
            frozenset(S): rng.normal()
            for S in self._powerset(n)
        }
        table[frozenset()] = 0.0
        return SubsetUtility(lambda S: table[frozenset(S)], n), table

    @staticmethod
    def _powerset(n):
        from itertools import chain, combinations

        return chain.from_iterable(combinations(range(n), k) for k in range(n + 1))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_efficiency(self, seed):
        game, table = self._random_game(5, seed)
        result = shapley_brute_force(game)
        total = table[frozenset(range(5))] - table[frozenset()]
        assert result.values.sum() == pytest.approx(total, abs=1e-9)

    def test_dummy_player_gets_zero(self):
        # Player 2 never changes the value.
        def v(S):
            return float(len([i for i in S if i != 2]))

        result = shapley_brute_force(SubsetUtility(v, 4))
        assert result.values[2] == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(result.values[[0, 1, 3]], 1.0)

    def test_symmetric_players_equal_value(self):
        # v = 1 iff both 0 and 1 present: players 0,1 symmetric.
        def v(S):
            return 1.0 if {0, 1} <= set(S) else 0.0

        result = shapley_brute_force(SubsetUtility(v, 3))
        assert result.values[0] == pytest.approx(result.values[1])
        assert result.values[2] == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_mc_converges_to_exact(self, seed):
        game, __ = self._random_game(5, seed)
        exact = shapley_brute_force(game).values
        estimate = shapley_mc(game, n_permutations=2000, seed=0).values
        assert np.allclose(estimate, exact, atol=0.12)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_banzhaf_mc_converges_to_exact(self, seed):
        game, __ = self._random_game(5, seed)
        exact = banzhaf_brute_force(game).values
        estimate = banzhaf_mc(game, n_samples=4000, seed=0).values
        assert np.allclose(estimate, exact, atol=0.15)

    def test_truncation_reduces_evaluations(self):
        def v(S):
            return min(len(S), 3) / 3.0  # saturates quickly

        full = SubsetUtility(v, 12)
        shapley_mc(full, n_permutations=20, seed=0)
        full_evals = full.n_evaluations
        truncated = SubsetUtility(v, 12)
        result = shapley_mc(truncated, n_permutations=20, truncation_tolerance=0.01, seed=0)
        assert truncated.n_evaluations < full_evals
        assert result.extras["truncated_scans"] > 0


class TestBetaShapley:
    def test_beta_weights_normalised(self):
        for n in (2, 5, 9):
            w = beta_weights(n, alpha=1.0, beta=16.0)
            assert w.sum() == pytest.approx(1.0)
            assert np.all(w >= 0)

    def test_beta_1_1_is_uniform(self):
        w = beta_weights(6, alpha=1.0, beta=1.0)
        assert np.allclose(w, 1.0 / 6)

    def test_large_beta_weights_small_subsets(self):
        w = beta_weights(8, alpha=1.0, beta=16.0)
        assert w[0] > w[-1]
        assert np.all(np.diff(w) <= 1e-12)

    def test_large_alpha_weights_large_subsets(self):
        w = beta_weights(8, alpha=16.0, beta=1.0)
        assert w[-1] > w[0]

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            beta_weights(4, alpha=0.0)

    @given(weights=weight_vectors)
    @settings(max_examples=10, deadline=None)
    def test_beta_1_1_matches_shapley_on_additive(self, weights):
        result = beta_shapley_mc(
            additive_game(weights), alpha=1.0, beta=1.0, n_permutations=5, seed=1
        )
        assert np.allclose(result.values, weights, atol=1e-9)

    def test_beta_16_denoises_ranking(self):
        """With β≫1, early marginals dominate; ranking still identifies the
        clearly harmful player in a noisy game."""
        rng = np.random.default_rng(0)

        def v(S):
            clean = sum(1.0 if i != 0 else -2.0 for i in S)
            return clean + 0.05 * rng.normal()

        result = beta_shapley_mc(SubsetUtility(v, 6), beta=16.0, n_permutations=60, seed=2)
        assert np.argmin(result.values) == 0
